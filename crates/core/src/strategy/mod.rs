//! Parameter-selection strategies (paper §3.4 and §4.2).
//!
//! * [`mfs`] — Minimum Fitness Strategy: minimise the analytic expectation
//!   of the minimum batch fitness (offline, eq. 2 / appendix F);
//! * [`pbs`] — Pf-based Strategy: hit a target feasibility probability
//!   (offline, eq. 3);
//! * [`ofs`] — Online Fitting Strategy: sigmoid curve fitting on observed
//!   `(A, Pf)` pairs of the instance at hand (Algorithm 1);
//! * [`composed`] — the benchmark mixture from §5: one MFS proposal, PBS at
//!   `p = 80%` and `20%`, then OFS for every further trial.
//!
//! The common [`ProposalStrategy`] interface lets the evaluation harness
//! drive QROSS and the baseline tuners identically.

pub mod composed;
pub mod mfs;
pub mod ofs;
pub mod pbs;

pub use composed::ComposedStrategy;
pub use ofs::OnlineFitting;

use crate::collect::SolverObservation;
use crate::surrogate::{Surrogate, SurrogatePrediction};

/// `n` evenly spaced points over `[lo, hi]` (inclusive) — the log-domain
/// candidate grids of the offline strategies.
///
/// # Panics
///
/// Panics if `n < 2`.
pub(crate) fn even_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "grid needs at least two points");
    (0..n)
        .map(|k| lo + (hi - lo) * k as f64 / (n - 1) as f64)
        .collect()
}

/// Minimises `objective(prediction)` over `ln A ∈ [wlo, whi]`: evaluates a
/// `grid`-point dense grid with ONE batched [`Surrogate::predict_grid`]
/// forward per head (the inner loop of every MFS/PBS proposal), then
/// golden-sections the best basins with scalar predicts via
/// [`mathkit::optimize::refine_grid_minimum`].
///
/// Both stages share the same `objective` closure by construction, so the
/// refined function can never drift from the grid that seeded it. The
/// returned [`mathkit::optimize::Minimum`] is in `ln A`.
pub(crate) fn minimize_on_log_grid<O>(
    surrogate: &Surrogate,
    features: &[f64],
    (wlo, whi): (f64, f64),
    grid: usize,
    objective: O,
) -> mathkit::Result<mathkit::optimize::Minimum>
where
    O: Fn(&SurrogatePrediction) -> f64,
{
    let ln_grid = even_grid(wlo, whi, grid);
    let a_grid: Vec<f64> = ln_grid.iter().map(|l| l.exp()).collect();
    let values: Vec<f64> = surrogate
        .predict_grid(features, &a_grid)
        .iter()
        .map(&objective)
        .collect();
    let scalar = |ln_a: f64| objective(&surrogate.predict(features, ln_a.exp()));
    mathkit::optimize::refine_grid_minimum(&scalar, &ln_grid, &values, 4, 1e-6)
}

/// A sequential parameter-proposal strategy.
///
/// The harness loop per instance: `propose` an `A`, run one solver call,
/// `observe` the outcome, repeat. Implementations may ignore observations
/// (pure offline strategies) or adapt (OFS, tuners).
pub trait ProposalStrategy: Send {
    /// Identifier used in experiment reports.
    fn name(&self) -> &str;

    /// Proposes the relaxation parameter for the given 0-based trial.
    fn propose(&mut self, trial: usize) -> f64;

    /// Records the outcome of evaluating `a` on the solver.
    fn observe(&mut self, a: f64, outcome: &SolverObservation);
}

/// Baseline adapter: drives a [`tuners::Tuner`] as a [`ProposalStrategy`].
///
/// The tuners minimise a scalar objective, so infeasible trials (no
/// feasible solution in the batch) are encoded as `fallback_objective` —
/// the harness passes a value worse than any feasible fitness (the paper's
/// baselines likewise only see fitness values).
pub struct TunerStrategy<T> {
    tuner: T,
    fallback_objective: f64,
}

impl<T: tuners::Tuner> TunerStrategy<T> {
    /// Wraps a tuner. `fallback_objective` must exceed any achievable
    /// fitness.
    ///
    /// # Panics
    ///
    /// Panics if `fallback_objective` is not finite.
    pub fn new(tuner: T, fallback_objective: f64) -> Self {
        assert!(
            fallback_objective.is_finite(),
            "fallback objective must be finite"
        );
        TunerStrategy {
            tuner,
            fallback_objective,
        }
    }

    /// Borrow of the wrapped tuner.
    pub fn tuner(&self) -> &T {
        &self.tuner
    }
}

impl<T: tuners::Tuner> ProposalStrategy for TunerStrategy<T> {
    fn name(&self) -> &str {
        self.tuner.name()
    }

    fn propose(&mut self, _trial: usize) -> f64 {
        self.tuner.ask()
    }

    fn observe(&mut self, a: f64, outcome: &SolverObservation) {
        let y = outcome.best_fitness.unwrap_or(self.fallback_objective);
        self.tuner.tell(a, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuners::{RandomSearch, Tuner};

    fn obs(a: f64, fitness: Option<f64>) -> SolverObservation {
        SolverObservation {
            a,
            pf: if fitness.is_some() { 0.5 } else { 0.0 },
            e_avg: 1.0,
            e_std: 0.1,
            best_fitness: fitness,
            min_energy: 0.5,
        }
    }

    #[test]
    fn tuner_strategy_translates_infeasible_to_fallback() {
        let mut s = TunerStrategy::new(RandomSearch::new(0.1, 10.0, 1), 999.0);
        let a = s.propose(0);
        s.observe(a, &obs(a, None));
        assert_eq!(s.tuner().observations()[0].y, 999.0);
        let a2 = s.propose(1);
        s.observe(a2, &obs(a2, Some(5.0)));
        assert_eq!(s.tuner().observations()[1].y, 5.0);
    }

    #[test]
    fn tuner_strategy_name_passthrough() {
        let s = TunerStrategy::new(RandomSearch::new(0.0, 1.0, 0), 10.0);
        assert_eq!(s.name(), "random");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_fallback() {
        let _ = TunerStrategy::new(RandomSearch::new(0.0, 1.0, 0), f64::NAN);
    }
}
