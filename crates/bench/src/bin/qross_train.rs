//! `qross-train` — the offline half of the train-once / serve-many loop.
//!
//! Generates a problem corpus (TSP through the staged pipeline; MVC/QAP
//! through the problem-generic trainer), collects solver data, trains the
//! surrogate, and writes two artifacts:
//!
//! * the **model** — a `.qross` bundle (TSP) or surrogate snapshot
//!   (MVC/QAP), binary by default, JSON with `--format json`;
//! * the **predictions manifest** — every grid prediction (and, for TSP,
//!   every planned strategy proposal) as exact `f64` bit patterns.
//!
//! `qross-predict` reloads the model in a fresh process and regenerates
//! the manifest; a byte-for-byte diff of the two files proves the
//! serve-side model is bit-identical to the trained one.

use bench::experiments::{pipeline_config, Solvers};
use bench::serve::{generic_manifest, parse_serve_cli, train_generic, tsp_manifest, ProblemKind};
use qross::pipeline::{Pipeline, TrainedQross};
use qross_store::Artifact;

const USAGE: &str = "qross-train [--problem tsp|mvc|qap] [--scale micro|quick|paper] \
                     [--seed N] [--model PATH] [--manifest PATH] [--format binary|json]";

fn main() {
    let mut args = parse_serve_cli(USAGE, true);
    let name = args.problem.name();
    if args.model.is_empty() {
        let ext = if args.json_model { "json" } else { "qross" };
        args.model = format!("results/model-{name}.{ext}");
    }
    if args.manifest.is_empty() {
        args.manifest = format!("results/predictions-{name}-train.json");
    }

    let solvers = Solvers::at(args.scale);
    let manifest = match args.problem {
        ProblemKind::Tsp => {
            // Stage 1 — collect: generation + solver-data collection,
            // packaged as a persistable corpus.
            let cfg = pipeline_config(args.scale, args.seed);
            let corpus = Pipeline::new(cfg)
                .collect_corpus(&solvers.da)
                .unwrap_or_else(|e| fail(&format!("collect stage failed: {e}")));
            println!(
                "collected {} rows from {} train instances",
                corpus.dataset.len(),
                corpus.train_instances.len()
            );
            // Stage 2 — train: fit the surrogate on the corpus.
            let trained = TrainedQross::train_on_corpus(&corpus)
                .unwrap_or_else(|e| fail(&format!("train stage failed: {e}")));
            let last = trained.report.pf.final_train_loss().unwrap_or(f64::NAN);
            println!(
                "trained surrogate on {} rows (final Pf loss {last:.4})",
                trained.dataset_len
            );
            // Stage 3 — persist the bundle for the serve process.
            let save_result = if args.json_model {
                trained
                    .to_bundle()
                    .and_then(|b| b.save_json(&args.model).map_err(Into::into))
            } else {
                trained.save(&args.model)
            };
            save_result.unwrap_or_else(|e| fail(&format!("saving model failed: {e}")));
            tsp_manifest(&trained)
        }
        kind => {
            let (surrogate, report) = train_generic(kind, args.scale, args.seed, &solvers.da)
                .unwrap_or_else(|e| fail(&format!("training failed: {e}")));
            let last = report.pf.final_train_loss().unwrap_or(f64::NAN);
            println!(
                "trained {} surrogate on {} rows (final Pf loss {last:.4})",
                kind.name(),
                report.train_rows
            );
            let state = surrogate.to_state();
            let save_result = if args.json_model {
                state.save_json(&args.model)
            } else {
                state.save(&args.model)
            };
            save_result.unwrap_or_else(|e| fail(&format!("saving model failed: {e}")));
            generic_manifest(kind, &surrogate, args.scale, args.seed)
        }
    };
    println!("wrote model     {}", args.model);
    qross_store::json::write_json_file(&args.manifest, &manifest)
        .unwrap_or_else(|e| fail(&format!("writing manifest failed: {e}")));
    println!(
        "wrote manifest  {} ({} instances x {} grid points)",
        args.manifest,
        manifest.entries.len(),
        manifest.a_grid_bits.len()
    );
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}
