//! `qross-predict` — the serve half of the train-once / serve-many loop.
//!
//! Reloads a model written by `qross-train` (binary or JSON, sniffed by
//! magic bytes) in a *fresh process* and regenerates the predictions
//! manifest. Because the manifest stores exact `f64` bit patterns, a
//! plain `diff` against the training process's manifest proves the
//! reloaded model is bit-identical to the trained one — the whole point
//! of the artifact store.
//!
//! TSP bundles are self-contained: the manifest's batch size, strategy
//! seed and evaluation instances all come from the bundle itself, so
//! `--model` is the only flag the TSP serve side needs. Other families'
//! models are bare surrogate snapshots; their corpus is regenerated from
//! `--problem`/`--scale`/`--seed`, which must match the training run.
//!
//! The whole CLI and reload/manifest flow lives in
//! [`bench::serve::run_predict`], shared with `qross-train`'s parser —
//! this binary is only the entry point.

fn main() {
    bench::serve::run_predict();
}
