//! Loss functions: MSE, Huber and binary cross-entropy.
//!
//! The paper's training recipe (§3.2, appendix G): BCE for the `Pf` head —
//! whose targets are *soft* probabilities in `[0, 1]`, estimated from batch
//! feasibility fractions — and Huber for the energy-statistics head,
//! "as we are expecting many outliers in the dataset, due to the stochastic
//! nature of a QUBO solver".

use mathkit::Matrix;
use serde::{Deserialize, Serialize};

/// A pointwise loss over prediction/target batches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// mean squared error
    Mse,
    /// Huber loss with transition point `delta`
    Huber {
        /// quadratic-to-linear transition point
        delta: f64,
    },
    /// binary cross-entropy over probabilities (accepts soft targets)
    Bce,
}

impl Loss {
    /// Mean loss over the batch.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an empty batch.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        let n = (pred.rows() * pred.cols()) as f64;
        assert!(n > 0.0, "loss of an empty batch");
        match self {
            Loss::Mse => pred.zip_with(target, |p, t| (p - t) * (p - t)).sum() / n,
            Loss::Huber { delta } => {
                let d = *delta;
                assert!(d > 0.0, "Huber delta must be positive");
                pred.zip_with(target, |p, t| {
                    let r = (p - t).abs();
                    if r <= d {
                        0.5 * r * r
                    } else {
                        d * (r - 0.5 * d)
                    }
                })
                .sum()
                    / n
            }
            Loss::Bce => {
                pred.zip_with(target, |p, t| {
                    let p = p.clamp(1e-9, 1.0 - 1e-9);
                    -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
                })
                .sum()
                    / n
            }
        }
    }

    /// Gradient of the mean loss w.r.t. the predictions.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an empty batch.
    pub fn grad(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        let n = (pred.rows() * pred.cols()) as f64;
        assert!(n > 0.0, "loss of an empty batch");
        match self {
            Loss::Mse => pred.zip_with(target, |p, t| 2.0 * (p - t) / n),
            Loss::Huber { delta } => {
                let d = *delta;
                pred.zip_with(target, |p, t| {
                    let r = p - t;
                    if r.abs() <= d {
                        r / n
                    } else {
                        d * r.signum() / n
                    }
                })
            }
            Loss::Bce => pred.zip_with(target, |p, t| {
                let p = p.clamp(1e-9, 1.0 - 1e-9);
                ((p - t) / (p * (1.0 - p))) / n
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(loss: &Loss, pred: &[f64], target: &[f64]) {
        let t = Matrix::row(target);
        let eps = 1e-7;
        let p0 = Matrix::row(pred);
        let g = loss.grad(&p0, &t);
        for i in 0..pred.len() {
            let mut plus = pred.to_vec();
            plus[i] += eps;
            let mut minus = pred.to_vec();
            minus[i] -= eps;
            let numeric = (loss.value(&Matrix::row(&plus), &t)
                - loss.value(&Matrix::row(&minus), &t))
                / (2.0 * eps);
            assert!(
                (numeric - g[(0, i)]).abs() < 1e-5,
                "{loss:?} idx {i}: numeric {numeric} vs {}",
                g[(0, i)]
            );
        }
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::row(&[1.0, 2.0]);
        let t = Matrix::row(&[0.0, 4.0]);
        assert!((Loss::Mse.value(&p, &t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mse_gradient_fd() {
        fd_check(&Loss::Mse, &[0.3, -1.2, 2.0], &[0.0, 1.0, 2.5]);
    }

    #[test]
    fn huber_quadratic_then_linear() {
        let l = Loss::Huber { delta: 1.0 };
        // |r| = 0.5 → quadratic: 0.125
        let p = Matrix::row(&[0.5]);
        let t = Matrix::row(&[0.0]);
        assert!((l.value(&p, &t) - 0.125).abs() < 1e-12);
        // |r| = 3 → linear: 1*(3-0.5) = 2.5
        let p = Matrix::row(&[3.0]);
        assert!((l.value(&p, &t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn huber_outlier_gradient_bounded() {
        let l = Loss::Huber { delta: 1.0 };
        let p = Matrix::row(&[1000.0]);
        let t = Matrix::row(&[0.0]);
        let g = l.grad(&p, &t);
        assert!((g[(0, 0)] - 1.0).abs() < 1e-12); // clipped at delta
    }

    #[test]
    fn huber_gradient_fd() {
        fd_check(
            &Loss::Huber { delta: 0.7 },
            &[0.1, -2.0, 0.69, 5.0],
            &[0.0, 0.0, 0.0, 0.0],
        );
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let p = Matrix::row(&[0.999_999, 0.000_001]);
        let t = Matrix::row(&[1.0, 0.0]);
        assert!(Loss::Bce.value(&p, &t) < 1e-5);
    }

    #[test]
    fn bce_soft_targets_minimised_at_target() {
        // With soft target 0.3, the BCE over p is minimised at p = 0.3.
        let t = Matrix::row(&[0.3]);
        let at_target = Loss::Bce.value(&Matrix::row(&[0.3]), &t);
        for p in [0.1, 0.2, 0.5, 0.9] {
            assert!(Loss::Bce.value(&Matrix::row(&[p]), &t) > at_target);
        }
    }

    #[test]
    fn bce_gradient_fd() {
        fd_check(&Loss::Bce, &[0.2, 0.5, 0.8], &[0.0, 0.3, 1.0]);
    }

    #[test]
    fn bce_clamps_extremes() {
        let p = Matrix::row(&[0.0, 1.0]);
        let t = Matrix::row(&[1.0, 0.0]);
        let v = Loss::Bce.value(&p, &t);
        assert!(v.is_finite());
        assert!(Loss::Bce
            .grad(&p, &t)
            .as_slice()
            .iter()
            .all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = Loss::Mse.value(&Matrix::zeros(1, 2), &Matrix::zeros(1, 3));
    }
}
