//! Regenerates paper Fig. 1: probability of feasibility and objective
//! energy vs the relaxation parameter, for the Digital Annealer simulator
//! and Simulated Annealing.

use bench::experiments::fig1;
use bench::{row, run_experiment};

fn main() {
    run_experiment(
        "fig1",
        |s, seed| Ok(fig1(s, seed)),
        |result| {
            println!(
                "Fig. 1 — Pf and energy envelope vs relaxation parameter ({})",
                result.instance
            );
            for series in &result.series {
                println!("\nsolver: {}", series.solver);
                let widths = [10, 8, 12, 12];
                println!(
                    "{}",
                    row(
                        &["A".into(), "Pf".into(), "minEnergy".into(), "Eavg".into()],
                        &widths
                    )
                );
                for k in 0..series.a.len() {
                    println!(
                        "{}",
                        row(
                            &[
                                format!("{:.4}", series.a[k]),
                                format!("{:.3}", series.pf[k]),
                                format!("{:.3}", series.min_energy[k]),
                                format!("{:.3}", series.e_avg[k]),
                            ],
                            &widths
                        )
                    );
                }
                // The paper's red star: the A whose batch contained the best
                // feasible energy, which must sit on the sigmoid slope.
                let best = series
                    .min_energy
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| series.pf[*k] > 0.0)
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal));
                if let Some((k, e)) = best {
                    println!(
                        "optimal parameter ~ A = {:.4} (min energy {:.3}, Pf {:.2})",
                        series.a[k], e, series.pf[k]
                    );
                }
            }
            println!();
        },
    );
}
