//! Regenerates paper Fig. 3: normalised optimality gap vs number of
//! trials for QROSS / TPE / BO / Random on the synthetic test set
//! (Digital Annealer).

use bench::experiments::fig3;
use bench::{row, write_json, Cli};

fn main() {
    let cli = Cli::from_args();
    let result = fig3(cli.scale, cli.seed);
    println!(
        "Fig. 3 — optimality gap vs trials ({} instances, solver {})",
        result.instances, result.solver
    );
    let widths = [6, 18, 18, 18, 18];
    let header: Vec<String> = std::iter::once("trial".to_string())
        .chain(result.curves.iter().map(|c| c.method.clone()))
        .collect();
    println!("{}", row(&header, &widths));
    let trials = result.curves[0].mean.len();
    for t in 0..trials {
        let cells: Vec<String> = std::iter::once(format!("{}", t + 1))
            .chain(
                result
                    .curves
                    .iter()
                    .map(|c| format!("{:.4} ±{:.4}", c.mean[t], c.ci95[t])),
            )
            .collect();
        println!("{}", row(&cells, &widths));
    }
    for trial in [1, 3, 20] {
        let mut at: Vec<(String, f64)> = result
            .curves
            .iter()
            .map(|c| (c.method.clone(), c.gap_at_trial(trial)))
            .collect();
        at.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        println!(
            "trial #{trial}: best = {} ({:.4}); worst = {} ({:.4})",
            at[0].0,
            at[0].1,
            at.last().unwrap().0,
            at.last().unwrap().1
        );
    }
    let path = write_json("fig3", &result).expect("write results");
    println!("wrote {}", path.display());
}
