//! Criterion bench for the incremental QUBO engine: full-energy
//! evaluation, flip-delta reads, single flips and a 1k-flip sweep, on a
//! dense and a sparse 256-variable model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use qubo::{QuboBuilder, QuboModel, QuboState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 256;

/// Random model over `N` variables with the given coupling density.
fn random_model(density: f64, seed: u64) -> QuboModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = QuboBuilder::new(N);
    for i in 0..N {
        b.add_linear(i, rng.gen_range(-2.0..2.0));
    }
    for i in 0..N {
        for j in (i + 1)..N {
            if rng.gen::<f64>() < density {
                b.add_quadratic(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    b.build()
}

fn random_assignment(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N).map(|_| rng.gen_range(0..2)).collect()
}

fn bench_model(c: &mut Criterion, label: &str, density: f64) {
    let model = random_model(density, 7);
    let x = random_assignment(11);
    let group_name = format!("qubo_state_{label}_{N}vars");
    let mut group = c.benchmark_group(&group_name);

    group.bench_function("full_energy", |b| b.iter(|| model.energy(&x)));

    let state = QuboState::new(&model, x.clone());
    group.bench_function("flip_delta_scan", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..N {
                acc += state.flip_delta(i);
            }
            acc
        })
    });

    group.bench_function("sweep_1k_flips", |b| {
        b.iter_batched(
            || (QuboState::new(&model, x.clone()), StdRng::seed_from_u64(23)),
            |(mut state, mut rng)| {
                for _ in 0..1000 {
                    state.flip(rng.gen_range(0..N));
                }
                state.energy()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("assign_all_reset", |b| {
        b.iter_batched(
            || QuboState::new(&model, vec![0; N]),
            |mut state| {
                state.assign_all(&x);
                state.energy()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    bench_model(c, "dense", 0.5);
}

fn bench_sparse(c: &mut Criterion) {
    bench_model(c, "sparse", 0.04);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dense, bench_sparse
}
criterion_main!(benches);
