//! Continual learning: feedback ingestion and the deterministic replay
//! buffer behind the serving engine's retrain/hot-swap loop.
//!
//! QROSS's OFS (paper §4.2, Algorithm 1) already refines predictions
//! per-instance from observed solver calls; this module generalises that
//! idea to the *serving* tier. Every solved instance's true outcome —
//! the measured `(Pf, Eavg, Estd)` at the relaxation parameter actually
//! used — can be fed back as a [`FeedbackRecord`]; records accumulate in
//! a bounded [`ReplayBuffer`]; and the engine's online trainer
//! periodically fine-tunes the surrogate heads on a buffer snapshot
//! merged with the original training corpus, hot-swapping the result in
//! without dropping a request ([`crate::serve::ServeEngine`]).
//!
//! # Determinism contract
//!
//! The whole loop is **bit-reproducible from `(seed, feedback log)`**:
//!
//! * buffer eviction is driven by per-record RNGs derived with
//!   [`mathkit::rng::derive_seed`] from the buffer seed and the record's
//!   stream position — never from wall-clock time or thread identity —
//!   so the buffer contents after `n` pushes are a pure function of the
//!   first `n` records;
//! * retrain snapshots are taken synchronously at the trigger point (the
//!   `refresh_after`-th feedback record, or an explicit refresh), so the
//!   training set of retrain `k` is a pure function of the feedback
//!   prefix that triggered it;
//! * every training seed derives from the online seed and the retrain
//!   index, so retrain `k` produces bit-identical weights wherever and
//!   whenever it runs.
//!
//! The serving integration (model slots, generation-keyed caching, the
//! background trainer) lives in [`crate::serve`]; checkpoint persistence
//! (the `SURR` v2 payload with its `LINE` lineage section) in
//! [`crate::store`].

use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use rand::Rng;

use crate::dataset::{DatasetRow, SurrogateDataset};
use crate::QrossError;

/// One observed solver outcome fed back into the serving engine: the
/// ground truth the surrogate predicted blind at request time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackRecord {
    /// instance feature vector (same featurizer as the served model)
    pub features: Vec<f64>,
    /// relaxation parameter the solver actually ran with
    pub a: f64,
    /// measured probability of feasibility over the solver batch
    pub observed_pf: f64,
    /// measured batch mean energy
    pub observed_e_avg: f64,
    /// measured batch energy standard deviation
    pub observed_e_std: f64,
    /// client-chosen instance label (lineage/debugging only — never
    /// enters training)
    pub instance_tag: String,
    /// seed of the solver run that produced the observation (lineage
    /// only)
    pub seed: u64,
}

impl FeedbackRecord {
    /// Validates the record against the served model's feature width.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::BadRequest`] for a width mismatch, a
    /// non-finite value, a non-positive `a`, a `Pf` outside `[0, 1]` or a
    /// negative `Estd`.
    pub fn validate(&self, feature_dim: usize) -> Result<(), QrossError> {
        let bad = |message: String| Err(QrossError::BadRequest { message });
        if self.features.len() != feature_dim {
            return bad(format!(
                "feedback carries {} features, model expects {feature_dim}",
                self.features.len()
            ));
        }
        if let Some(v) = self.features.iter().find(|v| !v.is_finite()) {
            return bad(format!("non-finite feedback feature {v}"));
        }
        if !self.a.is_finite() || self.a <= 0.0 {
            return bad(format!(
                "feedback relaxation parameter must be finite and positive, got {}",
                self.a
            ));
        }
        if !self.observed_pf.is_finite() || !(0.0..=1.0).contains(&self.observed_pf) {
            return bad(format!(
                "observed Pf must lie in [0, 1], got {}",
                self.observed_pf
            ));
        }
        if !self.observed_e_avg.is_finite() {
            return bad(format!(
                "observed mean energy must be finite, got {}",
                self.observed_e_avg
            ));
        }
        if !self.observed_e_std.is_finite() || self.observed_e_std < 0.0 {
            return bad(format!(
                "observed energy std must be finite and non-negative, got {}",
                self.observed_e_std
            ));
        }
        Ok(())
    }

    /// The training row this record contributes to a fine-tune dataset.
    pub fn to_row(&self) -> DatasetRow {
        DatasetRow {
            features: self.features.clone(),
            a: self.a,
            pf: self.observed_pf,
            e_avg: self.observed_e_avg,
            e_std: self.observed_e_std,
        }
    }
}

/// Online-learning knobs for a serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// automatic retrain trigger: fine-tune + swap after every
    /// `refresh_after` accepted feedback records (`0` = manual
    /// [`crate::serve::ServeEngine::refresh`] only)
    pub refresh_after: usize,
    /// total replay-buffer capacity (recency window + reservoir)
    pub buffer_capacity: usize,
    /// slots of the capacity reserved for the most recent records; the
    /// remainder is a seeded reservoir sample of everything older
    /// (clamped to `[1, buffer_capacity]`)
    pub recent_capacity: usize,
    /// how many times each replayed feedback row is repeated relative to
    /// one corpus row when the fine-tune dataset is assembled (the
    /// reweighting of the corpus/feedback merge; min 1)
    pub feedback_weight: usize,
    /// fine-tune epochs per retrain
    pub epochs: usize,
    /// fine-tune Adam learning rate (typically well below the offline
    /// training rate: the heads start from trained weights)
    pub learning_rate: f64,
    /// fine-tune mini-batch size
    pub batch_size: usize,
    /// bound on retrains queued behind the trainer thread (min 1).
    /// Automatic triggers arriving while this many retrains are already
    /// pending are **coalesced** — skipped without dropping anything,
    /// since the triggering records stay in the buffer and the next
    /// retrain trains on them anyway. Forced refreshes beyond the bound
    /// are rejected with a typed backpressure error. Keeps a feedback
    /// flood from queuing unbounded buffer snapshots (the engine's
    /// reject-never-OOM rule applies to the trainer too).
    pub max_pending_retrains: usize,
    /// root seed of the online loop — buffer eviction and every retrain
    /// derive from it (see the module docs)
    pub seed: u64,
    /// directory checkpoints are written to before each swap; `None`
    /// disables checkpointing (swaps still happen, lineage is lost)
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            refresh_after: 64,
            buffer_capacity: 1024,
            recent_capacity: 256,
            feedback_weight: 4,
            epochs: 60,
            learning_rate: 5e-4,
            batch_size: 32,
            max_pending_retrains: 2,
            seed: 0,
            checkpoint_dir: None,
        }
    }
}

/// Provenance of one checkpointed model generation — the `LINE` section
/// of a `SURR` v2 artifact (see `ARTIFACTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineageHeader {
    /// generation this checkpoint installed
    pub generation: u64,
    /// generation the fine-tune started from
    pub parent_generation: u64,
    /// the online loop's root seed
    pub seed: u64,
    /// 1-based index of the retrain that produced this generation
    pub retrain_index: u64,
    /// total feedback records accepted when the retrain triggered
    pub feedback_count: u64,
    /// replay-buffer rows in the training snapshot
    pub replay_len: u64,
}

/// A surrogate snapshot with optional lineage — the checkpoint artifact
/// the hot-swap path writes (kind `SURR`, payload v2; a plain v1
/// [`crate::surrogate::SurrogateState`] file loads as lineage `None`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurrogateCheckpoint {
    /// swap provenance; `None` for legacy v1 snapshots
    pub lineage: Option<LineageHeader>,
    /// the model weights + scalers
    pub state: crate::surrogate::SurrogateState,
}

/// Bounded deterministic replay buffer: a recency window plus a seeded
/// reservoir sample of everything that has aged out of it.
///
/// The hybrid keeps both distribution tails the online loop cares about:
/// the *recent* segment guarantees the newest traffic is always
/// represented (drift tracking), while the *reservoir* segment keeps an
/// unbiased uniform sample of the whole history (no catastrophic
/// forgetting of early feedback). Eviction decisions for the `t`-th aged
/// record are drawn from `derive_rng(seed, t)`, so the buffer contents
/// after any push sequence are a pure function of `(seed, sequence)` —
/// reproducible wherever the pushes happen.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    seed: u64,
    recent_cap: usize,
    reservoir_cap: usize,
    recent: std::collections::VecDeque<FeedbackRecord>,
    reservoir: Vec<FeedbackRecord>,
    /// records that have entered the reservoir stream (aged out of the
    /// recency window), 1-based stream position of the last one
    aged: u64,
    /// total records ever pushed
    total: u64,
}

impl ReplayBuffer {
    /// Creates an empty buffer.
    ///
    /// `recent_capacity` is clamped to `[1, capacity]`; the remaining
    /// slots form the reservoir.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, recent_capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "replay buffer needs capacity");
        let recent_cap = recent_capacity.clamp(1, capacity);
        ReplayBuffer {
            seed,
            recent_cap,
            reservoir_cap: capacity - recent_cap,
            recent: std::collections::VecDeque::with_capacity(recent_cap + 1),
            reservoir: Vec::with_capacity(capacity - recent_cap),
            aged: 0,
            total: 0,
        }
    }

    /// Records currently held (recency window + reservoir).
    pub fn len(&self) -> usize {
        self.recent.len() + self.reservoir.len()
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever pushed (admitted or since evicted).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Admits one record, evicting deterministically once full.
    pub fn push(&mut self, record: FeedbackRecord) {
        self.total += 1;
        self.recent.push_back(record);
        if self.recent.len() <= self.recent_cap {
            return;
        }
        let aged = self.recent.pop_front().expect("len checked");
        if self.reservoir_cap == 0 {
            return; // recency-only buffer: aged-out records drop
        }
        self.aged += 1;
        if self.reservoir.len() < self.reservoir_cap {
            self.reservoir.push(aged);
            return;
        }
        // Reservoir sampling (Algorithm R): the t-th streamed record
        // replaces a uniform slot with probability k/t. The RNG is
        // derived from the stream position, so this decision is the same
        // on every replay of the same feedback log.
        let slot = derive_rng(self.seed, self.aged).gen_range(0..self.aged) as usize;
        if slot < self.reservoir_cap {
            self.reservoir[slot] = aged;
        }
    }

    /// Deterministic snapshot of the current contents: reservoir slots in
    /// slot order, then the recency window oldest-first.
    pub fn snapshot(&self) -> Vec<FeedbackRecord> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.reservoir.iter().cloned());
        out.extend(self.recent.iter().cloned());
        out
    }
}

/// Assembles the fine-tune dataset for one retrain: the base corpus (when
/// given) followed by `feedback_weight` repetitions of the snapshot rows.
///
/// Row order is fully deterministic — corpus rows first in corpus order,
/// then the snapshot repeated block-wise — so the downstream seeded
/// shuffle sees the same dataset on every replay.
///
/// # Errors
///
/// Returns [`QrossError::BadDataset`] when the merge is empty or a
/// feedback row's width disagrees with `feat_dim` (records are validated
/// at ingestion, so the latter indicates caller misuse).
pub fn merge_for_finetune(
    base: Option<&SurrogateDataset>,
    snapshot: &[FeedbackRecord],
    feedback_weight: usize,
    feat_dim: usize,
) -> Result<SurrogateDataset, QrossError> {
    let weight = feedback_weight.max(1);
    let mut rows: Vec<DatasetRow> = Vec::new();
    if let Some(base) = base {
        if base.feat_dim() != feat_dim {
            return Err(QrossError::BadDataset {
                message: format!(
                    "base corpus is {}-wide but the model expects {feat_dim}",
                    base.feat_dim()
                ),
            });
        }
        rows.extend(base.rows().iter().cloned());
    }
    for _ in 0..weight {
        rows.extend(snapshot.iter().map(FeedbackRecord::to_row));
    }
    if rows.is_empty() {
        return Err(QrossError::BadDataset {
            message: "nothing to fine-tune on: empty replay buffer and no base corpus".to_string(),
        });
    }
    SurrogateDataset::try_from_rows(feat_dim, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(k: usize) -> FeedbackRecord {
        FeedbackRecord {
            features: vec![k as f64, -(k as f64) / 3.0],
            a: 0.5 + k as f64,
            observed_pf: (k % 10) as f64 / 10.0,
            observed_e_avg: 4.0 - k as f64 / 7.0,
            observed_e_std: 0.25 + (k % 3) as f64,
            instance_tag: format!("i{k}"),
            seed: k as u64,
        }
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        assert!(record(3).validate(2).is_ok());
        let wrong_width = record(1);
        assert!(matches!(
            wrong_width.validate(5),
            Err(QrossError::BadRequest { .. })
        ));
        let mut nan_feat = record(1);
        nan_feat.features[0] = f64::NAN;
        assert!(nan_feat.validate(2).is_err());
        let mut bad_a = record(1);
        bad_a.a = 0.0;
        assert!(bad_a.validate(2).is_err());
        let mut bad_pf = record(1);
        bad_pf.observed_pf = 1.5;
        assert!(bad_pf.validate(2).is_err());
        let mut bad_std = record(1);
        bad_std.observed_e_std = -1.0;
        assert!(bad_std.validate(2).is_err());
    }

    #[test]
    fn buffer_is_bounded_and_keeps_recent() {
        let mut buf = ReplayBuffer::new(8, 4, 7);
        for k in 0..100 {
            buf.push(record(k));
            assert!(buf.len() <= 8, "buffer overflowed at push {k}");
        }
        assert_eq!(buf.total_pushed(), 100);
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 8);
        // The recency window holds exactly the last 4 records, in order.
        let tags: Vec<&str> = snap[4..].iter().map(|r| r.instance_tag.as_str()).collect();
        assert_eq!(tags, vec!["i96", "i97", "i98", "i99"]);
        // The reservoir holds a sample of the aged-out prefix.
        for r in &snap[..4] {
            let k: usize = r.instance_tag[1..].parse().unwrap();
            assert!(k < 96, "reservoir leaked a recent record: {k}");
        }
    }

    #[test]
    fn buffer_contents_are_reproducible() {
        let run = |seed: u64| {
            let mut buf = ReplayBuffer::new(10, 3, seed);
            for k in 0..250 {
                buf.push(record(k));
            }
            buf.snapshot()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "seed does not influence eviction");
    }

    #[test]
    fn buffer_eviction_order_is_stream_position_not_call_site() {
        // Pushing the same sequence through two buffers in two chunks of
        // different sizes must give identical contents: eviction RNGs key
        // on the record's stream position only.
        let mut a = ReplayBuffer::new(6, 2, 3);
        let mut b = ReplayBuffer::new(6, 2, 3);
        for k in 0..40 {
            a.push(record(k));
        }
        for k in 0..25 {
            b.push(record(k));
        }
        for k in 25..40 {
            b.push(record(k));
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn recency_only_buffer_drops_aged_records() {
        let mut buf = ReplayBuffer::new(3, 3, 0);
        for k in 0..10 {
            buf.push(record(k));
        }
        assert_eq!(buf.len(), 3);
        let snap = buf.snapshot();
        let tags: Vec<&str> = snap.iter().map(|r| r.instance_tag.as_str()).collect();
        assert_eq!(tags, vec!["i7", "i8", "i9"]);
    }

    #[test]
    fn merge_reweights_feedback() {
        let mut base = SurrogateDataset::new(2);
        base.push(record(0).to_row());
        let snap = vec![record(1), record(2)];
        let merged = merge_for_finetune(Some(&base), &snap, 3, 2).unwrap();
        assert_eq!(merged.len(), 1 + 3 * 2);
        // Corpus rows lead, then three repetitions of the snapshot.
        assert_eq!(merged.rows()[0], record(0).to_row());
        assert_eq!(merged.rows()[1], record(1).to_row());
        assert_eq!(merged.rows()[2], record(2).to_row());
        assert_eq!(merged.rows()[3], record(1).to_row());
    }

    #[test]
    fn merge_rejects_empty_and_width_mismatch() {
        assert!(matches!(
            merge_for_finetune(None, &[], 4, 2),
            Err(QrossError::BadDataset { .. })
        ));
        let base = SurrogateDataset::new(3);
        assert!(matches!(
            merge_for_finetune(Some(&base), &[record(1)], 1, 2),
            Err(QrossError::BadDataset { .. })
        ));
    }
}
