//! Criterion bench for the Fig.-3 inner loops: surrogate prediction, the
//! MFS integral + optimisation, PBS root finding, and OFS sigmoid fitting.

use criterion::{criterion_group, criterion_main, Criterion};

use qross::dataset::{DatasetRow, SurrogateDataset};
use qross::strategy::mfs::{self, expected_min_fitness};
use qross::strategy::ofs::OnlineFitting;
use qross::strategy::pbs;
use qross::surrogate::{Surrogate, SurrogateConfig};

fn trained_surrogate() -> Surrogate {
    let mut ds = SurrogateDataset::new(1);
    for g in 0..6 {
        let f = g as f64 * 0.1;
        for k in 0..13 {
            let ln_a = -3.0 + 6.0 * k as f64 / 12.0;
            ds.push(DatasetRow {
                features: vec![f],
                a: ln_a.exp(),
                pf: mathkit::special::sigmoid(3.0 * (ln_a - f)),
                e_avg: 10.0 + ln_a,
                e_std: 1.0,
            });
        }
    }
    let cfg = SurrogateConfig {
        hidden: 16,
        epochs: 60,
        val_fraction: 0.0,
        ..Default::default()
    };
    Surrogate::train(&ds, &cfg).unwrap().0
}

fn bench_predict(c: &mut Criterion) {
    let sur = trained_surrogate();
    c.bench_function("surrogate_predict", |b| b.iter(|| sur.predict(&[0.3], 1.5)));
    let sweep: Vec<f64> = (1..=64).map(|k| k as f64 * 0.1).collect();
    c.bench_function("surrogate_predict_sweep64", |b| {
        b.iter(|| sur.predict_sweep(&[0.3], &sweep))
    });
}

fn bench_mfs(c: &mut Criterion) {
    c.bench_function("mfs_expected_min_integral", |b| {
        b.iter(|| expected_min_fitness(0.6, 12.0, 2.0, 128))
    });
    let sur = trained_surrogate();
    c.bench_function("mfs_propose", |b| {
        b.iter(|| mfs::propose(&sur, &[0.3], (0.05, 20.0), 32).unwrap())
    });
}

fn bench_pbs_and_ofs(c: &mut Criterion) {
    let sur = trained_surrogate();
    c.bench_function("pbs_propose_p80", |b| {
        b.iter(|| pbs::propose(&sur, &[0.3], (0.05, 20.0), 0.8).unwrap())
    });
    c.bench_function("ofs_fit_and_sample", |b| {
        b.iter(|| {
            let mut ofs = OnlineFitting::new((0.05, 20.0), 3);
            for k in 0..10 {
                let a = 0.2 + k as f64 * 0.35;
                ofs.observe(a, mathkit::special::sigmoid(2.0 * (a.ln() - 0.3)));
            }
            ofs.next_candidate()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_predict, bench_mfs, bench_pbs_and_ofs
}
criterion_main!(benches);
