//! Derivative-free optimisation: bisection, golden-section, grid search,
//! multi-start global 1-D minimisation, and Nelder–Mead.
//!
//! The paper uses scipy's `shgo` to minimise the surrogate-predicted
//! expected-minimum-fitness over the relaxation parameter `A` (§3.4.1).
//! `A` is one-dimensional, so a dense-grid scan followed by golden-section
//! refinement of the best basins ([`minimize_global_1d`]) is an equivalent
//! global strategy; Nelder–Mead is provided for the multi-dimensional
//! fits (sigmoid calibration fallback, GP hyper-parameters).

use crate::{MathError, Result};

/// Result of a scalar minimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// location of the minimum
    pub x: f64,
    /// objective value at [`Minimum::x`]
    pub value: f64,
}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// # Errors
///
/// * [`MathError::Domain`] if `lo >= hi` or `f(lo)` and `f(hi)` have the
///   same sign.
/// * [`MathError::NoConvergence`] if the interval does not shrink below
///   `tol` within `max_iter` iterations (practically unreachable for
///   sensible tolerances).
///
/// # Examples
///
/// ```
/// use mathkit::optimize::bisect;
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), mathkit::MathError>(())
/// ```
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    if lo >= hi {
        return Err(MathError::Domain {
            message: format!("bisect requires lo < hi, got [{lo}, {hi}]"),
        });
    }
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(MathError::Domain {
            message: "bisect requires a sign change over the interval".to_string(),
        });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || hi - lo < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(MathError::NoConvergence { routine: "bisect" })
}

/// Golden-section minimisation of a unimodal `f` on `[lo, hi]`.
///
/// Converges linearly; `tol` is the final bracket width.
///
/// # Errors
///
/// Returns [`MathError::Domain`] if `lo >= hi`.
pub fn golden_section<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Minimum> {
    if lo >= hi {
        return Err(MathError::Domain {
            message: format!("golden_section requires lo < hi, got [{lo}, {hi}]"),
        });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..max_iter {
        if hi - lo < tol {
            break;
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    let x = 0.5 * (lo + hi);
    Ok(Minimum { x, value: f(x) })
}

/// Evaluates `f` on `points` evenly-spaced grid nodes over `[lo, hi]` and
/// returns the best node.
///
/// # Errors
///
/// Returns [`MathError::Domain`] for an empty grid or inverted interval.
pub fn grid_search<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, points: usize) -> Result<Minimum> {
    if points == 0 || lo > hi {
        return Err(MathError::Domain {
            message: "grid_search requires points > 0 and lo <= hi".to_string(),
        });
    }
    let mut best = Minimum {
        x: lo,
        value: f64::INFINITY,
    };
    for i in 0..points {
        let x = if points == 1 {
            0.5 * (lo + hi)
        } else {
            lo + (hi - lo) * i as f64 / (points - 1) as f64
        };
        let v = f(x);
        if v < best.value {
            best = Minimum { x, value: v };
        }
    }
    Ok(best)
}

/// Global 1-D minimisation: dense grid scan, then golden-section refinement
/// around the `refine_top` best grid basins.
///
/// This is the repo's stand-in for scipy's `shgo` (see DESIGN.md): for a
/// one-dimensional, cheap-to-evaluate surrogate objective, a fine grid scan
/// enumerates every basin, and local refinement recovers the global optimum
/// to high precision.
///
/// # Errors
///
/// Returns [`MathError::Domain`] for an invalid interval or an empty grid.
///
/// # Examples
///
/// ```
/// use mathkit::optimize::minimize_global_1d;
/// // Bimodal objective whose global minimum is near x = 3.
/// let f = |x: f64| (x - 3.0).powi(2).min((x + 1.0).powi(2) + 0.5);
/// let m = minimize_global_1d(&f, -5.0, 5.0, 200, 3, 1e-9)?;
/// assert!((m.x - 3.0).abs() < 1e-6);
/// # Ok::<(), mathkit::MathError>(())
/// ```
pub fn minimize_global_1d<F: Fn(f64) -> f64>(
    f: &F,
    lo: f64,
    hi: f64,
    grid_points: usize,
    refine_top: usize,
    tol: f64,
) -> Result<Minimum> {
    if lo >= hi || grid_points < 2 {
        return Err(MathError::Domain {
            message: "minimize_global_1d requires lo < hi and grid_points >= 2".to_string(),
        });
    }
    let step = (hi - lo) / (grid_points - 1) as f64;
    let xs: Vec<f64> = (0..grid_points).map(|i| lo + i as f64 * step).collect();
    let values: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
    refine_grid_minimum(&f, &xs, &values, refine_top, tol)
}

/// The refinement stage of [`minimize_global_1d`] over a *precomputed*
/// grid: given ascending sample points `xs` and their objective values,
/// golden-sections the neighbourhoods of the `refine_top` best cells.
///
/// Separating grid evaluation from refinement lets callers batch the grid
/// through a vectorised objective (e.g. one neural-network forward pass
/// over all candidates) and pay the scalar closure only for the handful of
/// refinement evaluations.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `xs` and `values` differ in length
/// or fewer than two points are given.
pub fn refine_grid_minimum<F: Fn(f64) -> f64>(
    f: &F,
    xs: &[f64],
    values: &[f64],
    refine_top: usize,
    tol: f64,
) -> Result<Minimum> {
    if xs.len() != values.len() || xs.len() < 2 {
        return Err(MathError::Domain {
            message: "refine_grid_minimum requires >= 2 points with matching values".to_string(),
        });
    }
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut best = Minimum {
        x: xs[order[0]],
        value: values[order[0]],
    };
    for &i in order.iter().take(refine_top.max(1)) {
        let wlo = xs[i.saturating_sub(1)];
        let whi = xs[(i + 1).min(xs.len() - 1)];
        if whi <= wlo {
            continue;
        }
        if let Ok(m) = golden_section(f, wlo, whi, tol, 200) {
            if m.value < best.value {
                best = m;
            }
        }
    }
    Ok(best)
}

/// Configuration for [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadConfig {
    /// maximum number of simplex iterations
    pub max_iter: usize,
    /// convergence threshold on the simplex value spread
    pub f_tol: f64,
    /// initial simplex edge length (relative perturbation per coordinate)
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_iter: 500,
            f_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Nelder–Mead simplex minimisation in `R^n`.
///
/// Standard reflection/expansion/contraction/shrink coefficients
/// (1, 2, 0.5, 0.5).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty starting point.
///
/// # Examples
///
/// ```
/// use mathkit::optimize::{nelder_mead, NelderMeadConfig};
/// let rosen = |x: &[f64]| {
///     (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
/// };
/// let cfg = NelderMeadConfig { max_iter: 5000, ..Default::default() };
/// let (x, v) = nelder_mead(&rosen, &[-1.2, 1.0], &cfg)?;
/// assert!(v < 1e-6);
/// assert!((x[0] - 1.0).abs() < 1e-2);
/// # Ok::<(), mathkit::MathError>(())
/// ```
pub fn nelder_mead<F: Fn(&[f64]) -> f64>(
    f: &F,
    x0: &[f64],
    cfg: &NelderMeadConfig,
) -> Result<(Vec<f64>, f64)> {
    let n = x0.len();
    if n == 0 {
        return Err(MathError::EmptyInput);
    }
    // Build initial simplex: x0 plus n perturbed vertices.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let h = if v[i].abs() > 1e-8 {
            cfg.initial_step * v[i].abs()
        } else {
            cfg.initial_step
        };
        v[i] += h;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| f(v)).collect();

    for _ in 0..cfg.max_iter {
        // Order vertices by objective value.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| {
            values[a]
                .partial_cmp(&values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let ordered: Vec<Vec<f64>> = idx.iter().map(|&i| simplex[i].clone()).collect();
        let ordered_vals: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        simplex = ordered;
        values = ordered_vals;

        if (values[n] - values[0]).abs() < cfg.f_tol {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for v in simplex.iter().take(n) {
            for (c, x) in centroid.iter_mut().zip(v.iter()) {
                *c += x / n as f64;
            }
        }

        let lerp = |from: &[f64], to: &[f64], t: f64| -> Vec<f64> {
            from.iter()
                .zip(to.iter())
                .map(|(a, b)| a + t * (b - a))
                .collect()
        };

        // Reflection.
        let xr = lerp(&centroid, &simplex[n], -1.0);
        let fr = f(&xr);
        if fr < values[0] {
            // Expansion.
            let xe = lerp(&centroid, &simplex[n], -2.0);
            let fe = f(&xe);
            if fe < fr {
                simplex[n] = xe;
                values[n] = fe;
            } else {
                simplex[n] = xr;
                values[n] = fr;
            }
        } else if fr < values[n - 1] {
            simplex[n] = xr;
            values[n] = fr;
        } else {
            // Contraction (outside if reflected point improved on worst).
            let (xc, fc) = if fr < values[n] {
                let xc = lerp(&centroid, &simplex[n], -0.5);
                let fc = f(&xc);
                (xc, fc)
            } else {
                let xc = lerp(&centroid, &simplex[n], 0.5);
                let fc = f(&xc);
                (xc, fc)
            };
            if fc < values[n].min(fr) {
                simplex[n] = xc;
                values[n] = fc;
            } else {
                // Shrink towards the best vertex.
                let best = simplex[0].clone();
                for v in simplex.iter_mut().skip(1) {
                    *v = lerp(&best, v, 0.5);
                }
                for (val, v) in values.iter_mut().zip(simplex.iter()).skip(1) {
                    *val = f(v);
                }
            }
        }
    }

    let mut best_i = 0;
    for i in 1..=n {
        if values[i] < values[best_i] {
            best_i = i;
        }
    }
    Ok((simplex[best_i].clone(), values[best_i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_requires_sign_change() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 100),
            Err(MathError::Domain { .. })
        ));
    }

    #[test]
    fn golden_quadratic() {
        let m = golden_section(|x| (x - 1.5) * (x - 1.5) + 2.0, -10.0, 10.0, 1e-10, 500).unwrap();
        assert!((m.x - 1.5).abs() < 1e-6);
        assert!((m.value - 2.0).abs() < 1e-10);
    }

    #[test]
    fn golden_invalid_interval() {
        assert!(golden_section(|x| x, 1.0, 0.0, 1e-9, 10).is_err());
    }

    #[test]
    fn grid_finds_coarse_minimum() {
        let m = grid_search(|x| (x - 0.3).abs(), 0.0, 1.0, 101).unwrap();
        assert!((m.x - 0.3).abs() < 0.011);
    }

    #[test]
    fn grid_single_point() {
        let m = grid_search(|x| x, 0.0, 2.0, 1).unwrap();
        assert_eq!(m.x, 1.0);
    }

    #[test]
    fn global_1d_escapes_local_minimum() {
        // Local minimum at x=-1 (value 0.5), global at x=3 (value 0).
        let f = |x: f64| ((x + 1.0).powi(2) + 0.5).min((x - 3.0).powi(2));
        let m = minimize_global_1d(&f, -5.0, 5.0, 100, 3, 1e-10).unwrap();
        assert!((m.x - 3.0).abs() < 1e-5);
        assert!(m.value < 1e-9);
    }

    #[test]
    fn global_1d_sine_landscape() {
        // min of sin(x) + 0.1 x over [0, 20] — multiple basins.
        let f = |x: f64| x.sin() + 0.1 * x;
        let m = minimize_global_1d(&f, 0.0, 20.0, 400, 5, 1e-10).unwrap();
        // global min near x = 3*pi/2 + small shift ~ 4.612
        assert!((m.x - 4.612).abs() < 0.05, "x = {}", m.x);
    }

    #[test]
    fn nelder_mead_sphere() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let (x, v) = nelder_mead(&f, &[2.0, -3.0, 1.0], &NelderMeadConfig::default()).unwrap();
        assert!(v < 1e-8, "v={v}");
        for xi in x {
            assert!(xi.abs() < 1e-3);
        }
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let cfg = NelderMeadConfig {
            max_iter: 10_000,
            ..Default::default()
        };
        let (x, v) = nelder_mead(&rosen, &[-1.2, 1.0], &cfg).unwrap();
        assert!(v < 1e-6, "v={v}, x={x:?}");
    }

    #[test]
    fn nelder_mead_empty_input() {
        let f = |_: &[f64]| 0.0;
        assert!(matches!(
            nelder_mead(&f, &[], &NelderMeadConfig::default()),
            Err(MathError::EmptyInput)
        ));
    }
}
