//! Pf-based Strategy (paper §3.4.2).
//!
//! Finds `Ã = argmin_A |Pf(A) − p|` for a user-chosen target feasibility
//! probability `p` (eq. 3). "If obtaining a feasible solution in one trial
//! is of primary importance..., p = 90% would be a reasonable choice"; for
//! multi-trial budgets a ladder like 90/70/50/30/10% spreads the samples
//! across the sigmoid slope.
//!
//! Purely offline: only the surrogate is consulted.

use crate::surrogate::Surrogate;
use crate::QrossError;

/// Proposes `A` with surrogate feasibility closest to `target_pf` (eq. 3).
///
/// # Errors
///
/// * [`QrossError::NoCandidate`] when the surrogate's Pf never comes
///   within 0.45 of the target anywhere in the domain (flat landscape —
///   the instance is outside what the surrogate understands).
///
/// # Panics
///
/// Panics for an invalid domain or `target_pf` outside `(0, 1)`.
pub fn propose(
    surrogate: &Surrogate,
    features: &[f64],
    domain: (f64, f64),
    target_pf: f64,
) -> Result<f64, QrossError> {
    assert!(
        domain.0 > 0.0 && domain.0 < domain.1,
        "invalid A domain [{}, {}]",
        domain.0,
        domain.1
    );
    assert!(
        target_pf > 0.0 && target_pf < 1.0,
        "target probability must be in (0, 1), got {target_pf}"
    );
    // Same trained-support clamp as MFS (see strategy::mfs).
    let (lo, hi) = crate::strategy::mfs::clamp_to_trained(surrogate, domain);
    // Dense |Pf − p| grid in one batched forward; scalar predicts only
    // pay for the golden-section refinement.
    let m =
        crate::strategy::minimize_on_log_grid(surrogate, features, (lo.ln(), hi.ln()), 96, |p| {
            (p.pf - target_pf).abs()
        })
        .map_err(|e| QrossError::NoCandidate {
            message: format!("PBS optimisation failed: {e}"),
        })?;
    if m.value > 0.45 {
        return Err(QrossError::NoCandidate {
            message: format!(
                "surrogate Pf never approaches {target_pf} (best residual {:.3})",
                m.value
            ),
        });
    }
    Ok(m.x.exp())
}

/// The standard multi-trial ladder from §3.4.2 (`p = 90, 70, 50, 30, 10%`).
pub const LADDER: [f64; 5] = [0.9, 0.7, 0.5, 0.3, 0.1];

/// Proposes one `A` per target in `targets`, skipping targets the
/// surrogate cannot resolve.
pub fn propose_ladder(
    surrogate: &Surrogate,
    features: &[f64],
    domain: (f64, f64),
    targets: &[f64],
) -> Vec<f64> {
    targets
        .iter()
        .filter_map(|&p| propose(surrogate, features, domain, p).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetRow, SurrogateDataset};
    use crate::surrogate::SurrogateConfig;
    use mathkit::special::sigmoid;

    /// Surrogate trained on a clean sigmoid world (midpoint ln A = 0).
    fn trained_surrogate() -> Surrogate {
        let mut ds = SurrogateDataset::new(1);
        for g in 0..8 {
            let feature = g as f64 * 0.1;
            for k in 0..17 {
                let ln_a = -3.0 + 6.0 * k as f64 / 16.0;
                ds.push(DatasetRow {
                    features: vec![feature],
                    a: ln_a.exp(),
                    pf: sigmoid(3.0 * ln_a),
                    e_avg: 5.0,
                    e_std: 1.0,
                });
            }
        }
        let cfg = SurrogateConfig {
            hidden: 24,
            epochs: 250,
            learning_rate: 5e-3,
            batch_size: 32,
            val_fraction: 0.0,
            seed: 5,
        };
        Surrogate::train(&ds, &cfg).unwrap().0
    }

    #[test]
    fn hits_target_probabilities() {
        let sur = trained_surrogate();
        let domain = ((-3.0f64).exp(), (3.0f64).exp());
        for &p in &[0.2, 0.5, 0.8] {
            let a = propose(&sur, &[0.4], domain, p).unwrap();
            let predicted = sur.predict(&[0.4], a).pf;
            assert!(
                (predicted - p).abs() < 0.1,
                "target {p}: got Pf {predicted} at A={a}"
            );
        }
    }

    #[test]
    fn ladder_is_monotone_in_a() {
        // Higher target Pf should require larger A (Pf rises with A).
        let sur = trained_surrogate();
        let domain = ((-3.0f64).exp(), (3.0f64).exp());
        let ladder = propose_ladder(&sur, &[0.4], domain, &[0.2, 0.5, 0.8]);
        assert_eq!(ladder.len(), 3);
        assert!(ladder[0] < ladder[1] && ladder[1] < ladder[2], "{ladder:?}");
    }

    #[test]
    #[should_panic(expected = "target probability")]
    fn rejects_degenerate_target() {
        let sur = trained_surrogate();
        let _ = propose(&sur, &[0.4], (0.1, 10.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid A domain")]
    fn rejects_bad_domain() {
        let sur = trained_surrogate();
        let _ = propose(&sur, &[0.4], (5.0, 1.0), 0.5);
    }
}
