//! Deterministic RNG plumbing.
//!
//! Every stochastic component in the workspace (solvers, generators,
//! tuners, trainers) takes a `u64` seed and derives independent streams
//! through [`derive_seed`], so a whole experiment is reproducible from one
//! root seed and sub-streams do not accidentally correlate.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a [`StdRng`] from a `u64` seed.
///
/// # Examples
///
/// ```
/// use mathkit::rng::seeded_rng;
/// use rand::Rng;
/// let mut a = seeded_rng(1);
/// let mut b = seeded_rng(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from `(root, stream)` with the SplitMix64 finaliser.
///
/// Different `stream` labels produce decorrelated seeds from the same root,
/// which lets e.g. the 128 replicas of an annealing batch each own an
/// independent generator while remaining reproducible.
///
/// # Examples
///
/// ```
/// use mathkit::rng::derive_seed;
/// assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
/// assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
/// ```
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    // SplitMix64 finalisation of the combined state.
    let mut z = root
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child RNG — shorthand for `seeded_rng(derive_seed(root, s))`.
pub fn derive_rng(root: u64, stream: u64) -> StdRng {
    seeded_rng(derive_seed(root, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn seeded_rng_reproducible() {
        let xs: Vec<u32> = {
            let mut r = seeded_rng(99);
            (0..10).map(|_| r.gen()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = seeded_rng(99);
            (0..10).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn derive_seed_no_collisions_small_range() {
        let mut seen = HashSet::new();
        for root in 0..20u64 {
            for stream in 0..200u64 {
                assert!(seen.insert(derive_seed(root, stream)), "collision");
            }
        }
    }

    #[test]
    fn derived_streams_decorrelated() {
        // Adjacent streams must not produce identical first draws.
        let mut a = derive_rng(7, 0);
        let mut b = derive_rng(7, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn zero_inputs_are_fine() {
        // SplitMix64 must not map (0,0) to 0 thanks to the added constant.
        assert_ne!(derive_seed(0, 0), 0);
    }
}
