//! Simulated Annealing on CPU.
//!
//! The classical baseline solver from the paper's Fig. 1 (lower row):
//! single-flip Metropolis dynamics over a geometric β schedule. Each of the
//! `batch` replicas anneals independently from a uniform random state; one
//! *sweep* attempts `n` flips at fixed β.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::{derive_rng, derive_seed};
use qubo::{QuboModel, QuboState, ReplicaBatch};

use crate::parallel::parallel_map_with;
use crate::sample::{Sample, SampleSet};
use crate::schedule::BetaSchedule;
use crate::Solver;

/// Per-worker scratch for the lane-batched replica loop.
struct SaScratch<'m> {
    replicas: ReplicaBatch<'m>,
    rngs: Vec<StdRng>,
    best_e: Vec<f64>,
    best_x: Vec<Vec<u8>>,
}

/// Configuration for [`SimulatedAnnealer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// number of temperature steps (sweeps); each sweep attempts `n` flips
    pub sweeps: usize,
    /// optional explicit β range; `None` auto-scales from the model
    pub beta_range: Option<(f64, f64)>,
    /// report the best state seen during the anneal rather than the final
    /// state (hardware annealers effectively return the final state; the
    /// CPU implementation can afford to track the incumbent)
    pub track_best: bool,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            sweeps: 256,
            beta_range: None,
            track_best: true,
        }
    }
}

/// Metropolis single-flip simulated annealing.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{sa::{SaConfig, SimulatedAnnealer}, Solver};
/// let mut b = QuboBuilder::new(4);
/// for i in 0..4 {
///     b.add_linear(i, -1.0); // ground state: all ones, energy -4
/// }
/// let model = b.build();
/// let solver = SimulatedAnnealer::new(SaConfig::default());
/// let best = solver.sample(&model, 4, 1).best().unwrap().energy;
/// assert_eq!(best, -4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimulatedAnnealer {
    config: SaConfig,
}

impl SimulatedAnnealer {
    /// Creates a solver with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        SimulatedAnnealer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// Anneals a single replica in a reused scratch state and returns
    /// `(assignment, energy)`.
    ///
    /// The hot loop works purely on the incremental [`QuboState`]: the
    /// acceptance test reads the maintained flip-delta (O(1)), a commit is
    /// O(degree), and the incumbent is tracked from the cached energy — no
    /// full `model.energy()` call anywhere in the sweep.
    ///
    /// This is the reference trajectory [`SimulatedAnnealer::run_chunk`]
    /// reproduces bit-for-bit, lane by lane; it remains the entry point
    /// for single-replica use and equivalence tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn run_replica(
        &self,
        state: &mut QuboState<'_>,
        best_x: &mut Vec<u8>,
        schedule: &BetaSchedule,
        seed: u64,
    ) -> Sample {
        let mut rng = derive_rng(seed, 0x5A);
        let n = state.model().num_vars();
        state.randomize(&mut rng);
        best_x.clear();
        best_x.extend_from_slice(state.assignment());
        let mut best_e = state.energy();
        for beta in schedule.iter() {
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let delta = state.flip_delta(i);
                let accept = if delta <= 0.0 {
                    true
                } else {
                    let exponent = delta * beta;
                    // exp(-40) < 1e-17: skip the RNG draw for hopeless moves.
                    exponent < 40.0 && rng.gen::<f64>() < (-exponent).exp()
                };
                if accept {
                    state.flip(i);
                    // Incumbent tracking off the cached energy; strict
                    // improvement only, so equal-energy churn never copies.
                    if self.config.track_best && state.energy() < best_e {
                        best_e = state.energy();
                        best_x.copy_from_slice(state.assignment());
                    }
                }
            }
        }
        if self.config.track_best && best_e < state.energy() {
            Sample {
                assignment: best_x.clone(),
                energy: best_e,
            }
        } else {
            Sample {
                assignment: state.assignment().to_vec(),
                energy: state.energy(),
            }
        }
    }

    /// Anneals replicas `first .. first + count` in lockstep lanes of one
    /// [`ReplicaBatch`], returning their samples in replica order.
    ///
    /// Each lane runs the *unchanged* [`SimulatedAnnealer::run_replica`]
    /// algorithm on its own RNG stream (`derive_rng(derive_seed(seed,
    /// replica), 0x5A)`): the per-lane sequence of RNG draws, delta reads,
    /// flips and incumbent updates is identical, so every sample is
    /// bit-identical to the sequential path at any lane width — lanes only
    /// interleave operations *across* independent replicas. What batching
    /// buys is one shared CSR traversal for the per-replica cache rebuild
    /// and lane-interleaved (structure-of-arrays) delta storage.
    fn run_chunk(
        &self,
        scratch: &mut SaScratch<'_>,
        first: usize,
        count: usize,
        schedule: &BetaSchedule,
        seed: u64,
    ) -> Vec<Sample> {
        let rb = &mut scratch.replicas;
        let n = rb.num_vars();
        scratch.rngs.clear();
        for r in 0..count {
            let rs = derive_seed(seed, (first + r) as u64);
            scratch.rngs.push(derive_rng(rs, 0x5A));
        }
        for (r, rng) in scratch.rngs.iter_mut().enumerate() {
            rb.randomize_lane(r, rng);
        }
        // One shared CSR traversal rebuilds all lanes' caches.
        rb.rebuild_all();
        debug_assert!(count <= scratch.best_x.len());
        scratch.best_e.clear();
        for r in 0..count {
            scratch.best_e.push(rb.energy(r));
            rb.copy_assignment(r, &mut scratch.best_x[r]);
        }
        for beta in schedule.iter() {
            for _ in 0..n {
                for (r, rng) in scratch.rngs.iter_mut().enumerate() {
                    let i = rng.gen_range(0..n);
                    let delta = rb.flip_delta(r, i);
                    let accept = if delta <= 0.0 {
                        true
                    } else {
                        let exponent = delta * beta;
                        // exp(-40) < 1e-17: skip the RNG draw, as in
                        // run_replica.
                        exponent < 40.0 && rng.gen::<f64>() < (-exponent).exp()
                    };
                    if accept {
                        rb.flip(r, i);
                        if self.config.track_best && rb.energy(r) < scratch.best_e[r] {
                            scratch.best_e[r] = rb.energy(r);
                            rb.copy_assignment(r, &mut scratch.best_x[r]);
                        }
                    }
                }
            }
        }
        (0..count)
            .map(|r| {
                if self.config.track_best && scratch.best_e[r] < rb.energy(r) {
                    Sample {
                        assignment: scratch.best_x[r].clone(),
                        energy: scratch.best_e[r],
                    }
                } else {
                    let mut assignment = Vec::new();
                    rb.copy_assignment(r, &mut assignment);
                    Sample {
                        assignment,
                        energy: rb.energy(r),
                    }
                }
            })
            .collect()
    }
}

impl Solver for SimulatedAnnealer {
    fn name(&self) -> &str {
        "sa"
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        let sw = obs::Stopwatch::start();
        if model.num_vars() == 0 {
            return SampleSet::from_samples(
                (0..batch)
                    .map(|_| Sample {
                        assignment: Vec::new(),
                        energy: model.offset(),
                    })
                    .collect(),
            );
        }
        let schedule = match self.config.beta_range {
            Some((hot, cold)) => BetaSchedule::geometric(hot, cold, self.config.sweeps.max(1)),
            None => BetaSchedule::auto(model, self.config.sweeps.max(1)),
        };
        // Replicas advance in lockstep lanes (bit-identical to sequential
        // replicas at any width — see `run_chunk`); chunks of `lanes`
        // replicas fan out across workers.
        let lanes = crate::replica_lanes();
        let chunks = batch.div_ceil(lanes.max(1));
        let nested = parallel_map_with(
            chunks,
            || SaScratch {
                replicas: ReplicaBatch::new(model, lanes),
                rngs: Vec::with_capacity(lanes),
                best_e: Vec::with_capacity(lanes),
                best_x: vec![Vec::new(); lanes],
            },
            |scratch, chunk| {
                let first = chunk * lanes;
                let count = lanes.min(batch - first);
                self.run_chunk(scratch, first, count, &schedule, seed)
            },
        );
        let set = SampleSet::from_samples(nested.into_iter().flatten().collect());
        // Each replica runs `steps` sweeps of `n` Metropolis attempts;
        // every attempt reads one maintained flip-delta (an O(1)
        // incremental energy evaluation).
        let steps = schedule.steps() as u64;
        crate::metrics::record_sample(
            "sa",
            sw.elapsed_ns(),
            steps * batch as u64,
            steps * model.num_vars() as u64 * batch as u64,
        );
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::QuboBuilder;

    /// A frustrated 6-variable model with known ground state, solved
    /// exactly by enumeration inside the test.
    fn hard6() -> QuboModel {
        let mut b = QuboBuilder::new(6);
        let lin = [1.0, -2.0, 0.5, -0.5, 1.5, -1.0];
        for (i, &l) in lin.iter().enumerate() {
            b.add_linear(i, l);
        }
        let quad = [
            (0, 1, 2.0),
            (0, 2, -1.0),
            (1, 2, 1.5),
            (1, 3, -2.0),
            (2, 4, 1.0),
            (3, 4, -1.5),
            (4, 5, 2.0),
            (0, 5, -1.0),
        ];
        for &(i, j, w) in &quad {
            b.add_quadratic(i, j, w);
        }
        b.build()
    }

    fn exact_minimum(model: &QuboModel) -> f64 {
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        for bits in 0..(1u32 << n) {
            let x: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            best = best.min(model.energy(&x));
        }
        best
    }

    #[test]
    fn finds_ground_state_of_hard6() {
        let m = hard6();
        let truth = exact_minimum(&m);
        let solver = SimulatedAnnealer::default();
        let set = solver.sample(&m, 16, 7);
        assert!((set.best().unwrap().energy - truth).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = hard6();
        let solver = SimulatedAnnealer::default();
        let a = solver.sample(&m, 8, 123);
        let b = solver.sample(&m, 8, 123);
        assert_eq!(a, b);
        // Under a single hot sweep the chains cannot converge, so distinct
        // seeds must (almost surely) leave distinct fingerprints.
        let hot = SimulatedAnnealer::new(SaConfig {
            sweeps: 1,
            track_best: false,
            ..Default::default()
        });
        assert_ne!(hot.sample(&m, 8, 123), hot.sample(&m, 8, 124));
    }

    #[test]
    fn batch_size_respected() {
        let m = hard6();
        let solver = SimulatedAnnealer::default();
        assert_eq!(solver.sample(&m, 3, 1).len(), 3);
        assert_eq!(solver.sample(&m, 0, 1).len(), 0);
    }

    #[test]
    fn energies_match_assignments() {
        let m = hard6();
        let solver = SimulatedAnnealer::default();
        for s in solver.sample(&m, 8, 5).iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_sweeps_still_returns_states() {
        let m = hard6();
        let solver = SimulatedAnnealer::new(SaConfig {
            sweeps: 0,
            ..Default::default()
        });
        let set = solver.sample(&m, 4, 9);
        assert_eq!(set.len(), 4);
        for s in set.iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_model_degenerates() {
        let m = QuboBuilder::new(0).build();
        let solver = SimulatedAnnealer::default();
        let set = solver.sample(&m, 3, 1);
        assert_eq!(set.len(), 3);
        assert_eq!(set.best().unwrap().energy, 0.0);
    }

    #[test]
    fn explicit_beta_range_used() {
        let m = hard6();
        let solver = SimulatedAnnealer::new(SaConfig {
            sweeps: 64,
            beta_range: Some((0.5, 20.0)),
            track_best: true,
        });
        let set = solver.sample(&m, 8, 3);
        assert_eq!(set.len(), 8);
    }

    /// Lane width is a pure performance knob: any width produces the
    /// sample set bit-identically, and each sample equals a sequential
    /// `run_replica` with the same per-replica seed.
    #[test]
    fn lane_width_invariant_and_matches_run_replica() {
        let m = hard6();
        for track_best in [true, false] {
            let solver = SimulatedAnnealer::new(SaConfig {
                sweeps: 32,
                track_best,
                ..Default::default()
            });
            let baseline = solver.sample(&m, 11, 99);
            for width in [1usize, 3, 8, 16] {
                crate::set_replica_lanes(width);
                let got = solver.sample(&m, 11, 99);
                crate::set_replica_lanes(0);
                assert_eq!(got, baseline, "width {width} diverged");
            }
            let schedule = BetaSchedule::auto(&m, 32);
            for (replica, sample) in baseline.iter().enumerate() {
                let mut state = QuboState::new(&m, vec![0; 6]);
                let mut best_x = Vec::new();
                let want = solver.run_replica(
                    &mut state,
                    &mut best_x,
                    &schedule,
                    mathkit::rng::derive_seed(99, replica as u64),
                );
                assert_eq!(sample.assignment, want.assignment, "replica {replica}");
                assert_eq!(
                    sample.energy.to_bits(),
                    want.energy.to_bits(),
                    "replica {replica}"
                );
            }
        }
    }

    #[test]
    fn final_state_mode_runs() {
        let m = hard6();
        let solver = SimulatedAnnealer::new(SaConfig {
            track_best: false,
            ..Default::default()
        });
        let set = solver.sample(&m, 8, 3);
        for s in set.iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }
}
