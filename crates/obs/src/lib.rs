//! # obs — deterministic observability for the QROSS serving stack
//!
//! The serving stack's load-bearing invariant is bit-exactness: every
//! response byte-identical across worker counts, batching, caching and
//! wire formats. Off-the-shelf observability layers cannot promise that
//! (they allocate, lock, and interleave), so this crate provides exactly
//! the primitives the stack needs, built to be **provably
//! perturbation-free**:
//!
//! * [`Registry`] — a sharded metrics registry of atomic
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Histogram`]s. Handles
//!   are registered once (the only allocation) and recording is a single
//!   relaxed atomic RMW on a per-thread shard — no locks, no allocation,
//!   no syscalls on the hot path.
//! * [`Span`] — a `Copy` per-request trace: an ID minted at decode plus a
//!   fixed array of per-[`Stage`] durations
//!   (decode/queue/batch/forward/cache/encode). Spans ride the existing
//!   request plumbing by value; they never synchronise.
//! * [`TraceLog`] — a bounded keep-the-slowest event log; admission is
//!   guarded by a lock-free floor so the fast path (a request faster
//!   than the current N-th slowest) never takes the lock.
//! * [`prom`] — Prometheus text exposition (format 0.0.4) over any set
//!   of registries.
//!
//! The whole crate is feature-gated: building with `obs-off` compiles
//! every recording call to a no-op (the [`ENABLED`] const folds the
//! bodies away), which is how CI proves bit-neutrality — the committed
//! request mixes are replayed against an instrumented and an
//! uninstrumented build and every response byte is diffed.
//!
//! # Examples
//!
//! ```
//! use obs::{Registry, Stage, Span, Stopwatch};
//!
//! let reg = Registry::new();
//! let requests = reg.counter("demo_requests_total", "requests served");
//! let latency = reg.histogram("demo_latency_ns", "request latency");
//!
//! let mut span = Span::begin();
//! let sw = Stopwatch::start();
//! // ... handle the request ...
//! span.record(Stage::Decode, sw.elapsed_ns());
//! requests.inc();
//! latency.record(span.total_ns());
//! assert_eq!(requests.get(), if obs::ENABLED { 1 } else { 0 });
//! let text = obs::prom::render(&[&reg]);
//! assert!(text.contains("demo_requests_total"));
//! ```

pub mod clock;
pub mod prom;
pub mod registry;
pub mod span;
pub mod trace;

pub use registry::{Counter, Gauge, HistSnapshot, Histogram, Registry};
pub use span::{Span, Stage, Stopwatch, STAGES};
pub use trace::{TraceEntry, TraceLog};

/// Compile-time switch: `false` when built with the `obs-off` feature,
/// in which case every recording call in this crate folds to a no-op.
pub const ENABLED: bool = cfg!(not(feature = "obs-off"));

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry used by call sites that cannot thread an
/// explicit registry (solver kernels deep in the compute stack). Serving
/// engines own their own [`Registry`] so tests and multi-engine
/// processes stay isolated; exposition renders both.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Formats `base{label="value"}` — the canonical labeled-metric name
/// accepted by [`Registry`] registration and understood by the
/// exposition renderer.
pub fn labeled(base: &str, label: &str, value: &str) -> String {
    format!("{base}{{{label}=\"{value}\"}}")
}
