//! Serving protocol — the wire layer over
//! [`qross::serve::ServeEngine`], spoken in two formats on every
//! transport.
//!
//! One request, one response, **in request order** (responses never
//! reorder, whatever the engine's worker count). The same protocol runs
//! over stdin/stdout and TCP (`qross-serve`), and every connection
//! speaks either:
//!
//! * **NDJSON** — one JSON object per line (documented below); or
//! * **QBIN** ([`bin`]) — a length-framed binary protocol with raw
//!   little-endian f64 payloads and zero-copy decode, for clients that
//!   care about predict-path throughput.
//!
//! The format is sniffed from the first bytes of each connection
//! ([`codec::SessionCodec`]): a stream opening with the QBIN magic is
//! binary, anything else (JSON's `{`, whitespace) is NDJSON. Both run on
//! the same `--listen` port. Responses carry the identical f64 bit
//! patterns in either format — a QBIN predict response and the NDJSON
//! response for the same request decode to the same bits.
//!
//! # Requests
//!
//! Every request is a JSON object with an `op` and an optional client
//! `id` (echoed back verbatim):
//!
//! ```json
//! {"id": 1, "op": "predict", "features": [...], "a": 1.0}
//! {"id": 2, "op": "predict", "features": [...], "a_values": [0.5, 1.0, 2.0]}
//! {"id": 3, "op": "tsp", "tsplib": "NAME: up...EOF\n", "a_values": [1.0]}
//! {"id": 4, "op": "instance", "family": "maxcut",
//!  "instance": {"name": "g1", "dims": [4], "scalars": [], "vecs": [],
//!               "edges": [[0, 1, 1.0], [2, 3, 1.0]]}, "a_values": [1.0]}
//! {"id": 4, "op": "info"}
//! {"id": 5, "op": "feedback", "features": [...], "a": 1.0, "pf": 0.5,
//!  "e_avg": 3.25, "e_std": 0.5, "tag": "inst-7", "seed": 3}
//! {"id": 6, "op": "refresh"}
//! {"id": 7, "op": "model-info"}
//! {"id": 8, "op": "metrics"}
//! {"id": 9, "op": "predict", "tenant": "team-a", "features": [...], "a": 1.0}
//! ```
//!
//! * `predict` — evaluate the surrogate at `features` for one `a` or a
//!   grid of `a_values`. Served through the engine (micro-batched with
//!   concurrent requests, cached, backpressured).
//! * `tsp` — upload a TSPLIB95 instance. The bundle's own featurizer
//!   extracts the feature vector, the composed QROSS strategy plans its
//!   offline proposals (MFS, PBS₈₀, PBS₂₀), and any requested
//!   `a`/`a_values` are answered like `predict`. Requires a full bundle
//!   (`ServeModel::Bundle`); bare surrogate models reject this op.
//! * `instance` (alias `solve`) — upload a compact instance of **any
//!   registered problem family**: `family` names the family, `instance`
//!   carries the [`problems::InstanceData`] payload the family's own
//!   codec decodes, and the family's featurizer produces the feature
//!   vector served like `predict`. An unknown or misspelled `family` is
//!   a typed bad-request naming every registered family; a malformed
//!   payload is rejected by the family codec, never a panic. For
//!   `family: "tsp"` a `tsplib` text upload is also accepted and
//!   behaves exactly like the `tsp` op (which remains the alias for
//!   that path).
//! * `info` / `model-info` — model metadata, including the current swap
//!   generation and (online engines) the live feedback counters.
//! * `feedback` — report an observed solver outcome (`pf`, `e_avg`,
//!   `e_std` measured at `a`). Online engines only. When the record is
//!   the `--refresh-after`-th, the response is written only after the
//!   retrain/hot-swap it triggered completes — so, within a connection,
//!   every later request deterministically sees the new generation.
//! * `refresh` — force a retrain/hot-swap now (the operator's refresh
//!   button); same completion ordering as a triggering `feedback`.
//! * `metrics` — a point-in-time engine metrics snapshot (qps, p50/p99
//!   latency, batch occupancy, cache hit rate, per-tenant rejects split
//!   by reason, generation). Unlike every other response it is *not*
//!   deterministic across replays (it reports wall-clock rates), so it
//!   has its own response schema ([`MetricsResponse`]) and never appears
//!   in the CI byte-diff fixtures. Served on both wires: NDJSON op
//!   `metrics` and QBIN op `0x06` ([`bin::OP_METRICS`]).
//! * `trace` — the engine's bounded slowest-request log
//!   ([`TraceResponse`]): per-request trace IDs with the
//!   decode/queue/batch/forward/cache/encode latency breakdown. Like
//!   `metrics` it is wall-clock-dependent and excluded from byte-diffs;
//!   NDJSON-only.
//!
//! Any request may carry an optional `tenant` string: the engine's
//! admission control (per-tenant quotas, weighted fair queueing) accounts
//! the work to that tenant. Untagged requests ride the default tenant.
//!
//! # Sans-IO core
//!
//! The protocol itself never does I/O. [`codec::SessionCodec`] sniffs
//! the format and turns arbitrary byte chunks into framed requests (any
//! split boundary, bounded line/frame length), [`stage_item`] turns a
//! decoded item — NDJSON line or QBIN frame — into a [`Staged`] request,
//! and [`codec::ResponseEmitter`] serializes completed responses in
//! request order, as lines or frames to match. [`serve_connection`] is
//! the blocking driver over that core (stdio and thread-per-connection
//! TCP); `bench::net` drives the same core from a nonblocking event
//! loop.
//!
//! # Responses
//!
//! `{"id": ..., "ok": true, ...}` or `{"id": ..., "ok": false, "error":
//! "..."}`. Predictions carry both decimal f64s and their exact IEEE-754
//! bit patterns (`*_bits`), so `diff` on two response streams proves
//! bit-identity — the CI smoke step diffs a batched 4-worker run against
//! a sequential unbatched one.
//!
//! Malformed input (unparseable JSON, unknown op, wrong feature width,
//! non-finite values, truncated TSPLIB uploads) yields an `ok: false`
//! response on the offending line; the connection — and the process —
//! keep serving. A serving process must survive hostile uploads.

pub mod bin;
pub mod codec;

use std::io::{BufRead, Write};
use std::sync::mpsc;

use problems::tsplib::parse_tsplib;
use problems::{InstanceData, TspEncoding};
use qross::online::FeedbackRecord;
use qross::serve::{CompletionNotify, PendingPrediction, ServeEngine, ServeObs};
use qross::surrogate::SurrogatePrediction;
use serde::{Deserialize, Serialize};

pub use codec::{CodecLine, ResponseEmitter, SessionCodec, WireFormat, WireItem, MAX_LINE_BYTES};

/// How many staged (submitted but unwritten) responses a connection may
/// hold. Bounds per-connection memory against a client that floods
/// requests without reading responses; also the pipelining window that
/// gives the engine concurrent jobs to micro-batch.
pub const PIPELINE_DEPTH: usize = 256;

/// One parsed request line. Unknown ops and missing fields are rejected
/// at dispatch with an `ok: false` response, not a parse failure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Request {
    /// client-chosen correlation id, echoed into the response
    pub id: Option<u64>,
    /// `predict` | `tsp` | `instance`/`solve` | `info` | `model-info` |
    /// `feedback` | `refresh`
    pub op: Option<String>,
    /// problem-family registry name (`instance`/`solve`)
    pub family: Option<String>,
    /// compact instance payload, decoded by the family's own codec
    /// (`instance`/`solve`)
    pub instance: Option<InstanceData>,
    /// feature vector (`predict`/`feedback`)
    pub features: Option<Vec<f64>>,
    /// single relaxation parameter (`predict`/`tsp`/`feedback`)
    pub a: Option<f64>,
    /// relaxation-parameter grid (`predict`/`tsp`); takes precedence
    /// over `a` when both are present
    pub a_values: Option<Vec<f64>>,
    /// TSPLIB95 file content (`tsp`)
    pub tsplib: Option<String>,
    /// observed probability of feasibility (`feedback`)
    pub pf: Option<f64>,
    /// observed batch mean energy (`feedback`)
    pub e_avg: Option<f64>,
    /// observed batch energy standard deviation (`feedback`)
    pub e_std: Option<f64>,
    /// instance label, lineage only (`feedback`, optional)
    pub tag: Option<String>,
    /// solver-run seed, lineage only (`feedback`, optional)
    pub seed: Option<u64>,
    /// tenant this request's work is accounted to (any op, optional);
    /// absent/empty = the default tenant
    pub tenant: Option<String>,
}

/// One prediction in a response: decimal values for humans, exact bit
/// patterns for diffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionOut {
    /// the relaxation parameter evaluated
    pub a: f64,
    /// predicted probability of feasibility
    pub pf: f64,
    /// predicted mean energy
    pub e_avg: f64,
    /// predicted energy standard deviation
    pub e_std: f64,
    /// `pf` as `f64::to_bits`
    pub pf_bits: u64,
    /// `e_avg` as bits
    pub e_avg_bits: u64,
    /// `e_std` as bits
    pub e_std_bits: u64,
}

impl PredictionOut {
    fn new(a: f64, p: SurrogatePrediction) -> Self {
        PredictionOut {
            a,
            pf: p.pf,
            e_avg: p.e_avg,
            e_std: p.e_std,
            pf_bits: p.pf.to_bits(),
            e_avg_bits: p.e_avg.to_bits(),
            e_std_bits: p.e_std.to_bits(),
        }
    }
}

/// Model metadata (`info` / `model-info` ops).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// `bundle` (full pipeline) or `surrogate` (bare snapshot)
    pub kind: String,
    /// feature width every request must supply
    pub feature_dim: usize,
    /// dataset rows the model was trained on (bundles only)
    pub dataset_len: Option<u64>,
    /// training instances (bundles only)
    pub train_instances: Option<u64>,
    /// model generation currently serving new requests (0 = as loaded)
    pub generation: u64,
    /// whether the engine ingests feedback and hot-swaps
    pub online: bool,
    /// feedback records accepted so far (online engines only)
    pub feedback_count: Option<u64>,
    /// current replay-buffer occupancy (online engines only)
    pub buffer_len: Option<u64>,
    /// automatic retrain period in feedback records; 0 = manual
    /// refreshes only (online engines only)
    pub refresh_after: Option<u64>,
}

/// One response line.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    /// the request's `id`, echoed
    pub id: Option<u64>,
    /// whether the request was served
    pub ok: bool,
    /// error description when `ok` is false
    pub error: Option<String>,
    /// parsed instance name (`tsp`)
    pub instance: Option<String>,
    /// predictions, in `a_values` order
    pub predictions: Option<Vec<PredictionOut>>,
    /// planned offline proposals — MFS, PBS₈₀, PBS₂₀ (`tsp`)
    pub proposals: Option<Vec<f64>>,
    /// proposals as exact bit patterns
    pub proposal_bits: Option<Vec<u64>>,
    /// model metadata (`info` / `model-info`)
    pub info: Option<ModelInfo>,
    /// generation serving new requests after this op (`feedback` /
    /// `refresh`)
    pub generation: Option<u64>,
    /// feedback records accepted so far (`feedback`)
    pub feedback_count: Option<u64>,
    /// replay-buffer occupancy after the push (`feedback`)
    pub buffer_len: Option<u64>,
    /// whether this op completed a retrain/hot-swap (`feedback` /
    /// `refresh`)
    pub refreshed: Option<bool>,
}

impl Response {
    fn err(id: Option<u64>, message: impl std::fmt::Display) -> Response {
        Response {
            id,
            ok: false,
            error: Some(message.to_string()),
            ..Default::default()
        }
    }
}

/// One tenant's row in a [`MetricsResponse`]. Counters are cumulative
/// since engine start; `pending_rows` is the instantaneous backlog that
/// `quota_rows` (0 = unlimited) bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMetricsOut {
    pub tenant: String,
    pub weight: u64,
    pub quota_rows: u64,
    pub requests: u64,
    pub rows: u64,
    pub rejected: u64,
    /// rejections because this tenant's own row quota was full
    pub rejected_quota: u64,
    /// rejections because the global queue capacity was full
    pub rejected_capacity: u64,
    pub pending_rows: u64,
}

/// Engine metrics payload (`metrics` op). Latency quantiles come from a
/// log₂-bucketed histogram (exact to within √2); `null` until the first
/// request completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsOut {
    pub uptime_secs: f64,
    /// accepted requests per second, averaged over the uptime
    pub qps: f64,
    pub latency_p50_us: Option<f64>,
    pub latency_p99_us: Option<f64>,
    /// mean rows per worker forward pass (cache hits excluded)
    pub batch_occupancy: f64,
    /// cache hits / accepted rows
    pub cache_hit_rate: f64,
    /// model generation currently serving new requests
    pub generation: u64,
    /// queued (unanswered) rows across all tenants right now
    pub queue_depth: u64,
    /// total rejected requests (tenant quotas + global capacity)
    pub rejected: u64,
    /// rejections because a tenant's own row quota was full
    pub rejected_quota: u64,
    /// rejections because the global queue capacity was full
    pub rejected_capacity: u64,
    pub tenants: Vec<TenantMetricsOut>,
}

/// The `metrics` op's response line. Deliberately **not** a [`Response`]:
/// the `Response` schema is byte-frozen (the vendored serde subset
/// serializes every field, so adding one would change every response
/// line and break the replay fixtures' byte-identity contract), and
/// metrics are wall-clock-dependent anyway — they never take part in
/// byte-diff replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// the request's `id`, echoed
    pub id: Option<u64>,
    pub ok: bool,
    pub metrics: MetricsOut,
}

/// One entry of a [`TraceResponse`]: a slow request's identity and its
/// per-stage latency breakdown, nanoseconds per pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntryOut {
    /// the request's trace ID, minted at decode
    pub trace_id: u64,
    /// request op (`predict` | `tsp` | `instance`)
    pub op: String,
    /// tenant the request was admitted under (empty = default)
    pub tenant: String,
    /// sum of the stage durations below
    pub total_ns: u64,
    pub decode_ns: u64,
    pub queue_ns: u64,
    pub batch_ns: u64,
    pub forward_ns: u64,
    pub cache_ns: u64,
    pub encode_ns: u64,
}

/// The `trace` op's response line: the engine's bounded
/// keep-the-N-slowest request log, slowest first. Wall-clock-dependent
/// like [`MetricsResponse`], so it shares that schema's exclusion from
/// every byte-diff fixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceResponse {
    /// the request's `id`, echoed
    pub id: Option<u64>,
    pub ok: bool,
    /// the N in keep-the-N-slowest
    pub capacity: u64,
    /// retained entries, slowest first
    pub entries: Vec<TraceEntryOut>,
}

/// A request that has been validated and (when it needs the engine)
/// submitted, but whose response may not be computed yet. Staging is
/// cheap; the expensive part rides on the engine's worker pool, so a
/// connection can keep many requests in flight — which is exactly what
/// gives the workers batches to stack.
#[derive(Debug)]
pub enum Staged {
    /// response already complete (errors, `info`)
    Ready(Box<Response>),
    /// a pre-serialized response line (`trace` — its schema is not
    /// [`Response`], and the op is NDJSON-only)
    Raw(String),
    /// a metrics snapshot, serialized at emit in the connection's wire
    /// format — an NDJSON [`MetricsResponse`] line or a QBIN metrics
    /// frame ([`bin::OP_RESP_METRICS`])
    Metrics(Box<MetricsResponse>),
    /// engine-served predictions still in flight
    Pending {
        /// response skeleton: everything but `predictions`
        head: Box<Response>,
        /// the `a` value of each submitted row, for `PredictionOut`
        a_values: Vec<f64>,
        /// the engine's response handle
        pending: PendingPrediction,
        /// op name, trace-log attribution only
        op: &'static str,
        /// tenant label, trace-log attribution only
        tenant: String,
    },
}

/// Parses, validates and dispatches one request line. Returns `None` for
/// blank lines.
pub fn stage(engine: &ServeEngine, line: &str) -> Option<Staged> {
    stage_opts(engine, line, None)
}

/// [`stage`] with a completion hook handed to the engine for requests
/// that go through the batch queue — event-loop drivers use it to wake
/// their poller when a pending prediction becomes resolvable.
pub fn stage_opts(
    engine: &ServeEngine,
    line: &str,
    notify: Option<CompletionNotify>,
) -> Option<Staged> {
    let sw = obs::Stopwatch::start();
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let request: Request = match serde_json::from_str(line) {
        Ok(request) => request,
        Err(e) => {
            return Some(Staged::Ready(Box::new(Response::err(
                None,
                format!("unparseable request: {e}"),
            ))))
        }
    };
    let id = request.id;
    let tenant = request.tenant.clone();
    // The span is minted at decode: the JSON parse above is the
    // request's decode stage. Ops that never reach the engine simply
    // drop it — a span is `Copy` and records nothing on its own.
    let mut span = obs::Span::begin();
    span.record(obs::Stage::Decode, sw.elapsed_ns());
    let staged = match request.op.as_deref() {
        Some("info") | Some("model-info") => Staged::Ready(Box::new(Response {
            id,
            ok: true,
            info: Some(model_info(engine)),
            ..Default::default()
        })),
        Some("metrics") => stage_metrics(engine, id),
        Some("trace") => stage_trace(engine, id),
        Some("feedback") => stage_feedback(engine, id, &request),
        Some("refresh") => stage_refresh(engine, id),
        Some("predict") => {
            let Some(features) = request.features else {
                return Some(Staged::Ready(Box::new(Response::err(
                    id,
                    "predict needs `features`",
                ))));
            };
            let a_values = match (request.a_values, request.a) {
                (Some(grid), _) => grid,
                (None, Some(a)) => vec![a],
                (None, None) => {
                    return Some(Staged::Ready(Box::new(Response::err(
                        id,
                        "predict needs `a` or `a_values`",
                    ))))
                }
            };
            submit(
                engine,
                id,
                tenant.as_deref(),
                Response::default(),
                features,
                a_values,
                notify,
                "predict",
                span,
            )
        }
        Some("tsp") => stage_tsp(
            engine,
            id,
            tenant.as_deref(),
            request.tsplib,
            request.a,
            request.a_values,
            notify,
            span,
        ),
        Some("instance") | Some("solve") => stage_instance(
            engine,
            id,
            tenant.as_deref(),
            request.family,
            request.instance,
            request.tsplib,
            request.a,
            request.a_values,
            notify,
            span,
        ),
        // The op list in this message is frozen: the committed
        // error-replay fixtures byte-diff against it, so later ops
        // (`metrics`, `trace`) are documented in README/ARTIFACTS
        // instead.
        Some(other) => Staged::Ready(Box::new(Response::err(
            id,
            format!(
                "unknown op `{other}` (expected predict | tsp | info | model-info | feedback | \
                 refresh)"
            ),
        ))),
        None => Staged::Ready(Box::new(Response::err(id, "missing `op`"))),
    };
    Some(staged)
}

/// The `metrics` op, either wire: snapshot the engine into the
/// [`MetricsResponse`] schema; serialization happens at emit, per the
/// connection's wire format.
fn stage_metrics(engine: &ServeEngine, id: Option<u64>) -> Staged {
    let m = engine.metrics();
    Staged::Metrics(Box::new(MetricsResponse {
        id,
        ok: true,
        metrics: MetricsOut {
            uptime_secs: m.uptime_secs,
            qps: m.qps,
            latency_p50_us: m.latency_p50_us,
            latency_p99_us: m.latency_p99_us,
            batch_occupancy: m.batch_occupancy,
            cache_hit_rate: m.cache_hit_rate,
            generation: m.generation,
            queue_depth: m.queue_depth as u64,
            rejected: m.rejected,
            rejected_quota: m.rejected_quota,
            rejected_capacity: m.rejected_capacity,
            tenants: m
                .tenants
                .into_iter()
                .map(|t| TenantMetricsOut {
                    tenant: t.tenant,
                    weight: u64::from(t.weight),
                    quota_rows: t.quota_rows as u64,
                    requests: t.requests,
                    rows: t.rows,
                    rejected: t.rejected,
                    rejected_quota: t.rejected_quota,
                    rejected_capacity: t.rejected_capacity,
                    pending_rows: t.pending_rows as u64,
                })
                .collect(),
        },
    }))
}

/// The `trace` op (NDJSON-only): dump the engine's keep-the-N-slowest
/// request log with per-stage latency breakdowns, pre-serialized (its
/// schema is [`TraceResponse`], not [`Response`]).
fn stage_trace(engine: &ServeEngine, id: Option<u64>) -> Staged {
    let log = engine.obs().trace_log();
    let payload = TraceResponse {
        id,
        ok: true,
        capacity: log.capacity() as u64,
        entries: log
            .snapshot()
            .into_iter()
            .map(|e| TraceEntryOut {
                trace_id: e.trace_id,
                op: e.op.to_string(),
                tenant: e.tenant,
                total_ns: e.total_ns,
                decode_ns: e.stage_ns[obs::Stage::Decode as usize],
                queue_ns: e.stage_ns[obs::Stage::Queue as usize],
                batch_ns: e.stage_ns[obs::Stage::Batch as usize],
                forward_ns: e.stage_ns[obs::Stage::Forward as usize],
                cache_ns: e.stage_ns[obs::Stage::Cache as usize],
                encode_ns: e.stage_ns[obs::Stage::Encode as usize],
            })
            .collect(),
    };
    match serde_json::to_string(&payload) {
        Ok(line) => Staged::Raw(line),
        Err(e) => Staged::Ready(Box::new(Response::err(
            id,
            format!("trace serialization failed: {e}"),
        ))),
    }
}

/// Maps one decoded [`CodecLine`] to a staged response: well-formed
/// lines go through [`stage_opts`]; protocol-level rejects (a line over
/// [`MAX_LINE_BYTES`], invalid UTF-8) become typed bad-request error
/// responses on the spot — the session keeps serving.
pub fn stage_line(
    engine: &ServeEngine,
    item: CodecLine,
    notify: Option<CompletionNotify>,
) -> Option<Staged> {
    match item {
        CodecLine::Line(line) => stage_opts(engine, &line, notify),
        CodecLine::Oversized { limit } => Some(Staged::Ready(Box::new(Response::err(
            None,
            qross::QrossError::BadRequest {
                message: format!("request line exceeds the {limit}-byte limit"),
            },
        )))),
        CodecLine::InvalidUtf8 => Some(Staged::Ready(Box::new(Response::err(
            None,
            qross::QrossError::BadRequest {
                message: "request line is not valid UTF-8".to_string(),
            },
        )))),
    }
}

/// Dispatches one CRC-verified QBIN frame. The borrowed
/// [`bin::BinRequest`] view is decoded in place over the connection's
/// read buffer; the single copy into owned memory happens here, at
/// engine submit — the same ownership point as the NDJSON path, minus
/// the JSON parse and f64 text round-trip.
///
/// Payload-level rejects (unknown op, grammar violations) become
/// `ok: false` responses, mirroring how NDJSON treats an unknown `op` —
/// the session keeps serving. `tsp` TSPLIB uploads and `trace` are
/// NDJSON-only ops by design (one is a text format, the other a
/// diagnostic dump); instance uploads travel over QBIN through the
/// compact `instance` op instead, and `metrics` has its own frame pair
/// ([`bin::OP_METRICS`] / [`bin::OP_RESP_METRICS`]).
pub fn stage_frame(
    engine: &ServeEngine,
    frame: &bin::Frame<'_>,
    notify: Option<CompletionNotify>,
) -> Staged {
    let sw = obs::Stopwatch::start();
    let request = match bin::decode_request(frame) {
        Ok(request) => request,
        Err(e) => {
            return Staged::Ready(Box::new(Response::err(
                None,
                qross::QrossError::BadRequest {
                    message: format!("bad QBIN request: {e}"),
                },
            )))
        }
    };
    // Decode stage = the zero-copy payload parse above (the owning
    // copies below are charged to decode too, via the submit wrappers'
    // recorded span).
    let mut span = obs::Span::begin();
    match request {
        bin::BinRequest::Predict {
            id,
            tenant,
            a_values,
            features,
        } => {
            if a_values.is_empty() {
                return Staged::Ready(Box::new(Response::err(
                    id,
                    "predict needs `a` or `a_values`",
                )));
            }
            let tenant = (!tenant.is_empty()).then_some(tenant);
            let (features, a_values) = (features.to_vec(), a_values.to_vec());
            span.record(obs::Stage::Decode, sw.elapsed_ns());
            submit(
                engine,
                id,
                tenant,
                Response::default(),
                features,
                a_values,
                notify,
                "predict",
                span,
            )
        }
        bin::BinRequest::Info { id } => Staged::Ready(Box::new(Response {
            id,
            ok: true,
            info: Some(model_info(engine)),
            ..Default::default()
        })),
        bin::BinRequest::Metrics { id } => stage_metrics(engine, id),
        bin::BinRequest::Feedback {
            id,
            a,
            pf,
            e_avg,
            e_std,
            seed,
            tag,
            features,
        } => ingest_feedback(
            engine,
            id,
            FeedbackRecord {
                features: features.to_vec(),
                a,
                observed_pf: pf,
                observed_e_avg: e_avg,
                observed_e_std: e_std,
                instance_tag: tag.to_string(),
                seed,
            },
        ),
        bin::BinRequest::Refresh { id } => stage_refresh(engine, id),
        bin::BinRequest::Instance {
            id,
            tenant,
            family,
            data,
            a_values,
        } => {
            let family = match problems::lookup_family(family) {
                Ok(family) => family,
                Err(e) => return bad_request(id, e),
            };
            let tenant = (!tenant.is_empty()).then_some(tenant);
            let a_values = a_values.to_vec();
            span.record(obs::Stage::Decode, sw.elapsed_ns());
            stage_instance_data(engine, id, tenant, family, &data, a_values, notify, span)
        }
    }
}

/// Maps one decoded [`WireItem`] — either protocol — to a staged
/// response. Framing-level QBIN rejects (oversized, CRC mismatch,
/// truncation) become typed `ok: false` responses, like the NDJSON
/// line-cap path; whether the session can continue afterwards is the
/// error's [`bin::BinError::is_fatal`] — drivers check it before
/// consuming the item and close after answering a fatal one (framing is
/// lost, resync is impossible).
pub fn stage_item(
    engine: &ServeEngine,
    item: WireItem<'_>,
    notify: Option<CompletionNotify>,
) -> Option<Staged> {
    match item {
        WireItem::Line(line) => stage_line(engine, line, notify),
        WireItem::Frame(frame) => Some(stage_frame(engine, &frame, notify)),
        WireItem::FrameError(e) => Some(Staged::Ready(Box::new(Response::err(
            None,
            qross::QrossError::BadRequest {
                message: format!("bad QBIN frame: {e}"),
            },
        )))),
    }
}

/// Serializes one completed [`Response`] onto `out` in the connection's
/// wire format — one NDJSON line (through the reusable `scratch`
/// buffer; bytes identical to a fresh `to_string`) or one QBIN frame
/// (encoded directly into `out`).
///
/// # Errors
///
/// NDJSON serialization failure only (cannot happen for the fixed
/// response schema; kept fallible to avoid a panic path on the wire).
fn emit_response(
    response: &Response,
    wire: WireFormat,
    scratch: &mut String,
    out: &mut Vec<u8>,
) -> std::io::Result<()> {
    match wire {
        WireFormat::Ndjson => {
            scratch.clear();
            serde_json::to_string_into(response, scratch)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.extend_from_slice(scratch.as_bytes());
            out.push(b'\n');
        }
        WireFormat::Qbin => bin::encode_response(out, response),
    }
    Ok(())
}

/// Serializes one [`MetricsResponse`] onto `out` in the connection's
/// wire format — the NDJSON `metrics` line (byte-identical to a fresh
/// `to_string`) or one QBIN metrics frame.
///
/// # Errors
///
/// As [`emit_response`].
fn emit_metrics(
    payload: &MetricsResponse,
    wire: WireFormat,
    scratch: &mut String,
    out: &mut Vec<u8>,
) -> std::io::Result<()> {
    match wire {
        WireFormat::Ndjson => {
            scratch.clear();
            serde_json::to_string_into(payload, scratch)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.extend_from_slice(scratch.as_bytes());
            out.push(b'\n');
        }
        WireFormat::Qbin => bin::encode_metrics_response(out, payload),
    }
    Ok(())
}

/// Completes and serializes one engine-served response — the shared
/// emit half of the blocking writer and the event-loop emitter. The
/// serialization is timed as the span's encode stage; the finished span
/// then lands in the encode histogram and is offered to the engine's
/// slowest-request trace log. All of it compiles away under `obs-off`;
/// the emitted bytes are the same either way.
///
/// # Errors
///
/// As [`emit_response`].
#[allow(clippy::too_many_arguments)]
fn emit_pending(
    serve_obs: &ServeObs,
    op: &'static str,
    tenant: &str,
    mut span: obs::Span,
    head: Box<Response>,
    a_values: Vec<f64>,
    outcome: Result<Vec<SurrogatePrediction>, qross::QrossError>,
    wire: WireFormat,
    scratch: &mut String,
    out: &mut Vec<u8>,
) -> std::io::Result<()> {
    let sw = obs::Stopwatch::start();
    let response = complete(head, a_values, outcome);
    emit_response(&response, wire, scratch, out)?;
    if obs::ENABLED {
        let encode_ns = sw.elapsed_ns();
        span.record(obs::Stage::Encode, encode_ns);
        serve_obs.record_stage(obs::Stage::Encode, encode_ns);
        serve_obs.trace_log().observe(&span, op, tenant);
    }
    Ok(())
}

/// Builds the `info` / `model-info` payload from the engine's current
/// state. Every field is a pure function of the request stream within a
/// connection, so info responses diff cleanly across worker counts.
fn model_info(engine: &ServeEngine) -> ModelInfo {
    let snapshot = engine.model();
    let trained = snapshot.model.trained();
    let status = engine.online_status();
    ModelInfo {
        kind: if trained.is_some() {
            "bundle"
        } else {
            "surrogate"
        }
        .to_string(),
        feature_dim: snapshot.model.feature_dim(),
        dataset_len: trained.map(|t| t.dataset_len as u64),
        train_instances: trained.map(|t| t.train_encodings.len() as u64),
        generation: snapshot.generation,
        online: engine.is_online(),
        feedback_count: status.map(|s| s.feedback_count),
        buffer_len: status.map(|s| s.buffer_len as u64),
        refresh_after: status.map(|s| s.refresh_after as u64),
    }
}

/// The `feedback` op: validate, ingest, and — when this record triggers a
/// retrain — block until the hot-swap completes, so every later request
/// on this connection deterministically sees the new generation.
fn stage_feedback(engine: &ServeEngine, id: Option<u64>, request: &Request) -> Staged {
    let (Some(features), Some(a), Some(pf), Some(e_avg), Some(e_std)) = (
        request.features.clone(),
        request.a,
        request.pf,
        request.e_avg,
        request.e_std,
    ) else {
        return Staged::Ready(Box::new(Response::err(
            id,
            "feedback needs `features`, `a`, `pf`, `e_avg` and `e_std`",
        )));
    };
    ingest_feedback(
        engine,
        id,
        FeedbackRecord {
            features,
            a,
            observed_pf: pf,
            observed_e_avg: e_avg,
            observed_e_std: e_std,
            instance_tag: request.tag.clone().unwrap_or_default(),
            seed: request.seed.unwrap_or(0),
        },
    )
}

/// Feedback ingestion shared by both wire formats: push the record,
/// and — when it triggers a retrain — block until the hot-swap lands.
fn ingest_feedback(engine: &ServeEngine, id: Option<u64>, record: FeedbackRecord) -> Staged {
    let ack = match engine.submit_feedback(record) {
        Ok(ack) => ack,
        Err(e) => return Staged::Ready(Box::new(Response::err(id, e))),
    };
    // When this record triggered a retrain, report the generation *its*
    // swap installed (the wait() result) — another connection may have
    // swapped again before this response is built, and engine.generation()
    // would misattribute that later swap to this record.
    let (refreshed, generation) = match ack.refresh {
        None => (false, engine.generation()),
        Some(pending) => match pending.wait() {
            Ok(generation) => (true, generation),
            Err(e) => {
                return Staged::Ready(Box::new(Response::err(
                    id,
                    format!("feedback accepted but the triggered retrain failed: {e}"),
                )))
            }
        },
    };
    Staged::Ready(Box::new(Response {
        id,
        ok: true,
        generation: Some(generation),
        feedback_count: Some(ack.feedback_count),
        buffer_len: Some(ack.buffer_len as u64),
        refreshed: Some(refreshed),
        ..Default::default()
    }))
}

/// The `refresh` op: force a retrain/hot-swap and block until it lands.
fn stage_refresh(engine: &ServeEngine, id: Option<u64>) -> Staged {
    let outcome = engine.refresh().and_then(|pending| pending.wait());
    match outcome {
        Ok(generation) => Staged::Ready(Box::new(Response {
            id,
            ok: true,
            generation: Some(generation),
            refreshed: Some(true),
            ..Default::default()
        })),
        Err(e) => Staged::Ready(Box::new(Response::err(id, e))),
    }
}

/// The `tsp` op: parse the upload, featurise with the bundle's featurizer,
/// plan the offline proposals, and submit any requested grid.
#[allow(clippy::too_many_arguments)]
fn stage_tsp(
    engine: &ServeEngine,
    id: Option<u64>,
    tenant: Option<&str>,
    tsplib: Option<String>,
    a: Option<f64>,
    a_values: Option<Vec<f64>>,
    notify: Option<CompletionNotify>,
    span: obs::Span,
) -> Staged {
    record_family_request("tsp");
    let snapshot = engine.model();
    let Some(trained) = snapshot.model.trained() else {
        return Staged::Ready(Box::new(Response::err(
            id,
            "this model is a bare surrogate: `tsp` needs a full bundle (train with --problem tsp)",
        )));
    };
    let Some(text) = tsplib else {
        return Staged::Ready(Box::new(Response::err(id, "tsp needs `tsplib`")));
    };
    let instance = match parse_tsplib(&text) {
        Ok(instance) => instance,
        Err(e) => return Staged::Ready(Box::new(Response::err(id, e))),
    };
    let encoding = TspEncoding::preprocessed(instance);
    let features = trained.features_for(&encoding);
    // Offline plan only: MFS + PBS come straight from the surrogate, no
    // solver in the loop — the serve-side half of the paper's strategies.
    let strategy = trained.strategy_for(
        &encoding,
        trained.config.collect.batch,
        mathkit::rng::derive_seed(trained.config.seed, 777),
    );
    let proposals = strategy.planned_offline().to_vec();
    let head = Response {
        instance: Some(encoding.fitness_instance().name().to_string()),
        proposal_bits: Some(proposals.iter().map(|p| p.to_bits()).collect()),
        proposals: Some(proposals),
        ..Default::default()
    };
    let a_values = match (a_values, a) {
        (Some(grid), _) => grid,
        (None, Some(a)) => vec![a],
        (None, None) => Vec::new(),
    };
    submit(
        engine, id, tenant, head, features, a_values, notify, "tsp", span,
    )
}

/// Bumps `qross_family_requests_total{family=...}` on the process-wide
/// registry. The counter handles are resolved once per process (one
/// `OnceLock` map over the static family registry), so the per-request
/// cost is a `HashMap` probe and a relaxed atomic add — and nothing at
/// all under `obs-off`.
fn record_family_request(family: &str) {
    if !obs::ENABLED {
        return;
    }
    static FAMILY_REQUESTS: std::sync::OnceLock<
        std::collections::HashMap<&'static str, std::sync::Arc<obs::Counter>>,
    > = std::sync::OnceLock::new();
    let counters = FAMILY_REQUESTS.get_or_init(|| {
        problems::registry()
            .iter()
            .map(|f| {
                let counter = obs::global().counter(
                    obs::labeled("qross_family_requests_total", "family", f.name()),
                    "instance uploads staged, by problem family",
                );
                (f.name(), counter)
            })
            .collect()
    });
    if let Some(counter) = counters.get(family) {
        counter.inc();
    }
}

/// Forces registration of the protocol layer's lazily-created global
/// metrics (the per-family request counters) so a pre-traffic scrape
/// already lists every series at zero. No-op under `obs-off`.
pub fn register_protocol_metrics() {
    record_family_request("");
}

/// A family-layer rejection (unknown family, malformed payload) as a
/// typed bad-request response — the session keeps serving.
fn bad_request(id: Option<u64>, e: impl std::fmt::Display) -> Staged {
    Staged::Ready(Box::new(Response::err(
        id,
        qross::QrossError::BadRequest {
            message: e.to_string(),
        },
    )))
}

/// The `instance` / `solve` op: resolve the family in the registry,
/// decode the compact payload with the family's own codec, featurise
/// with the family's recipe, and submit any requested grid.
///
/// An unknown `family` is a typed bad-request naming every registered
/// family; a payload the codec rejects is a bad-request with the codec's
/// explanation. For `family: "tsp"` a `tsplib` text upload is accepted
/// too and takes the exact `tsp`-op path (bundle featurizer, strategy
/// proposals).
#[allow(clippy::too_many_arguments)]
fn stage_instance(
    engine: &ServeEngine,
    id: Option<u64>,
    tenant: Option<&str>,
    family: Option<String>,
    instance: Option<InstanceData>,
    tsplib: Option<String>,
    a: Option<f64>,
    a_values: Option<Vec<f64>>,
    notify: Option<CompletionNotify>,
    span: obs::Span,
) -> Staged {
    let Some(family_name) = family else {
        return Staged::Ready(Box::new(Response::err(id, "instance needs `family`")));
    };
    let family = match problems::lookup_family(&family_name) {
        Ok(family) => family,
        Err(e) => return bad_request(id, e),
    };
    // The TSPLIB text path stays available through the generic op.
    if family.name() == "tsp" && instance.is_none() && tsplib.is_some() {
        return stage_tsp(engine, id, tenant, tsplib, a, a_values, notify, span);
    }
    let Some(data) = instance else {
        return Staged::Ready(Box::new(Response::err(id, "instance needs `instance`")));
    };
    let a_values = match (a_values, a) {
        (Some(grid), _) => grid,
        (None, Some(a)) => vec![a],
        (None, None) => Vec::new(),
    };
    stage_instance_data(engine, id, tenant, family, &data, a_values, notify, span)
}

/// The format-independent core of the `instance` op, shared with the
/// QBIN frame path: decode through the family codec, featurise, submit.
#[allow(clippy::too_many_arguments)]
fn stage_instance_data(
    engine: &ServeEngine,
    id: Option<u64>,
    tenant: Option<&str>,
    family: &dyn problems::ProblemFamily,
    data: &InstanceData,
    a_values: Vec<f64>,
    notify: Option<CompletionNotify>,
    span: obs::Span,
) -> Staged {
    record_family_request(family.name());
    let problem = match family.decode(data) {
        Ok(problem) => problem,
        Err(e) => return bad_request(id, e),
    };
    let features = problem.features();
    let head = Response {
        instance: Some(problems::RelaxableProblem::name(&problem).to_string()),
        ..Default::default()
    };
    submit(
        engine, id, tenant, head, features, a_values, notify, "instance", span,
    )
}

/// Pushes validated work into the engine; engine-side rejections
/// (width/finiteness checks, quotas, backpressure) become `ok: false`
/// responses. The request's span (decode already recorded) rides into
/// the engine, which fills in queue/batch/forward/cache and hands it
/// back with the completion.
#[allow(clippy::too_many_arguments)]
fn submit(
    engine: &ServeEngine,
    id: Option<u64>,
    tenant: Option<&str>,
    mut head: Response,
    features: Vec<f64>,
    a_values: Vec<f64>,
    notify: Option<CompletionNotify>,
    op: &'static str,
    span: obs::Span,
) -> Staged {
    if obs::ENABLED {
        engine
            .obs()
            .record_stage(obs::Stage::Decode, span.stage_ns(obs::Stage::Decode));
    }
    match engine.submit_spanned(tenant, features, a_values.clone(), notify, span) {
        Ok(pending) => {
            head.id = id;
            Staged::Pending {
                head: Box::new(head),
                a_values,
                pending,
                op,
                tenant: tenant.unwrap_or("").to_string(),
            }
        }
        Err(e) => {
            let mut response = Response::err(id, e);
            // Keep whatever instance context was already computed.
            response.instance = head.instance;
            Staged::Ready(Box::new(response))
        }
    }
}

/// Completes a pending response skeleton with the engine's verdict.
fn complete(
    head: Box<Response>,
    a_values: Vec<f64>,
    outcome: Result<Vec<SurrogatePrediction>, qross::QrossError>,
) -> Response {
    let mut response = *head;
    match outcome {
        Ok(predictions) => {
            response.ok = true;
            response.predictions = Some(
                a_values
                    .into_iter()
                    .zip(predictions)
                    .map(|(a, p)| PredictionOut::new(a, p))
                    .collect(),
            );
        }
        Err(e) => {
            response.ok = false;
            response.error = Some(e.to_string());
        }
    }
    response
}

/// Serializes a [`Response`] to its NDJSON line (no trailing newline).
///
/// # Errors
///
/// `InvalidData` when serialization fails (it cannot for the fixed
/// response schema; kept fallible to avoid a panic path on the wire).
pub fn render_response(response: &Response) -> std::io::Result<String> {
    serde_json::to_string(response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Waits (blocking) for a staged request and serializes its response
/// line. The blocking driver's write half; event loops use
/// [`codec::ResponseEmitter`] instead, which polls rather than waits.
///
/// # Errors
///
/// As [`render_response`].
pub fn render(staged: Staged) -> std::io::Result<String> {
    match staged {
        Staged::Ready(response) => render_response(&response),
        Staged::Raw(line) => Ok(line),
        Staged::Metrics(payload) => serde_json::to_string(payload.as_ref())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
        Staged::Pending {
            head,
            a_values,
            pending,
            ..
        } => render_response(&complete(head, a_values, pending.wait())),
    }
}

/// Serves one connection to completion, either wire format: reads
/// requests from `reader` (NDJSON lines or QBIN frames, sniffed from the
/// first bytes), writes one response per request to `writer`, in order.
///
/// A staging thread parses/validates/submits while this thread resolves
/// and writes, so up to [`PIPELINE_DEPTH`] requests are in flight — the
/// concurrency the engine's micro-batching feeds on. Returns when the
/// reader reaches EOF (or the client disconnects).
///
/// If the *write* side fails while the reader is still open (a client
/// that stops reading responses but keeps the connection up), the reader
/// may sit in a blocking read that the dropped channel alone cannot
/// interrupt — pass an `abort_input` hook through
/// [`serve_connection_aborting`] that forcibly unblocks it (e.g.
/// `TcpStream::shutdown`); this plain variant uses a no-op hook, which is
/// fine for in-memory readers and the stdio pipeline (where a dead
/// stdout means the driving process is tearing us down anyway).
///
/// # Errors
///
/// Propagates I/O errors from either side of the connection.
pub fn serve_connection<R, W>(engine: &ServeEngine, reader: R, writer: W) -> std::io::Result<()>
where
    R: BufRead + Send,
    W: Write,
{
    serve_connection_aborting(engine, reader, writer, || {})
}

/// [`serve_connection`] with an `abort_input` hook invoked when the write
/// side dies first: it must unblock any in-flight blocking read so the
/// staging thread can exit (for TCP, shut the socket down). Without it a
/// client that stops reading responses while holding the connection open
/// would leak this session's thread until its next request line.
///
/// # Errors
///
/// Propagates I/O errors from either side; a write-side error wins over
/// the read-side error the abort provokes.
pub fn serve_connection_aborting<R, W, F>(
    engine: &ServeEngine,
    reader: R,
    mut writer: W,
    abort_input: F,
) -> std::io::Result<()>
where
    R: BufRead + Send,
    W: Write,
    F: FnOnce(),
{
    let (tx, rx) = mpsc::sync_channel::<(WireFormat, Staged)>(PIPELINE_DEPTH);
    std::thread::scope(|scope| {
        let stager = scope.spawn(move || -> std::io::Result<()> {
            // Thin driver over the sans-IO codec: feed whatever chunk the
            // reader hands us, stage every completed item. Byte-identical
            // to the old `BufRead::lines` loop for well-formed NDJSON; on
            // hostile input (oversized or non-UTF-8 lines, corrupt QBIN
            // frames) it answers with a typed `ok: false` response
            // instead of tearing the session down.
            let mut reader = reader;
            let mut session = SessionCodec::new();
            loop {
                let chunk = reader.fill_buf()?;
                let eof = chunk.is_empty();
                if !eof {
                    session.feed(chunk);
                    let n = chunk.len();
                    reader.consume(n);
                }
                // The wire format is fixed once sniffed; `None` only
                // while no item can exist yet (the EOF-mid-sniff tail
                // is NDJSON by definition).
                let wire = session.wire().unwrap_or(WireFormat::Ndjson);
                while let Some(item) = session.next_item() {
                    let fatal = matches!(&item, WireItem::FrameError(e) if e.is_fatal());
                    let staged = stage_item(engine, item, None);
                    if let Some(staged) = staged {
                        if tx.send((wire, staged)).is_err() {
                            return Ok(()); // writer side gone
                        }
                    }
                    if fatal {
                        // Framing is lost (bad magic / unknown version):
                        // the reject was answered; close instead of
                        // guessing at a resync point.
                        return Ok(());
                    }
                }
                if eof {
                    if let Some(item) = session.finish() {
                        if let Some(staged) = stage_item(engine, item, None) {
                            let _ = tx.send((wire, staged));
                        }
                    }
                    return Ok(());
                }
            }
        });
        let mut scratch = String::new();
        let mut out: Vec<u8> = Vec::new();
        let mut write_item = |wire: WireFormat, staged: Staged| -> std::io::Result<()> {
            out.clear();
            match staged {
                Staged::Ready(response) => emit_response(&response, wire, &mut scratch, &mut out)?,
                Staged::Raw(line) => {
                    // Pre-serialized NDJSON (`trace`) — not reachable
                    // over QBIN.
                    out.extend_from_slice(line.as_bytes());
                    out.push(b'\n');
                }
                Staged::Metrics(payload) => emit_metrics(&payload, wire, &mut scratch, &mut out)?,
                Staged::Pending {
                    head,
                    a_values,
                    pending,
                    op,
                    tenant,
                } => {
                    let (span, outcome) = pending.wait_spanned();
                    emit_pending(
                        engine.obs(),
                        op,
                        &tenant,
                        span,
                        head,
                        a_values,
                        outcome,
                        wire,
                        &mut scratch,
                        &mut out,
                    )?;
                }
            }
            writer.write_all(&out)?;
            writer.flush()
        };
        let mut write_result = Ok(());
        while let Ok((wire, staged)) = rx.recv() {
            if let Err(e) = write_item(wire, staged) {
                write_result = Err(e);
                break;
            }
        }
        if write_result.is_err() {
            // Unblock a reader parked in a blocking read, then close our
            // side of the channel so its next send fails fast.
            abort_input();
            drop(rx);
        }
        let staged_result = stager
            .join()
            .map_err(|_| std::io::Error::other("staging thread panicked"))?;
        match write_result {
            // The write failure is the root cause; the abort-provoked
            // read error (if any) is a consequence.
            Err(e) => Err(e),
            Ok(()) => staged_result,
        }
    })
}
