//! Mixed-family serving stress: one committed request mix covering every
//! registered problem family (`tsp`, `mvc`, `qap`, `maxcut`, `knapsack`)
//! at roughly **10× the micro-corpus instance sizes**, replayed over
//! NDJSON and over QBIN against identically configured engines, at
//! 4 workers with the cache on AND at 1 worker with it off. Every
//! decoded `f64` must carry identical bit patterns across all four
//! replays — the registry's featurization is part of the bit-identity
//! contract, not just the surrogate forward pass.
//!
//! The fixture also carries the error-path parity cases: an unknown
//! family (typed bad-request naming every registered family) and a
//! payload the family codec rejects, both expressed identically on both
//! wires.
//!
//! Regenerate the fixture after an intentional request-schema change:
//!
//! ```text
//! QROSS_WRITE_MIXED_FIXTURE=1 cargo test --test integration_mixed_family
//! ```

use std::io::Cursor;
use std::sync::Arc;

use bench::protocol::{bin, serve_connection, Request, Response};
use problems::{lookup_family, InstanceData};
use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross_repro::qross::surrogate::{Surrogate, SurrogateState};

/// Feature width shared by every registered family.
const FEAT_DIM: usize = 24;

/// The committed request mix this suite replays and CI diffs.
const FIXTURE_PATH: &str = "tests/fixtures/mixed_family_requests.ndjson";

/// Seed-derived bare surrogate over the family-owned 24-feature recipe.
/// A bare surrogate (no TSP bundle) is deliberate: the `instance` op
/// featurises through the registry, so it must serve *every* family
/// even where the bundle-only `tsp` text upload cannot.
fn test_model() -> ServeModel {
    let zscore = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    ServeModel::Surrogate(Arc::new(
        Surrogate::from_state(state).expect("consistent state"),
    ))
}

/// The engine configurations the CI smoke step contrasts: batched and
/// cached vs fully sequential with the cache off.
fn contrast_configs() -> [ServeConfig; 2] {
    [
        ServeConfig {
            workers: 4,
            max_batch_rows: 32,
            ..Default::default()
        },
        ServeConfig {
            workers: 1,
            max_batch_rows: 1,
            cache_capacity: 0,
            ..Default::default()
        },
    ]
}

/// Tiny deterministic generator (splitmix-style) so the fixture content
/// is reproducible from this file alone, with no RNG crate in the loop.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// 100-city coordinate TSP (micro corpus trains on 9–10 cities).
/// Quarter-unit coordinates keep the committed JSON compact and every
/// value exactly representable.
fn tsp_instance() -> InstanceData {
    let n = 100;
    let mut s = 0x51ED_1E57u64;
    let (mut xs, mut ys) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for _ in 0..n {
        xs.push((next(&mut s) % 4000) as f64 * 0.25);
        ys.push((next(&mut s) % 4000) as f64 * 0.25);
    }
    InstanceData {
        name: "mix-tsp100".to_string(),
        dims: vec![n as u64],
        vecs: vec![xs, ys],
        ..Default::default()
    }
}

/// 120-vertex weighted MVC at ~40% density (micro corpus: n = 12).
fn mvc_instance() -> InstanceData {
    let n: u32 = 120;
    let mut s = 0x3BAD_C0DEu64;
    let weights: Vec<f64> = (0..n)
        .map(|_| (next(&mut s) % 32 + 4) as f64 * 0.25)
        .collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if next(&mut s) % 5 < 2 {
                edges.push((u, v, 1.0));
            }
        }
    }
    InstanceData {
        name: "mix-mvc120".to_string(),
        dims: vec![n as u64],
        vecs: vec![weights],
        edges,
        ..Default::default()
    }
}

/// 16-facility QAP — 10× the micro corpus's 25-variable QUBO (n = 5).
/// Integer flows/distances, symmetric with zero diagonal, matching the
/// family generator's QAPLIB-style magnitudes.
fn qap_instance() -> InstanceData {
    let n = 16usize;
    let mut s = 0x9A9_F00Du64;
    let (mut flow, mut dist) = (vec![0.0; n * n], vec![0.0; n * n]);
    for i in 0..n {
        for j in (i + 1)..n {
            let f = (next(&mut s) % 10) as f64;
            let d = (next(&mut s) % 9 + 1) as f64;
            flow[i * n + j] = f;
            flow[j * n + i] = f;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    InstanceData {
        name: "mix-qap16".to_string(),
        dims: vec![n as u64],
        vecs: vec![flow, dist],
        ..Default::default()
    }
}

/// 120-vertex weighted Max-Cut at ~40% density (micro corpus: n = 12).
fn maxcut_instance() -> InstanceData {
    let n: u32 = 120;
    let mut s = 0x6CA7_CAFEu64;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if next(&mut s) % 5 < 2 {
                edges.push((u, v, (next(&mut s) % 12 + 2) as f64 * 0.25));
            }
        }
    }
    InstanceData {
        name: "mix-maxcut120".to_string(),
        dims: vec![n as u64],
        edges,
        ..Default::default()
    }
}

/// 120-item knapsack (micro corpus: n = 12). Integer weights and
/// capacity — the family's integrality requirement for exact slack bits.
fn knapsack_instance() -> InstanceData {
    let n = 120usize;
    let mut s = 0x4BA6_BEEFu64;
    let values: Vec<f64> = (0..n).map(|_| (next(&mut s) % 80) as f64 * 0.25).collect();
    let weights: Vec<f64> = (0..n).map(|_| (next(&mut s) % 9 + 1) as f64).collect();
    let capacity = (weights.iter().sum::<f64>() / 2.0).floor();
    InstanceData {
        name: "mix-knap120".to_string(),
        dims: vec![n as u64],
        scalars: vec![capacity],
        vecs: vec![values, weights],
        ..Default::default()
    }
}

/// A payload the Max-Cut codec must reject: endpoint out of range.
fn malformed_maxcut_instance() -> InstanceData {
    InstanceData {
        name: "mix-bad-edge".to_string(),
        dims: vec![4],
        edges: vec![(0, 200, 1.0)],
        ..Default::default()
    }
}

fn instance_request(
    id: u64,
    op: &str,
    family: &str,
    data: InstanceData,
    a: Option<f64>,
    a_values: Option<Vec<f64>>,
) -> Request {
    Request {
        id: Some(id),
        op: Some(op.to_string()),
        family: Some(family.to_string()),
        instance: Some(data),
        a,
        a_values,
        ..Default::default()
    }
}

/// The canonical mix: all five families (one through the `solve` alias),
/// an unknown family, a codec reject, and a trailing `info`.
fn mixed_requests() -> Vec<Request> {
    vec![
        instance_request(
            1,
            "instance",
            "tsp",
            tsp_instance(),
            None,
            Some(vec![0.5, 2.0]),
        ),
        instance_request(
            2,
            "instance",
            "mvc",
            mvc_instance(),
            None,
            Some(vec![1.0, 4.0]),
        ),
        instance_request(3, "instance", "qap", qap_instance(), Some(1.5), None),
        instance_request(
            4,
            "solve",
            "maxcut",
            maxcut_instance(),
            None,
            Some(vec![0.25, 1.0, 8.0]),
        ),
        instance_request(
            5,
            "instance",
            "knapsack",
            knapsack_instance(),
            None,
            Some(vec![0.5, 1.0]),
        ),
        instance_request(
            6,
            "instance",
            "sat",
            InstanceData {
                name: "mix-unknown".to_string(),
                dims: vec![2],
                edges: vec![(0, 1, 1.0)],
                ..Default::default()
            },
            None,
            Some(vec![1.0]),
        ),
        instance_request(
            7,
            "instance",
            "maxcut",
            malformed_maxcut_instance(),
            None,
            Some(vec![1.0]),
        ),
        Request {
            id: Some(8),
            op: Some("info".to_string()),
            ..Default::default()
        },
    ]
}

/// Renders the mix as the committed NDJSON fixture bytes.
fn ndjson_stream(requests: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for request in requests {
        let line = serde_json::to_string(request).expect("serializable request");
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Renders the same mix as QBIN frames. `instance` and its `solve`
/// alias both travel as the one `0x05` op — alias equality on the text
/// wire is part of what the cross-wire diff proves.
fn qbin_stream(requests: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for request in requests {
        match request.op.as_deref() {
            Some("instance") | Some("solve") => {
                let a_values = match (&request.a_values, request.a) {
                    (Some(grid), _) => grid.clone(),
                    (None, Some(a)) => vec![a],
                    (None, None) => Vec::new(),
                };
                bin::encode_instance(
                    &mut out,
                    request.id,
                    request.tenant.as_deref().unwrap_or(""),
                    request.family.as_deref().expect("fixture carries a family"),
                    request
                        .instance
                        .as_ref()
                        .expect("fixture carries instance data"),
                    &a_values,
                );
            }
            Some("info") => bin::encode_info(&mut out, request.id),
            other => panic!("not QBIN-expressible: {other:?}"),
        }
    }
    out
}

/// Everything both wires can express, bit-for-bit. The NDJSON-only
/// instance-name echo is asserted separately.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ResponseBits {
    id: Option<u64>,
    ok: bool,
    error: Option<String>,
    predictions: Option<Vec<(u64, u64, u64, u64)>>,
    info_generation: Option<u64>,
}

impl ResponseBits {
    fn of(response: &Response) -> ResponseBits {
        ResponseBits {
            id: response.id,
            ok: response.ok,
            error: response.error.clone(),
            predictions: response.predictions.as_ref().map(|rows| {
                rows.iter()
                    .map(|row| {
                        assert_eq!(row.pf.to_bits(), row.pf_bits, "decimal/bits mirror drift");
                        assert_eq!(row.e_avg.to_bits(), row.e_avg_bits);
                        assert_eq!(row.e_std.to_bits(), row.e_std_bits);
                        (row.a.to_bits(), row.pf_bits, row.e_avg_bits, row.e_std_bits)
                    })
                    .collect()
            }),
            info_generation: response.info.as_ref().map(|info| info.generation),
        }
    }
}

/// Replays NDJSON bytes through the blocking driver; returns full
/// responses so family-specific fields can be asserted too.
fn replay_ndjson(engine: &ServeEngine, requests: &[u8]) -> Vec<Response> {
    let mut out = Vec::new();
    serve_connection(engine, Cursor::new(requests.to_vec()), &mut out).expect("ndjson session");
    String::from_utf8(out)
        .expect("utf-8 responses")
        .lines()
        .map(|line| serde_json::from_str(line).expect("response line"))
        .collect()
}

/// Replays QBIN bytes through the same blocking driver.
fn replay_qbin(engine: &ServeEngine, requests: &[u8]) -> Vec<Response> {
    let mut out = Vec::new();
    serve_connection(engine, Cursor::new(requests.to_vec()), &mut out).expect("qbin session");
    bin::decode_response_stream(&out).expect("clean response frames")
}

/// Loads the committed fixture, regenerating it first when
/// `QROSS_WRITE_MIXED_FIXTURE` is set, and pins it to the canonical
/// in-memory mix so the committed bytes cannot rot silently.
fn fixture_bytes() -> Vec<u8> {
    let canonical = ndjson_stream(&mixed_requests());
    if std::env::var("QROSS_WRITE_MIXED_FIXTURE").is_ok() {
        std::fs::write(FIXTURE_PATH, &canonical).expect("write fixture");
    }
    let committed = std::fs::read(FIXTURE_PATH).unwrap_or_else(|e| {
        panic!("missing {FIXTURE_PATH} ({e}); regenerate with QROSS_WRITE_MIXED_FIXTURE=1")
    });
    assert_eq!(
        committed, canonical,
        "{FIXTURE_PATH} drifted from the canonical mix; \
         regenerate with QROSS_WRITE_MIXED_FIXTURE=1 if the change is intentional"
    );
    committed
}

/// Every instance payload in the fixture must decode through its
/// family's codec (except the two deliberate error lines), and the
/// sizes must hold the 10×-micro stress contract.
#[test]
fn fixture_payloads_decode_at_10x_micro_sizes() {
    for (family, data, min_n) in [
        ("tsp", tsp_instance(), 100),
        ("mvc", mvc_instance(), 120),
        ("qap", qap_instance(), 16),
        ("maxcut", maxcut_instance(), 120),
        ("knapsack", knapsack_instance(), 120),
    ] {
        assert!(
            data.dims[0] >= min_n,
            "{family} fixture shrank below 10× micro"
        );
        let codec = lookup_family(family).expect("registered");
        let problem = codec.decode(&data).expect("fixture payload must decode");
        let features = problem.features();
        assert_eq!(features.len(), FEAT_DIM, "{family} feature width");
        assert!(features.iter().all(|f| f.is_finite()), "{family} features");
    }
    assert!(lookup_family("sat").is_err());
    assert!(lookup_family("maxcut")
        .expect("registered")
        .decode(&malformed_maxcut_instance())
        .is_err());
}

/// The tentpole's serving contract: same mixed-family requests, same
/// engine configuration → QBIN and NDJSON responses carry identical f64
/// bit patterns, at 4 workers with the cache on AND at 1 worker with it
/// off — and the two configurations agree with each other.
#[test]
fn mixed_family_replay_is_bit_identical_across_wires_and_workers() {
    let ndjson = fixture_bytes();
    let requests: Vec<Request> = String::from_utf8(ndjson.clone())
        .expect("utf-8 fixture")
        .lines()
        .map(|line| serde_json::from_str(line).expect("fixture request line"))
        .collect();
    let qbin = qbin_stream(&requests);

    let mut per_config = Vec::new();
    for config in contrast_configs() {
        let engine = ServeEngine::new(test_model(), config);
        let from_ndjson = replay_ndjson(&engine, &ndjson);
        // Fresh engine for the binary replay so cache warm-up cannot
        // mask a divergence (both formats start cold).
        let engine = ServeEngine::new(test_model(), config);
        let from_qbin = replay_qbin(&engine, &qbin);
        assert_eq!(from_ndjson.len(), requests.len());
        let ndjson_bits: Vec<ResponseBits> = from_ndjson.iter().map(ResponseBits::of).collect();
        let qbin_bits: Vec<ResponseBits> = from_qbin.iter().map(ResponseBits::of).collect();
        assert_eq!(
            ndjson_bits, qbin_bits,
            "QBIN and NDJSON disagree under the same engine config"
        );
        per_config.push((from_ndjson, ndjson_bits));
    }
    assert_eq!(
        per_config[0].1, per_config[1].1,
        "worker count / cache setting changed response bits"
    );

    // Family-level shape of the NDJSON replay (either config; they are
    // bit-equal by now).
    let responses = &per_config[0].0;
    let served = [
        (0, "mix-tsp100", 2),
        (1, "mix-mvc120", 2),
        (2, "mix-qap16", 1),
        (3, "mix-maxcut120", 3),
        (4, "mix-knap120", 2),
    ];
    for (idx, name, grid_len) in served {
        let r = &responses[idx];
        assert!(r.ok, "line {idx} failed: {:?}", r.error);
        assert_eq!(r.instance.as_deref(), Some(name));
        assert_eq!(r.predictions.as_ref().expect("grid").len(), grid_len);
    }

    let unknown = &responses[5];
    assert!(!unknown.ok);
    let error = unknown.error.as_deref().expect("typed error");
    assert!(
        error.contains("unknown problem family `sat`"),
        "unexpected error: {error}"
    );
    for family in ["tsp", "mvc", "qap", "maxcut", "knapsack"] {
        assert!(
            error.contains(family),
            "error must name `{family}`: {error}"
        );
    }

    let rejected = &responses[6];
    assert!(!rejected.ok);
    assert!(
        rejected
            .error
            .as_deref()
            .expect("codec error")
            .contains("out of range"),
        "unexpected codec error: {:?}",
        rejected.error
    );

    let info = responses[7].info.as_ref().expect("info payload");
    assert_eq!(info.kind, "surrogate");
    assert_eq!(info.feature_dim, FEAT_DIM);
}
