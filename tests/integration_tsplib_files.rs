//! TSPLIB file-loading round trip: write format-faithful `.tsp` files to a
//! temporary directory, load them through the public API, and run them
//! through the full encode/solve path.

use std::io::Write;

use qross_repro::problems::tsplib::load_tsplib_file;
use qross_repro::problems::{RelaxableProblem, TspEncoding};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_repro::solvers::Solver;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("qross_tsplib_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create file");
    f.write_all(contents.as_bytes()).expect("write file");
    path
}

#[test]
fn euc2d_file_loads_and_solves() {
    let path = write_temp(
        "square4.tsp",
        "NAME: square4\nTYPE: TSP\nCOMMENT: unit square\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 0 10\n3 10 10\n4 10 0\nEOF\n",
    );
    let inst = load_tsplib_file(&path).expect("parse file");
    assert_eq!(inst.name(), "square4");
    assert_eq!(inst.num_cities(), 4);
    assert_eq!(inst.tour_length(&[0, 1, 2, 3]), 40.0);

    // End-to-end: encode and solve.
    let enc = TspEncoding::preprocessed(inst);
    let solver = SimulatedAnnealer::new(SaConfig {
        sweeps: 128,
        ..Default::default()
    });
    let set = solver.sample(&enc.to_qubo(3.0), 8, 1);
    let best = set
        .best_feasible(|x| enc.is_feasible(x))
        .expect("feasible tour");
    assert_eq!(enc.fitness(&best.assignment), Some(40.0));
}

#[test]
fn explicit_matrix_file_loads() {
    let path = write_temp(
        "m3.tsp",
        "NAME: m3\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n5 9\n7\nEOF\n",
    );
    let inst = load_tsplib_file(&path).expect("parse file");
    assert_eq!(inst.distance(0, 1), 5.0);
    assert_eq!(inst.distance(0, 2), 9.0);
    assert_eq!(inst.distance(1, 2), 7.0);
    // Only one tour up to symmetry on 3 cities.
    assert_eq!(inst.tour_length(&[0, 1, 2]), 21.0);
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = load_tsplib_file(std::path::Path::new("/nonexistent/nowhere.tsp")).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("nowhere.tsp"),
        "error should name the file: {msg}"
    );
}

#[test]
fn malformed_file_reports_line() {
    let path = write_temp(
        "broken.tsp",
        "NAME: broken\nTYPE: TSP\nDIMENSION: two\nEDGE_WEIGHT_TYPE: EUC_2D\nEOF\n",
    );
    let err = load_tsplib_file(&path).unwrap_err();
    assert!(
        err.to_string().contains("line 3"),
        "error should carry the line number: {err}"
    );
}
