//! Property-based tests for the continual-learning hot-swap path.
//!
//! The swap contract under test: for **any** interleaving of predict /
//! feedback / refresh operations,
//!
//! * every predict response is bit-identical to evaluating that request
//!   against *some* checkpointed model generation — specifically the
//!   generation serving when the request was submitted (responses are
//!   never a blend of generations, and a cache hit can never surface an
//!   older generation's value);
//! * immediately after a swap, the engine's predictions match a fresh
//!   `Artifact::load` of the checkpoint the swap wrote, exactly — the
//!   served model *is* the persisted model, no cache bleed across
//!   generations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::online::{FeedbackRecord, OnlineConfig, SurrogateCheckpoint};
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross_repro::qross::surrogate::{Surrogate, SurrogatePrediction, SurrogateState};
use qross_repro::qross::QrossError;
use qross_store::Artifact;

const FEAT_DIM: usize = 2;

/// Deterministic seed-derived surrogate (2 features + ln A).
fn tiny_surrogate(seed: u64) -> Surrogate {
    let z = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(8)
            .relu()
            .dense(1)
            .sigmoid()
            .build(seed)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(8)
            .tanh()
            .dense(2)
            .build(seed ^ 0x5EED)
            .to_state(),
        scalers: Scalers {
            features: vec![z(0.0, 1.0), z(0.5, 2.0)],
            log_a: z(0.0, 1.0),
            e_avg: z(4.0, 2.0),
            e_std: z(1.0, 0.5),
        },
    };
    Surrogate::from_state(state).expect("consistent state")
}

/// One step of an interleaving.
#[derive(Debug, Clone)]
enum Op {
    Predict { fi: usize, ai: usize },
    Feedback { k: usize },
    Refresh,
}

/// Strategy for one op: predicts and feedback dominate, refreshes are
/// rarer (they cost a fine-tune each).
fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..7, 0usize..24, 0usize..10, 0usize..5).prop_map(|(sel, k, fi, ai)| match sel {
        0..=2 => Op::Predict { fi, ai },
        3..=5 => Op::Feedback { k },
        _ => Op::Refresh,
    })
}

fn probe(fi: usize, ai: usize) -> (Vec<f64>, f64) {
    (
        vec![fi as f64 / 3.0 - 1.0, (fi as f64) / 7.0],
        0.25 + ai as f64 * 0.85,
    )
}

fn feedback(k: usize) -> FeedbackRecord {
    FeedbackRecord {
        features: vec![(k % 7) as f64 / 4.0, 1.0 - (k % 5) as f64 / 3.0],
        a: 0.4 + (k % 9) as f64 * 0.5,
        observed_pf: ((k * 3) % 11) as f64 / 10.0,
        observed_e_avg: 2.0 + (k % 6) as f64,
        observed_e_std: 0.25 + (k % 4) as f64 * 0.5,
        instance_tag: format!("p{k}"),
        seed: k as u64,
    }
}

fn assert_bits(got: SurrogatePrediction, want: SurrogatePrediction) {
    assert_eq!(got.pf.to_bits(), want.pf.to_bits());
    assert_eq!(got.e_avg.to_bits(), want.e_avg.to_bits());
    assert_eq!(got.e_std.to_bits(), want.e_std.to_bits());
}

/// Unique checkpoint directory per proptest case.
fn case_dir() -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qross_proptest_online_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any interleaving of predict/feedback/refresh, every response
    /// is exactly some checkpointed generation's answer, and post-swap
    /// responses equal a fresh load() of the swap's checkpoint.
    #[test]
    fn every_response_comes_from_a_checkpointed_generation(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        model_seed in 0u64..1000,
    ) {
        let dir = case_dir();
        let engine = ServeEngine::with_online(
            ServeModel::Surrogate(Arc::new(tiny_surrogate(model_seed))),
            ServeConfig { workers: 2, ..Default::default() },
            OnlineConfig {
                refresh_after: 3, // automatic triggers interleave too
                buffer_capacity: 12,
                recent_capacity: 6,
                feedback_weight: 2,
                epochs: 2,
                learning_rate: 1e-3,
                batch_size: 8,
                max_pending_retrains: 2,
                seed: model_seed ^ 0xF00D,
                checkpoint_dir: Some(dir.clone()),
            },
            None,
        ).expect("online engine");

        // models[g] is generation g's surrogate, reloaded from its
        // checkpoint for every g >= 1.
        let mut models: Vec<Surrogate> = vec![tiny_surrogate(model_seed)];
        let handle_swap = |models: &mut Vec<Surrogate>,
                               outcome: Result<u64, QrossError>| {
            match outcome {
                Ok(generation) => {
                    assert_eq!(generation as usize, models.len());
                    let path = dir.join(format!("ckpt-g{generation:06}.qross"));
                    let ckpt = SurrogateCheckpoint::load(&path).expect("checkpoint readable");
                    let lineage = ckpt.lineage.expect("swap checkpoints carry lineage");
                    assert_eq!(lineage.generation, generation);
                    assert_eq!(lineage.parent_generation, generation - 1);
                    models.push(Surrogate::from_state(ckpt.state).expect("state rebuilds"));
                }
                // An unfittable retrain (nothing in the buffer yet) keeps
                // the old generation serving — a typed error, not a swap.
                Err(QrossError::BadDataset { .. }) => {}
                Err(e) => panic!("unexpected retrain failure: {e}"),
            }
        };

        for op in &ops {
            match op {
                Op::Predict { fi, ai } => {
                    let generation = engine.generation() as usize;
                    let (f, a) = probe(*fi, *ai);
                    let served = engine.predict(&f, a).expect("predict never dropped");
                    // Bit-identical to the generation serving at submit —
                    // which is by construction a checkpointed one.
                    assert_bits(served, models[generation].predict(&f, a));
                }
                Op::Feedback { k } => {
                    let ack = engine.submit_feedback(feedback(*k)).expect("feedback accepted");
                    if let Some(pending) = ack.refresh {
                        handle_swap(&mut models, pending.wait());
                    }
                }
                Op::Refresh => {
                    let pending = engine.refresh().expect("refresh queued");
                    handle_swap(&mut models, pending.wait());
                }
            }
            // After every op the engine's live answers equal the current
            // generation's checkpoint — no cache bleed across swaps, even
            // for keys cached under earlier generations.
            let (f, a) = probe(1, 1);
            let generation = engine.generation() as usize;
            assert_bits(
                engine.predict(&f, a).expect("probe"),
                models[generation].predict(&f, a),
            );
        }
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
