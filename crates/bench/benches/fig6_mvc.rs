//! Criterion bench for the Fig.-6 data path: one MVC penalty point on
//! plain SA and on the analog-noise QA model.

use criterion::{criterion_group, criterion_main, Criterion};

use problems::{MvcInstance, RelaxableProblem};
use solvers::sa::{SaConfig, SimulatedAnnealer};
use solvers::{AnalogNoise, Solver};

fn bench_mvc_point(c: &mut Criterion) {
    let graph = MvcInstance::random_gnp("bench", 40, 0.5, 11);
    let qubo_low = graph.to_qubo(2.0);
    let qubo_high = graph.to_qubo(2000.0);
    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 128,
        ..Default::default()
    });
    let qa = AnalogNoise::new(
        SimulatedAnnealer::new(SaConfig {
            sweeps: 128,
            ..Default::default()
        }),
        0.03,
    );
    let mut group = c.benchmark_group("fig6_mvc_point_40v");
    group.bench_function("sa_low_penalty", |b| b.iter(|| sa.sample(&qubo_low, 8, 1)));
    group.bench_function("sa_high_penalty", |b| {
        b.iter(|| sa.sample(&qubo_high, 8, 1))
    });
    group.bench_function("qa_low_penalty", |b| b.iter(|| qa.sample(&qubo_low, 8, 1)));
    group.bench_function("qa_high_penalty", |b| {
        b.iter(|| qa.sample(&qubo_high, 8, 1))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_mvc_point
}
criterion_main!(benches);
