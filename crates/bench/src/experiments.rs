//! Experiment implementations shared by the binaries and the criterion
//! benches.

use serde::{Deserialize, Serialize};

use problems::tsp::generator::{generate_instance, GeneratorConfig};
use problems::tsp::heuristics;
use problems::{MvcInstance, TspEncoding, TspInstance};
use qross::collect::{collect_profile, observe, CollectConfig};
use qross::eval::{aggregate_gap_curves, gap_curve, run_strategy_grid, MethodCurve};
use qross::pipeline::{Pipeline, PipelineConfig, TrainedQross, A_DOMAIN};
use qross::strategy::{ComposedStrategy, ProposalStrategy, TunerStrategy};
use solvers::da::{DaConfig, DigitalAnnealer};
use solvers::qbsolv::{Qbsolv, QbsolvConfig};
use solvers::sa::{SaConfig, SimulatedAnnealer};
use solvers::tabu::TabuConfig;
use solvers::{AnalogNoise, Solver};
use tuners::{BayesOpt, RandomSearch, Tpe};

use crate::Scale;

/// Solver roster used by the experiments, mirroring the paper's DA and
/// Qbsolv (plus plain SA for Fig. 1).
pub struct Solvers {
    /// Digital Annealer simulator (the paper's primary solver)
    pub da: DigitalAnnealer,
    /// plain simulated annealing (Fig. 1 lower row)
    pub sa: SimulatedAnnealer,
    /// qbsolv decomposition hybrid (generalisation experiments)
    pub qbsolv: Qbsolv,
}

impl Solvers {
    /// Builds the roster at the given scale.
    pub fn at(scale: Scale) -> Solvers {
        match scale {
            Scale::Micro => Solvers {
                da: DigitalAnnealer::new(DaConfig {
                    steps: 600,
                    ..Default::default()
                }),
                sa: SimulatedAnnealer::new(SaConfig {
                    sweeps: 64,
                    ..Default::default()
                }),
                qbsolv: Qbsolv::new(QbsolvConfig {
                    subproblem_size: 24,
                    max_passes: 4,
                    tabu: TabuConfig {
                        max_iters: 120,
                        stall_limit: 40,
                        tenure: None,
                    },
                    ..Default::default()
                }),
            },
            Scale::Quick => Solvers {
                da: DigitalAnnealer::new(DaConfig {
                    steps: 1200,
                    ..Default::default()
                }),
                sa: SimulatedAnnealer::new(SaConfig {
                    sweeps: 128,
                    ..Default::default()
                }),
                qbsolv: Qbsolv::new(QbsolvConfig {
                    subproblem_size: 32,
                    max_passes: 6,
                    tabu: TabuConfig {
                        max_iters: 200,
                        stall_limit: 60,
                        tenure: None,
                    },
                    ..Default::default()
                }),
            },
            Scale::Paper => Solvers {
                da: DigitalAnnealer::default(),
                sa: SimulatedAnnealer::default(),
                qbsolv: Qbsolv::default(),
            },
        }
    }
}

/// Batch size (solutions per solver call) per scale — the paper uses 128.
pub fn batch_for(scale: Scale) -> usize {
    match scale {
        Scale::Micro => 12,
        Scale::Quick => 24,
        Scale::Paper => 128,
    }
}

/// Trials per instance (the paper's x-axis runs to 20).
pub const TRIALS: usize = 20;

/// Pipeline configuration per scale.
pub fn pipeline_config(scale: Scale, seed: u64) -> PipelineConfig {
    let mut cfg = match scale {
        Scale::Micro => PipelineConfig::micro(),
        Scale::Quick => PipelineConfig::quick(),
        Scale::Paper => PipelineConfig::paper(),
    };
    cfg.seed = seed;
    cfg
}

// ---------------------------------------------------------------------------
// Fig. 1 — Pf and minimum energy vs A
// ---------------------------------------------------------------------------

/// One solver's sweep series for Fig. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Series {
    /// solver name
    pub solver: String,
    /// swept relaxation parameters
    pub a: Vec<f64>,
    /// probability of feasibility per point
    pub pf: Vec<f64>,
    /// minimum batch energy per point
    pub min_energy: Vec<f64>,
    /// mean batch energy per point
    pub e_avg: Vec<f64>,
}

/// Fig. 1 result: DA (upper row) and SA (lower row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// instance identifier
    pub instance: String,
    /// per-solver sweep series
    pub series: Vec<Fig1Series>,
}

/// Regenerates Fig. 1: sweep `A`, record `Pf` and energy envelopes for the
/// Digital Annealer and Simulated Annealing on one instance.
pub fn fig1(scale: Scale, seed: u64) -> Fig1Result {
    let gen_cfg = match scale {
        Scale::Micro => GeneratorConfig {
            min_cities: 9,
            max_cities: 9,
            ..Default::default()
        },
        Scale::Quick => GeneratorConfig {
            min_cities: 10,
            max_cities: 10,
            ..Default::default()
        },
        Scale::Paper => GeneratorConfig::default(),
    };
    let instance = generate_instance(&gen_cfg, seed, 0);
    let encoding = TspEncoding::preprocessed(instance);
    let batch = match scale {
        Scale::Micro => 16,
        Scale::Quick => 32,
        Scale::Paper => 128,
    };
    let points = 25;
    let (lo, hi) = A_DOMAIN;
    let a_values: Vec<f64> = (0..points)
        .map(|k| (lo.ln() + (hi.ln() - lo.ln()) * k as f64 / (points - 1) as f64).exp())
        .collect();
    let solvers = Solvers::at(scale);
    let mut series = Vec::new();
    for (name, solver) in [
        ("da", &solvers.da as &dyn Solver),
        ("sa", &solvers.sa as &dyn Solver),
    ] {
        let mut s = Fig1Series {
            solver: name.to_string(),
            a: Vec::new(),
            pf: Vec::new(),
            min_energy: Vec::new(),
            e_avg: Vec::new(),
        };
        for (k, &a) in a_values.iter().enumerate() {
            let obs = observe(
                &encoding,
                solver,
                a,
                batch,
                mathkit::rng::derive_seed(seed, 500 + k as u64),
            );
            s.a.push(a);
            s.pf.push(obs.pf);
            s.min_energy.push(obs.min_energy);
            s.e_avg.push(obs.e_avg);
        }
        series.push(s);
    }
    Fig1Result {
        instance: encoding.fitness_instance().name().to_string(),
        series,
    }
}

// ---------------------------------------------------------------------------
// Figs. 3/4/5 + Table 1 — strategy comparison
// ---------------------------------------------------------------------------

/// A full strategy-comparison result (one figure panel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// dataset label (`synthetic` / `realworld`)
    pub dataset: String,
    /// evaluation solver name
    pub solver: String,
    /// number of evaluation instances
    pub instances: usize,
    /// per-method aggregate gap curves
    pub curves: Vec<MethodCurve>,
}

impl ComparisonResult {
    /// The curve of a given method.
    pub fn method(&self, name: &str) -> Option<&MethodCurve> {
        self.curves.iter().find(|c| c.method == name)
    }
}

/// The four benchmark methods of §5.1.
pub const METHODS: [&str; 4] = ["qross", "tpe", "bo", "random"];

/// Runs the four-method comparison of Figs. 3–4 on the given encodings.
///
/// `trained` supplies the surrogate for the QROSS composed strategy; the
/// baselines get the same trial budget, solver and per-instance seed.
///
/// The `(method × instance)` grid fans out across one worker per core via
/// [`run_strategy_grid`]; per-instance seeds are derived from the instance
/// index alone, so the result is bit-identical to a sequential run.
#[allow(clippy::too_many_arguments)] // experiment descriptor, not an API
pub fn compare_methods<S: Solver + ?Sized>(
    trained: &TrainedQross,
    encodings: &[TspEncoding],
    solver: &S,
    solver_label: &str,
    dataset_label: &str,
    batch: usize,
    trials: usize,
    seed: u64,
) -> ComparisonResult {
    // Per-instance reference (near-optimal) / fallback (weak feasible)
    // fitness and features, computed once up front — they are shared by
    // all four methods and are cheap next to the solver calls.
    let references: Vec<f64> = encodings
        .iter()
        .map(|enc| heuristics::reference_tour(enc.fitness_instance(), 8).1)
        .collect();
    let fallbacks: Vec<f64> = encodings
        .iter()
        .zip(&references)
        .map(|(enc, &reference)| {
            let inst = enc.fitness_instance();
            let nn = inst.tour_length(&heuristics::nearest_neighbor(inst, 0));
            nn.max(reference) * 1.5
        })
        .collect();
    let features: Vec<Vec<f64>> = encodings
        .iter()
        .map(|enc| trained.featurizer.extract(enc.qubo_instance()))
        .collect();

    let make_strategy = |m: usize, idx: usize, iseed: u64| -> Box<dyn ProposalStrategy + '_> {
        let fallback = fallbacks[idx];
        match METHODS[m] {
            "qross" => Box::new(ComposedStrategy::new(
                &trained.surrogate,
                features[idx].clone(),
                A_DOMAIN,
                batch,
                iseed,
            )),
            "tpe" => Box::new(TunerStrategy::new(
                Tpe::new(A_DOMAIN.0, A_DOMAIN.1, iseed),
                fallback,
            )),
            "bo" => Box::new(TunerStrategy::new(
                BayesOpt::new(A_DOMAIN.0, A_DOMAIN.1, iseed),
                fallback,
            )),
            "random" => Box::new(TunerStrategy::new(
                RandomSearch::new(A_DOMAIN.0, A_DOMAIN.1, iseed),
                fallback,
            )),
            other => unreachable!("unknown method {other}"),
        }
    };
    let grid = run_strategy_grid(
        encodings,
        solver,
        METHODS.len(),
        make_strategy,
        trials,
        batch,
        seed,
        0,
    );
    let curves = METHODS
        .iter()
        .zip(&grid)
        .map(|(name, runs)| {
            let curves: Vec<Vec<f64>> = runs
                .iter()
                .enumerate()
                .map(|(idx, run)| gap_curve(run, references[idx], fallbacks[idx]))
                .collect();
            MethodCurve::from_cis(name, &aggregate_gap_curves(&curves))
        })
        .collect();
    ComparisonResult {
        dataset: dataset_label.to_string(),
        solver: solver_label.to_string(),
        instances: encodings.len(),
        curves,
    }
}

/// Trains the QROSS pipeline on the experiment solver at the given scale.
///
/// # Errors
///
/// Propagates [`qross::QrossError`] from collection or training (this
/// used to abort through the now-deleted panicking `Pipeline::run`).
pub fn train_qross<S: Solver + ?Sized>(
    scale: Scale,
    seed: u64,
    solver: &S,
) -> Result<TrainedQross, qross::QrossError> {
    Pipeline::new(pipeline_config(scale, seed)).try_run(solver)
}

/// The out-of-distribution evaluation set (Fig. 4): preprocessed encodings
/// of the stand-in "real-world" instances, size-capped at quick scale.
pub fn realworld_encodings(scale: Scale) -> Vec<TspEncoding> {
    let instances = match scale {
        Scale::Micro => problems::realworld::benchmark_subset(12),
        Scale::Quick => problems::realworld::benchmark_subset(35),
        Scale::Paper => problems::realworld::benchmark_set(),
    };
    instances
        .into_iter()
        .map(TspEncoding::preprocessed)
        .collect()
}

/// Fig. 3: synthetic test-set comparison on the Digital Annealer.
///
/// # Errors
///
/// Propagates [`qross::QrossError`] from pipeline training.
pub fn fig3(scale: Scale, seed: u64) -> Result<ComparisonResult, qross::QrossError> {
    let solvers = Solvers::at(scale);
    let trained = train_qross(scale, seed, &solvers.da)?;
    Ok(compare_methods(
        &trained,
        &trained.test_encodings,
        &solvers.da,
        "da",
        "synthetic",
        batch_for(scale),
        TRIALS,
        seed,
    ))
}

/// Fig. 4: out-of-distribution comparison on the Digital Annealer.
///
/// # Errors
///
/// Propagates [`qross::QrossError`] from pipeline training.
pub fn fig4(scale: Scale, seed: u64) -> Result<ComparisonResult, qross::QrossError> {
    let solvers = Solvers::at(scale);
    let trained = train_qross(scale, seed, &solvers.da)?;
    let encodings = realworld_encodings(scale);
    Ok(compare_methods(
        &trained,
        &encodings,
        &solvers.da,
        "da",
        "realworld",
        batch_for(scale),
        TRIALS,
        seed,
    ))
}

/// Fig. 5 result: the ablation curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// QROSS trained on DA, evaluated with DA (blue solid in the paper)
    pub qross_on_da: MethodCurve,
    /// QROSS trained on DA, evaluated with Qbsolv (blue dashed)
    pub qross_on_qbsolv: MethodCurve,
    /// TPE evaluated with DA
    pub tpe_on_da: MethodCurve,
    /// TPE evaluated with Qbsolv
    pub tpe_on_qbsolv: MethodCurve,
    /// QROSS (DA-trained) evaluated with a deliberately mismatched solver
    /// — an under-converged final-state annealer whose `Pf(A)` sigmoid
    /// sits elsewhere. Our DA and Qbsolv *simulators* share single-flip
    /// dynamics and coincide on small instances (see EXPERIMENTS.md), so
    /// this extra pair exhibits the mechanism the paper's ablation tests:
    /// solver-specific knowledge does not transfer across solvers with
    /// different feasibility characteristics.
    pub qross_on_mismatched: MethodCurve,
    /// TPE evaluated with the mismatched solver
    pub tpe_on_mismatched: MethodCurve,
}

/// The deliberately mismatched evaluation solver for the Fig. 5 extension:
/// an under-converged annealer returning final states.
pub fn mismatched_solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 24,
        track_best: false,
        ..Default::default()
    })
}

/// Fig. 5 (appendix A ablation): train QROSS on DA data, evaluate on
/// Qbsolv — the mismatch should erase QROSS's advantage over TPE.
///
/// # Errors
///
/// Propagates [`qross::QrossError`] from pipeline training.
pub fn fig5(scale: Scale, seed: u64) -> Result<Fig5Result, qross::QrossError> {
    let solvers = Solvers::at(scale);
    let trained = train_qross(scale, seed, &solvers.da)?;
    let batch = batch_for(scale);
    let on_da = compare_methods(
        &trained,
        &trained.test_encodings,
        &solvers.da,
        "da",
        "synthetic",
        batch,
        TRIALS,
        seed,
    );
    let on_qb = compare_methods(
        &trained,
        &trained.test_encodings,
        &solvers.qbsolv,
        "qbsolv",
        "synthetic",
        batch,
        TRIALS,
        seed,
    );
    let weak = mismatched_solver();
    let on_weak = compare_methods(
        &trained,
        &trained.test_encodings,
        &weak,
        "weak-sa",
        "synthetic",
        batch,
        TRIALS,
        seed,
    );
    Ok(Fig5Result {
        qross_on_da: on_da.method("qross").expect("qross curve").clone(),
        qross_on_qbsolv: on_qb.method("qross").expect("qross curve").clone(),
        tpe_on_da: on_da.method("tpe").expect("tpe curve").clone(),
        tpe_on_qbsolv: on_qb.method("tpe").expect("tpe curve").clone(),
        qross_on_mismatched: on_weak.method("qross").expect("qross curve").clone(),
        tpe_on_mismatched: on_weak.method("tpe").expect("tpe curve").clone(),
    })
}

/// Table 1: gap at trials #3 and #20 for every (solver, dataset, method).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// evaluation solver
    pub solver: String,
    /// method name
    pub method: String,
    /// synthetic-dataset gap at trial #3
    pub synthetic_3: f64,
    /// synthetic-dataset gap at trial #20
    pub synthetic_20: f64,
    /// realworld-dataset gap at trial #3
    pub realworld_3: f64,
    /// realworld-dataset gap at trial #20
    pub realworld_20: f64,
}

/// Full Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// one row per (solver, method)
    pub rows: Vec<Table1Row>,
}

/// Regenerates Table 1. The surrogate is retrained per solver (the paper
/// constructs a separate training dataset from each solver's solutions,
/// §5.3).
///
/// # Errors
///
/// Propagates [`qross::QrossError`] from pipeline training.
pub fn table1(scale: Scale, seed: u64) -> Result<Table1Result, qross::QrossError> {
    let solvers = Solvers::at(scale);
    let batch = batch_for(scale);
    let rw = realworld_encodings(scale);
    let mut rows = Vec::new();
    for (solver_label, solver) in [
        ("da", &solvers.da as &dyn Solver),
        ("qbsolv", &solvers.qbsolv as &dyn Solver),
    ] {
        let trained = train_qross(scale, seed, solver)?;
        let synth = compare_methods(
            &trained,
            &trained.test_encodings,
            solver,
            solver_label,
            "synthetic",
            batch,
            TRIALS,
            seed,
        );
        let real = compare_methods(
            &trained,
            &rw,
            solver,
            solver_label,
            "realworld",
            batch,
            TRIALS,
            seed,
        );
        for method in METHODS {
            let s = synth.method(method).expect("method curve");
            let r = real.method(method).expect("method curve");
            rows.push(Table1Row {
                solver: solver_label.to_string(),
                method: method.to_string(),
                synthetic_3: s.gap_at_trial(3),
                synthetic_20: s.gap_at_trial(20),
                realworld_3: r.gap_at_trial(3),
                realworld_20: r.gap_at_trial(20),
            });
        }
    }
    Ok(Table1Result { rows })
}

// ---------------------------------------------------------------------------
// Fig. 6 — MVC penalty-weight degradation (appendix B)
// ---------------------------------------------------------------------------

/// One solver's Fig. 6 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Series {
    /// solver label (`sa` / `qa`)
    pub solver: String,
    /// swept penalty weights
    pub penalty: Vec<f64>,
    /// best energy normalised to the run's overall best, per weight
    /// (averaged over seeds)
    pub energy_normalized: Vec<f64>,
}

/// Fig. 6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// number of graph vertices
    pub vertices: usize,
    /// per-solver series
    pub series: Vec<Fig6Series>,
}

/// Regenerates Fig. 6: weighted-MVC penalty sweep (`σ ∈ 10^0 … 10^4`) on
/// `G(65, 0.5)` with `U[0,1)` weights, 4 seeds, comparing plain SA against
/// the analog-control-error quantum-annealer model.
pub fn fig6(scale: Scale, seed: u64) -> Fig6Result {
    let n = 65; // chimera-embeddable size used by the paper
    let (num_seeds, sweep_points, batch) = match scale {
        Scale::Micro => (2, 5, 8),
        Scale::Quick => (4, 9, 16),
        Scale::Paper => (4, 17, 64),
    };
    // Hardware annealers return the *final* state of each read — they
    // cannot track the best state visited — so the appendix-B experiment
    // runs both solvers in final-state mode.
    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 256,
        track_best: false,
        ..Default::default()
    });
    // DW_2000Q stand-in: same dynamics, analog control error on the
    // Hamiltonian coefficients (appendix B cites ~1–5% control error).
    let qa = AnalogNoise::new(
        SimulatedAnnealer::new(SaConfig {
            sweeps: 256,
            track_best: false,
            ..Default::default()
        }),
        0.01,
    );
    let penalties: Vec<f64> = (0..sweep_points)
        .map(|k| 10f64.powf(4.0 * k as f64 / (sweep_points - 1) as f64))
        .collect();

    let mut series: Vec<Fig6Series> = [("sa", &sa as &dyn Solver), ("qa", &qa as &dyn Solver)]
        .into_iter()
        .map(|(label, _)| Fig6Series {
            solver: label.to_string(),
            penalty: penalties.clone(),
            energy_normalized: vec![0.0; penalties.len()],
        })
        .collect();

    for s in 0..num_seeds {
        let graph = MvcInstance::random_gnp(
            &format!("mvc65_{s}"),
            n,
            0.5,
            mathkit::rng::derive_seed(seed, s as u64),
        );
        for (si, (label, solver)) in [("sa", &sa as &dyn Solver), ("qa", &qa as &dyn Solver)]
            .into_iter()
            .enumerate()
        {
            let _ = label;
            // Best feasible cover weight per penalty point.
            let mut best_per_point = vec![f64::INFINITY; penalties.len()];
            for (k, &sigma) in penalties.iter().enumerate() {
                let obs = observe(
                    &graph,
                    solver,
                    sigma,
                    batch,
                    mathkit::rng::derive_seed(seed, 1_000 + (s * 100 + k) as u64),
                );
                if let Some(f) = obs.best_fitness {
                    best_per_point[k] = f;
                }
            }
            // Normalise to the best energy discovered in this run
            // (the paper's y-axis: "energy normalised to the minimum
            // energy state discovered in a run").
            let run_best = best_per_point.iter().cloned().fold(f64::INFINITY, f64::min);
            let fallback = graph.cover_weight(&graph.greedy_cover());
            for (k, &b) in best_per_point.iter().enumerate() {
                let value = if b.is_finite() { b } else { fallback };
                series[si].energy_normalized[k] += value / run_best / num_seeds as f64;
            }
        }
    }
    Fig6Result {
        vertices: n,
        series,
    }
}

// ---------------------------------------------------------------------------
// Convenience used by criterion benches
// ---------------------------------------------------------------------------

/// A tiny encoded TSP instance for micro-benchmarks.
pub fn micro_encoding(cities: usize, seed: u64) -> TspEncoding {
    let cfg = GeneratorConfig {
        min_cities: cities,
        max_cities: cities,
        ..Default::default()
    };
    TspEncoding::preprocessed(generate_instance(&cfg, seed, 0))
}

/// A micro collection profile (used by the fig1 criterion bench).
pub fn micro_profile(encoding: &TspEncoding, seed: u64) -> usize {
    let solver = SimulatedAnnealer::new(SaConfig {
        sweeps: 32,
        ..Default::default()
    });
    let cfg = CollectConfig {
        batch: 8,
        sweep_points: 6,
        ..Default::default()
    };
    collect_profile(encoding, &solver, &cfg, seed).len()
}

/// Silences the unused-import lint for TspInstance in rustdoc examples.
pub fn instance_name(inst: &TspInstance) -> &str {
    inst.name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_quick_shape() {
        let result = fig1(Scale::Quick, 3);
        assert_eq!(result.series.len(), 2);
        for s in &result.series {
            assert_eq!(s.a.len(), 25);
            // Pf trend: right end more feasible than left end.
            let left = s.pf[..5].iter().sum::<f64>() / 5.0;
            let right = s.pf[20..].iter().sum::<f64>() / 5.0;
            assert!(
                right > left,
                "{}: Pf trend inverted ({left} vs {right})",
                s.solver
            );
            assert!(s.pf.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn micro_helpers() {
        let enc = micro_encoding(5, 1);
        assert_eq!(enc.num_cities(), 5);
        assert!(micro_profile(&enc, 2) >= 6);
    }
}
