//! End-to-end training pipeline (paper Fig. 2, upper half).
//!
//! Generates the synthetic dataset (appendix D), collects solver profiles
//! over the A-schedule (§3.3), featurises instances, and trains the
//! surrogate (§3.2). Every stage is seeded from one root seed.
//!
//! # Train once, serve many
//!
//! The pipeline is split into three explicit stages that communicate
//! through persistable artifacts (`qross-store`):
//!
//! 1. **collect** — [`Pipeline::collect_corpus`] runs generation +
//!    solver-data collection and returns a [`CollectedCorpus`] (the
//!    dataset plus everything needed to retrain: config, featurizer
//!    recipe, instances). Collection dominates the pipeline's cost, so
//!    persisting the corpus lets training hyper-parameters be iterated
//!    without re-running a single solver batch.
//! 2. **train** — [`TrainedQross::train_on_corpus`] fits the surrogate on
//!    a corpus (freshly collected or reloaded from disk).
//! 3. **serve** — [`TrainedQross::save`] writes a [`QrossBundle`]
//!    (`.qross` container) that [`TrainedQross::load`] restores in any
//!    later process; the reloaded surrogate's predictions and the
//!    strategies built from it ([`TrainedQross::strategy_for`]) are
//!    *bit-identical* to the training process's.
//!
//! [`Pipeline::try_run`] still executes collect + train in one call for
//! callers that do not need the split.
//!
//! Two built-in scales:
//!
//! * [`PipelineConfig::quick`] — laptop scale: smaller instances, fewer
//!   of them, smaller batches. Preserves every qualitative property the
//!   experiments check (sigmoid Pf, energy dip on the slope, QROSS-beats-
//!   baselines ordering) at a fraction of the compute.
//! * [`PipelineConfig::paper`] — the paper's settings: 300 instances of
//!   20–30 cities (270/30 split), B = 128.
//!
//! # Parallel collection
//!
//! Solver-data collection dominates the pipeline's cost: every training
//! instance needs a full A-profile, i.e. dozens of solver batches. The
//! instances are independent, so [`collect_dataset`] fans
//! [`collect_profile`] out across a chunked worker pool
//! ([`solvers::parallel::parallel_map_with_workers`]) and assembles the
//! profiles into the [`SurrogateDataset`] *in instance order* afterwards.
//!
//! **Seed-derivation contract**: instance `idx` is always collected with
//! `derive_seed(seed, 100 + idx)` — never with anything derived from the
//! worker or chunk that happened to run it.
//!
//! **Thread-count invariance**: together with the order-preserving
//! assembly, that contract makes the dataset (and hence the trained
//! surrogate) **bit-identical for any worker count**, including fully
//! sequential. [`PipelineConfig::workers`] is therefore purely a
//! throughput knob: `0` (the default) uses one worker per core, `1` runs
//! the whole collection — including the solvers' own replica fan-out — on
//! the calling thread, and any other value pins the exact pool size.

use problems::tsp::generator::{GeneratorConfig, SyntheticDataset};
use problems::{TspEncoding, TspInstance};
use qross_store::Artifact;
use serde::{Deserialize, Serialize};
use solvers::parallel::parallel_map_with_workers;
use solvers::Solver;

use crate::collect::{collect_profile, CollectConfig};
use crate::dataset::SurrogateDataset;
use crate::features::{FeatureExtractor, FeaturizerSpec, StatisticalFeaturizer};
use crate::strategy::ComposedStrategy;
use crate::surrogate::{Surrogate, SurrogateConfig, SurrogateState, TrainReport};
use crate::QrossError;

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// synthetic-instance generator settings
    pub generator: GeneratorConfig,
    /// number of training instances
    pub train_instances: usize,
    /// number of held-out test instances
    pub test_instances: usize,
    /// solver-data collection settings
    pub collect: CollectConfig,
    /// surrogate architecture/training settings
    pub surrogate: SurrogateConfig,
    /// root seed
    pub seed: u64,
    /// collection worker-pool size: `0` = one worker per core, `1` =
    /// fully sequential (nested solver fan-out included), `n` = exactly
    /// `n` workers. Output is bit-identical for every value (see the
    /// module docs).
    pub workers: usize,
}

impl PipelineConfig {
    /// Laptop-scale configuration (seconds to a couple of minutes).
    pub fn quick() -> Self {
        PipelineConfig {
            generator: GeneratorConfig {
                min_cities: 8,
                max_cities: 12,
                ..Default::default()
            },
            train_instances: 36,
            test_instances: 10,
            collect: CollectConfig {
                batch: 24,
                sweep_points: 10,
                ..Default::default()
            },
            surrogate: SurrogateConfig {
                hidden: 48,
                epochs: 250,
                ..Default::default()
            },
            seed: 2021,
            workers: 0,
        }
    }

    /// The paper's experiment scale (§5): 300 instances of 20–30 cities,
    /// 270 train / 30 test, B = 128 solutions per call.
    pub fn paper() -> Self {
        PipelineConfig {
            generator: GeneratorConfig::default(), // 20–30 cities
            train_instances: 270,
            test_instances: 30,
            collect: CollectConfig {
                batch: 128,
                sweep_points: 14,
                ..Default::default()
            },
            surrogate: SurrogateConfig {
                hidden: 64,
                epochs: 400,
                ..Default::default()
            },
            seed: 2021,
            workers: 0,
        }
    }

    /// Even smaller than [`PipelineConfig::quick`] — used by unit and
    /// integration tests (well under a minute). Instances stay at 9–10
    /// cities: below ~8 cities the solvers find optimal tours at *any*
    /// feasible `A` and the parameter-tuning problem degenerates.
    pub fn micro() -> Self {
        PipelineConfig {
            generator: GeneratorConfig {
                min_cities: 9,
                max_cities: 10,
                ..Default::default()
            },
            train_instances: 20,
            test_instances: 4,
            collect: CollectConfig {
                batch: 24,
                sweep_points: 10,
                ..Default::default()
            },
            surrogate: SurrogateConfig {
                hidden: 32,
                epochs: 250,
                ..Default::default()
            },
            seed: 7,
            workers: 0,
        }
    }
}

/// Output of a pipeline run: a trained surrogate plus everything needed to
/// evaluate it.
pub struct TrainedQross {
    /// the trained solver surrogate
    pub surrogate: Surrogate,
    /// the featurizer used (must be reused at inference)
    pub featurizer: Box<dyn FeatureExtractor>,
    /// preprocessed encodings of the training instances
    pub train_encodings: Vec<TspEncoding>,
    /// preprocessed encodings of the held-out test instances
    pub test_encodings: Vec<TspEncoding>,
    /// number of dataset rows the surrogate was trained on
    pub dataset_len: usize,
    /// training diagnostics
    pub report: TrainReport,
    /// the configuration used
    pub config: PipelineConfig,
}

impl std::fmt::Debug for TrainedQross {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TrainedQross({} rows, {} train / {} test instances)",
            self.dataset_len,
            self.train_encodings.len(),
            self.test_encodings.len()
        )
    }
}

impl TrainedQross {
    /// The **train** stage: fits a surrogate on a collected corpus.
    ///
    /// Bit-identical to [`Pipeline::try_run`] under the corpus's
    /// configuration — the corpus already contains the collected dataset,
    /// so no solver is needed here (that is the point of the split).
    ///
    /// # Errors
    ///
    /// Propagates [`QrossError`] from surrogate training.
    pub fn train_on_corpus(corpus: &CollectedCorpus) -> Result<TrainedQross, QrossError> {
        let (surrogate, report) = Surrogate::train(&corpus.dataset, &corpus.config.surrogate)?;
        Ok(TrainedQross {
            surrogate,
            featurizer: corpus.featurizer.build(),
            train_encodings: corpus.train_encodings(),
            test_encodings: corpus.test_encodings(),
            dataset_len: corpus.dataset.len(),
            report,
            config: corpus.config,
        })
    }

    /// Snapshots the model as a serialisable [`QrossBundle`].
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::Persistence`] when the featurizer has no
    /// serialisable recipe ([`FeatureExtractor::spec`] returned `None`).
    pub fn to_bundle(&self) -> Result<QrossBundle, QrossError> {
        let featurizer = self
            .featurizer
            .spec()
            .ok_or_else(|| QrossError::Persistence {
                message: format!(
                    "featurizer `{}` has no serialisable spec",
                    self.featurizer.name()
                ),
            })?;
        Ok(QrossBundle {
            config: self.config,
            featurizer,
            surrogate: self.surrogate.to_state(),
            train_instances: self
                .train_encodings
                .iter()
                .map(|e| e.fitness_instance().clone())
                .collect(),
            test_instances: self
                .test_encodings
                .iter()
                .map(|e| e.fitness_instance().clone())
                .collect(),
            dataset_len: self.dataset_len,
            report: self.report.clone(),
        })
    }

    /// Writes the model as a binary `.qross` bundle at `path`.
    ///
    /// # Errors
    ///
    /// [`QrossError::Persistence`] for an unserialisable featurizer or a
    /// filesystem failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), QrossError> {
        self.to_bundle()?.save(path).map_err(QrossError::from)
    }

    /// Restores a model saved by [`TrainedQross::save`] — the **serve**
    /// stage's entry point. Accepts both the binary container and the
    /// JSON fallback (sniffed by magic bytes).
    ///
    /// # Errors
    ///
    /// [`QrossError::Persistence`] for unreadable, corrupt or
    /// incompatible bundles.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<TrainedQross, QrossError> {
        QrossBundle::load_auto(path)?.into_trained()
    }

    /// Extracts the feature vector the surrogate expects for `encoding`.
    pub fn features_for(&self, encoding: &TspEncoding) -> Vec<f64> {
        self.featurizer.extract(encoding.qubo_instance())
    }

    /// Builds the composed QROSS proposal strategy (MFS → PBS → OFS) for
    /// one instance — the serve-stage counterpart of the benchmark
    /// harness's strategy construction. `batch` is the solver batch size
    /// entering the MFS integral; `seed` drives the OFS refinement.
    pub fn strategy_for(
        &self,
        encoding: &TspEncoding,
        batch: usize,
        seed: u64,
    ) -> ComposedStrategy<'_> {
        ComposedStrategy::new(
            &self.surrogate,
            self.features_for(encoding),
            A_DOMAIN,
            batch,
            seed,
        )
    }
}

/// The training pipeline.
pub struct Pipeline {
    config: PipelineConfig,
    featurizer: Box<dyn FeatureExtractor>,
}

impl Pipeline {
    /// Creates a pipeline with the default (statistical) featurizer.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline {
            config,
            featurizer: Box::new(StatisticalFeaturizer::new()),
        }
    }

    /// Replaces the featurizer (e.g. with
    /// [`crate::features::RandomGcnFeaturizer`] for the ablation).
    pub fn with_featurizer(mut self, featurizer: Box<dyn FeatureExtractor>) -> Self {
        self.featurizer = featurizer;
        self
    }

    /// Runs generation → collection → training against `solver`.
    ///
    /// (This used to have a panicking `run` twin that converted every
    /// recoverable [`QrossError`] into an abort; it is gone — callers
    /// decide how to surface the error.)
    ///
    /// # Errors
    ///
    /// Propagates [`QrossError`] from dataset assembly or training.
    pub fn try_run<S: Solver + ?Sized>(self, solver: &S) -> Result<TrainedQross, QrossError> {
        let (train_encodings, test_encodings, dataset) = self.collect_encoded(solver);
        let cfg = &self.config;
        let (surrogate, report) = Surrogate::train(&dataset, &cfg.surrogate)?;
        Ok(TrainedQross {
            surrogate,
            featurizer: self.featurizer,
            train_encodings,
            test_encodings,
            dataset_len: dataset.len(),
            report,
            config: self.config,
        })
    }

    /// The **collect** stage: generation + solver-data collection,
    /// packaged as a persistable [`CollectedCorpus`].
    ///
    /// The corpus carries the original (un-preprocessed) instances, the
    /// featurizer recipe and the collected dataset — everything the
    /// **train** stage needs, in any process, at any later time. Running
    /// [`TrainedQross::train_on_corpus`] on the result is bit-identical
    /// to [`Pipeline::try_run`] with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::Persistence`] when the pipeline's featurizer
    /// has no serialisable recipe ([`FeatureExtractor::spec`] returned
    /// `None`) — such pipelines can still train in-process via
    /// [`Pipeline::try_run`], they just cannot produce portable corpora.
    pub fn collect_corpus<S: Solver + ?Sized>(
        &self,
        solver: &S,
    ) -> Result<CollectedCorpus, QrossError> {
        let featurizer = self
            .featurizer
            .spec()
            .ok_or_else(|| QrossError::Persistence {
                message: format!(
                    "featurizer `{}` has no serialisable spec",
                    self.featurizer.name()
                ),
            })?;
        let (train_encodings, test_encodings, dataset) = self.collect_encoded(solver);
        Ok(CollectedCorpus {
            config: self.config,
            featurizer,
            train_instances: train_encodings
                .iter()
                .map(|e| e.fitness_instance().clone())
                .collect(),
            test_instances: test_encodings
                .iter()
                .map(|e| e.fitness_instance().clone())
                .collect(),
            dataset,
        })
    }

    /// Shared generation + collection body of [`Pipeline::try_run`] and
    /// [`Pipeline::collect_corpus`].
    fn collect_encoded<S: Solver + ?Sized>(
        &self,
        solver: &S,
    ) -> (Vec<TspEncoding>, Vec<TspEncoding>, SurrogateDataset) {
        let cfg = &self.config;
        let data = SyntheticDataset::generate(
            &cfg.generator,
            cfg.train_instances,
            cfg.test_instances,
            cfg.seed,
        );
        let encode = |inst: &TspInstance| TspEncoding::preprocessed(inst.clone());
        let train_encodings: Vec<TspEncoding> = data.train().iter().map(encode).collect();
        let test_encodings: Vec<TspEncoding> = data.test().iter().map(encode).collect();
        let featurizer = &self.featurizer;
        let dataset = collect_dataset(
            &train_encodings,
            |enc| featurizer.extract(enc.qubo_instance()),
            featurizer.dim(),
            &cfg.collect,
            solver,
            cfg.seed,
            cfg.workers,
        );
        (train_encodings, test_encodings, dataset)
    }
}

/// Output of the **collect** stage: the training dataset plus everything
/// the **train** stage needs to run in another process.
///
/// Persistable through `qross_store::Artifact` (kind tag `CORP`) in both
/// the binary `.qross` format and JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedCorpus {
    /// the full pipeline configuration the corpus was collected under
    pub config: PipelineConfig,
    /// recipe rebuilding the featurizer that produced the feature columns
    pub featurizer: FeaturizerSpec,
    /// original (un-preprocessed) training instances
    pub train_instances: Vec<TspInstance>,
    /// original held-out test instances
    pub test_instances: Vec<TspInstance>,
    /// the collected `(features, A) → (Pf, Eavg, Estd)` dataset
    pub dataset: SurrogateDataset,
}

impl CollectedCorpus {
    /// Preprocessed encodings of the training instances (deterministic,
    /// so rebuilding them here is bit-identical to the collect process).
    pub fn train_encodings(&self) -> Vec<TspEncoding> {
        self.train_instances
            .iter()
            .map(|i| TspEncoding::preprocessed(i.clone()))
            .collect()
    }

    /// Preprocessed encodings of the held-out test instances.
    pub fn test_encodings(&self) -> Vec<TspEncoding> {
        self.test_instances
            .iter()
            .map(|i| TspEncoding::preprocessed(i.clone()))
            .collect()
    }
}

/// Serialisable snapshot of a full [`TrainedQross`] — the `.qross`
/// bundle exchanged between the train and serve stages (artifact kind
/// `BNDL`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QrossBundle {
    /// configuration the model was trained under
    pub config: PipelineConfig,
    /// recipe rebuilding the featurizer (must be reused at inference)
    pub featurizer: FeaturizerSpec,
    /// trained surrogate snapshot
    pub surrogate: SurrogateState,
    /// original training instances
    pub train_instances: Vec<TspInstance>,
    /// original held-out test instances
    pub test_instances: Vec<TspInstance>,
    /// dataset rows the surrogate was trained on
    pub dataset_len: usize,
    /// training diagnostics
    pub report: TrainReport,
}

impl QrossBundle {
    /// Rebuilds the in-memory [`TrainedQross`] this bundle snapshots.
    ///
    /// The restored model is functionally *bit-identical* to the one that
    /// was saved: surrogate weights are restored from exact bit patterns,
    /// the featurizer is rebuilt from its deterministic recipe, and the
    /// preprocessed encodings are recomputed by the same deterministic
    /// preprocessing.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::Persistence`] for inconsistent network
    /// shapes in the surrogate snapshot.
    pub fn into_trained(self) -> Result<TrainedQross, QrossError> {
        let surrogate = Surrogate::from_state(self.surrogate)?;
        let featurizer = self.featurizer.build();
        let encode = |insts: Vec<TspInstance>| -> Vec<TspEncoding> {
            insts.into_iter().map(TspEncoding::preprocessed).collect()
        };
        Ok(TrainedQross {
            surrogate,
            featurizer,
            train_encodings: encode(self.train_instances),
            test_encodings: encode(self.test_instances),
            dataset_len: self.dataset_len,
            report: self.report,
            config: self.config,
        })
    }
}

/// Trains a surrogate on an arbitrary family of relaxable problems —
/// the problem-generic core of the pipeline ([`Pipeline`] wraps it with
/// TSP-specific generation, preprocessing and featurisation).
///
/// `featurize` must produce `feat_dim`-wide vectors; the same function
/// must be used at inference time. Collection fans out across one worker
/// per core via [`collect_dataset`] (bit-identical to a sequential run);
/// pass an explicit worker count through [`collect_dataset`] directly if
/// you need to pin it.
///
/// # Errors
///
/// Propagates [`QrossError`] from dataset assembly or surrogate training.
///
/// # Examples
///
/// Train on a family of MVC instances:
///
/// ```no_run
/// use problems::{MvcInstance, RelaxableProblem};
/// use qross::collect::CollectConfig;
/// use qross::pipeline::train_on_problems;
/// use qross::surrogate::SurrogateConfig;
/// use solvers::SimulatedAnnealer;
///
/// let graphs: Vec<MvcInstance> = (0..20)
///     .map(|s| MvcInstance::random_gnp(&format!("g{s}"), 30, 0.4, s))
///     .collect();
/// let featurize = |g: &MvcInstance| {
///     vec![g.num_vertices() as f64, g.edges().len() as f64]
/// };
/// let (surrogate, _report) = train_on_problems(
///     &graphs,
///     featurize,
///     2,
///     &CollectConfig::default(),
///     &SurrogateConfig::default(),
///     &SimulatedAnnealer::default(),
///     7,
/// )?;
/// # Ok::<(), qross::QrossError>(())
/// ```
#[allow(clippy::too_many_arguments)] // a staged builder would obscure the one-shot call
pub fn train_on_problems<P, S, F>(
    problems: &[P],
    featurize: F,
    feat_dim: usize,
    collect: &CollectConfig,
    surrogate_config: &SurrogateConfig,
    solver: &S,
    seed: u64,
) -> Result<(Surrogate, TrainReport), QrossError>
where
    P: problems::RelaxableProblem + Sync,
    S: Solver + ?Sized,
    F: Fn(&P) -> Vec<f64>,
{
    if problems.is_empty() {
        return Err(QrossError::BadDataset {
            message: "no problems to train on".to_string(),
        });
    }
    let dataset = collect_dataset(problems, featurize, feat_dim, collect, solver, seed, 0);
    Surrogate::train(&dataset, surrogate_config)
}

/// The pipeline's collection stage: fans [`collect_profile`] out across
/// `workers` threads (one task per problem instance) and assembles the
/// profiles into a [`SurrogateDataset`] in instance order.
///
/// Instance `idx` is collected with seed `derive_seed(seed, 100 + idx)`,
/// so the result is **bit-identical for every worker count** (`0` = one
/// worker per core, `1` = fully sequential including nested solver
/// fan-out, `n` = exactly `n` workers) — the property the
/// `integration_parallel_determinism` suite asserts at 1/2/8 workers.
///
/// Featurisation runs sequentially during assembly: it is orders of
/// magnitude cheaper than the solver batches, and keeping it on one
/// thread spares `featurize` a `Sync` bound.
pub fn collect_dataset<P, S, F>(
    problems: &[P],
    featurize: F,
    feat_dim: usize,
    collect: &CollectConfig,
    solver: &S,
    seed: u64,
    workers: usize,
) -> SurrogateDataset
where
    P: problems::RelaxableProblem + Sync,
    S: Solver + ?Sized,
    F: Fn(&P) -> Vec<f64>,
{
    let profiles = parallel_map_with_workers(
        problems.len(),
        workers,
        || (),
        |(), idx| {
            collect_profile(
                &problems[idx],
                solver,
                collect,
                mathkit::rng::derive_seed(seed, 100 + idx as u64),
            )
        },
    );
    let mut dataset = SurrogateDataset::new(feat_dim);
    for (problem, profile) in problems.iter().zip(&profiles) {
        let features = featurize(problem);
        dataset.push_profile(&features, profile);
    }
    dataset
}

/// The relaxation-parameter search domain used across the experiments.
///
/// The paper restricts baselines to `A ∈ [1, 100]` on raw instances; this
/// workspace normalises every instance to mean distance 1 before encoding
/// (paper §3.3 pre-processing), which maps that range to roughly
/// `[0.02, 20]` — wide enough to contain every observed optimum with the
/// same two-orders-of-magnitude span.
pub const A_DOMAIN: (f64, f64) = (0.02, 20.0);

#[cfg(test)]
mod tests {
    use super::*;
    use solvers::sa::{SaConfig, SimulatedAnnealer};

    fn micro_solver() -> SimulatedAnnealer {
        SimulatedAnnealer::new(SaConfig {
            sweeps: 48,
            ..Default::default()
        })
    }

    #[test]
    fn micro_pipeline_trains() {
        let trained = Pipeline::new(PipelineConfig::micro())
            .try_run(&micro_solver())
            .expect("micro pipeline trains");
        assert_eq!(trained.train_encodings.len(), 20);
        assert_eq!(trained.test_encodings.len(), 4);
        assert!(trained.dataset_len >= 20 * 10);
        assert!(!trained.report.pf.train_loss.is_empty());
        // Pf loss should have decreased during training. The Option
        // accessors stay safe even for epochs == 0 histories.
        let first = trained.report.pf.initial_train_loss().expect("epochs > 0");
        let last = trained.report.pf.final_train_loss().expect("epochs > 0");
        assert!(last < first, "Pf loss did not improve: {first} -> {last}");
    }

    #[test]
    fn trained_surrogate_shows_sigmoid_trend() {
        let trained = Pipeline::new(PipelineConfig::micro())
            .try_run(&micro_solver())
            .expect("micro pipeline trains");
        let enc = &trained.test_encodings[0];
        let features = trained.featurizer.extract(enc.qubo_instance());
        let low = trained.surrogate.predict(&features, A_DOMAIN.0);
        let high = trained.surrogate.predict(&features, A_DOMAIN.1);
        assert!(
            high.pf > low.pf + 0.3,
            "no sigmoid trend: Pf({}) = {} vs Pf({}) = {}",
            A_DOMAIN.0,
            low.pf,
            A_DOMAIN.1,
            high.pf
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = Pipeline::new(PipelineConfig::micro())
            .try_run(&micro_solver())
            .expect("micro pipeline trains");
        let b = Pipeline::new(PipelineConfig::micro())
            .try_run(&micro_solver())
            .expect("micro pipeline trains");
        let enc = &a.test_encodings[1];
        let features = a.featurizer.extract(enc.qubo_instance());
        let pa = a.surrogate.predict(&features, 1.0);
        let pb = b.surrogate.predict(&features, 1.0);
        assert_eq!(pa, pb);
    }
}
