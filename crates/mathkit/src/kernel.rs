//! Blocked matrix-multiply kernels and the two numeric tiers.
//!
//! # Numeric tiers
//!
//! The workspace distinguishes two tiers of floating-point guarantees:
//!
//! * **Serve tier (bit-exact).** [`matmul_serve`] — used by
//!   [`Matrix::matmul`](crate::Matrix::matmul) and therefore by
//!   `Dense::infer` / `Mlp::infer` / `Surrogate::predict*` — produces
//!   *exactly* the same `f64` bit patterns as the reference
//!   implementation ([`matmul_reference`]). Every output element is
//!   accumulated into a single `f64` in ascending-`k` order, and the
//!   reference's zero-skip (`a[i][k] == 0.0` contributes nothing, even
//!   when `b[k][j]` is NaN or infinite) is preserved. Blocking and
//!   register tiling only change *which* elements are in flight
//!   concurrently, never the per-element accumulation order, so the
//!   result is bit-identical by construction (and property-tested).
//!   Persisted artifacts and the train-once/serve-many replay contract
//!   rely on this tier.
//!
//! * **Fast-math tier (value-approximate).** [`matmul_fastmath`] —
//!   exposed as [`Matrix::matmul_fastmath`](crate::Matrix::matmul_fastmath)
//!   and opted into by the trainer via `TrainConfig::fast_math` — drops
//!   the zero-skip branch and reassociates the `k` accumulation into two
//!   interleaved partial sums for instruction-level parallelism. Results
//!   agree with the serve tier to normal rounding accuracy but are *not*
//!   bit-identical. Only collection/training paths, where no
//!   bit-reproducibility contract exists across code versions, may use
//!   it; within one binary it is still deterministic (same inputs, same
//!   bits).
//!
//! # Kernel shape
//!
//! Both kernels register-tile the output into `MR x NR` (2×8) blocks:
//! `NR` column accumulators per row live in registers across the whole
//! `k` loop, eliminating the per-`k` load/store of the output row that
//! the naive ikj loop performs, and giving the autovectorizer a clean
//! unrolled lane structure. Inner loops index fixed-size `[f64; NR]`
//! arrays and `chunks_exact` slices, so no bounds checks survive in the
//! hot path. For taller left operands (`m >= PACK_MIN_ROWS`) the right
//! operand is first packed into panel-major storage with the row stride
//! padded up to a multiple of `NR`: the `k` walk over a panel is then
//! unit-stride, and the ragged column tail is handled by zero padding
//! (pad lanes are computed and discarded, which cannot perturb real
//! lanes because each lane has its own accumulator).

/// Column lanes held in registers per tile (power of two, sized so an
/// `MR`-row tile of `f64` accumulators fits the SSE2 register file).
pub const NR: usize = 8;

/// Rows advanced per register tile.
const MR: usize = 2;

/// Minimum left-operand row count before packing the right operand into
/// padded panels pays for itself; below this the kernel reads `b`
/// in place.
const PACK_MIN_ROWS: usize = 8;

/// Reference ikj matrix multiply: the bit-exactness oracle.
///
/// This is the historical `Matrix::matmul` loop, kept verbatim as the
/// specification of the serve tier's numeric behaviour. `out` must be
/// zero-filled on entry.
pub fn matmul_reference(m: usize, kk: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * kk..(i + 1) * kk];
        let orow = &mut out[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[k * n..(k + 1) * n];
            for (j, &bkj) in brow.iter().enumerate() {
                orow[j] += aik * bkj;
            }
        }
    }
}

/// Serve-tier blocked multiply: bit-identical to [`matmul_reference`].
///
/// `out` must be zero-filled on entry. See the module docs for the
/// bit-exactness argument.
pub fn matmul_serve(m: usize, kk: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || kk == 0 {
        return; // zero-length accumulation: out stays all-zero
    }
    if m >= PACK_MIN_ROWS {
        matmul_serve_packed(m, kk, n, a, b, out);
    } else {
        matmul_serve_direct(m, kk, n, a, b, out);
    }
}

/// Serve tier without packing: tiles read `b` in place. Used for short
/// left operands (single-query predict) where a pack pass would not
/// amortise.
fn matmul_serve_direct(m: usize, kk: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    let full = n - n % NR;
    let mut i = 0;
    // MR-row register tiles over full-width column panels.
    while i + MR <= m {
        let arow0 = &a[i * kk..(i + 1) * kk];
        let arow1 = &a[(i + 1) * kk..(i + 2) * kk];
        let mut j0 = 0;
        while j0 < full {
            let mut acc0 = [0.0f64; NR];
            let mut acc1 = [0.0f64; NR];
            for k in 0..kk {
                let bk: &[f64; NR] = b[k * n + j0..k * n + j0 + NR].try_into().unwrap();
                let a0 = arow0[k];
                if a0 != 0.0 {
                    for l in 0..NR {
                        acc0[l] += a0 * bk[l];
                    }
                }
                let a1 = arow1[k];
                if a1 != 0.0 {
                    for l in 0..NR {
                        acc1[l] += a1 * bk[l];
                    }
                }
            }
            out[i * n + j0..i * n + j0 + NR].copy_from_slice(&acc0);
            out[(i + 1) * n + j0..(i + 1) * n + j0 + NR].copy_from_slice(&acc1);
            j0 += NR;
        }
        for j in full..n {
            let mut s0 = 0.0f64;
            let mut s1 = 0.0f64;
            for k in 0..kk {
                let bkj = b[k * n + j];
                let a0 = arow0[k];
                if a0 != 0.0 {
                    s0 += a0 * bkj;
                }
                let a1 = arow1[k];
                if a1 != 0.0 {
                    s1 += a1 * bkj;
                }
            }
            out[i * n + j] = s0;
            out[(i + 1) * n + j] = s1;
        }
        i += MR;
    }
    // Odd row tail: single-row tiles.
    while i < m {
        let arow = &a[i * kk..(i + 1) * kk];
        let mut j0 = 0;
        while j0 < full {
            let mut acc = [0.0f64; NR];
            for k in 0..kk {
                let bk: &[f64; NR] = b[k * n + j0..k * n + j0 + NR].try_into().unwrap();
                let a0 = arow[k];
                if a0 != 0.0 {
                    for l in 0..NR {
                        acc[l] += a0 * bk[l];
                    }
                }
            }
            out[i * n + j0..i * n + j0 + NR].copy_from_slice(&acc);
            j0 += NR;
        }
        for j in full..n {
            let mut s = 0.0f64;
            for k in 0..kk {
                let a0 = arow[k];
                if a0 != 0.0 {
                    s += a0 * b[k * n + j];
                }
            }
            out[i * n + j] = s;
        }
        i += 1;
    }
}

/// Serve tier with the right operand packed into panel-major storage:
/// panel `p` holds columns `p*NR .. p*NR+NR` contiguously per `k` (row
/// stride padded from `n` up to `panels * NR` with zeros), so the inner
/// `k` walk is unit-stride. Pad lanes of the ragged last panel are
/// computed into their own accumulators and never stored.
fn matmul_serve_packed(m: usize, kk: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    let panels = n.div_ceil(NR);
    let mut pack = vec![0.0f64; panels * kk * NR];
    for k in 0..kk {
        let brow = &b[k * n..(k + 1) * n];
        for p in 0..panels {
            let j0 = p * NR;
            let w = (n - j0).min(NR);
            let dst = (p * kk + k) * NR;
            pack[dst..dst + w].copy_from_slice(&brow[j0..j0 + w]);
        }
    }
    for p in 0..panels {
        let panel = &pack[p * kk * NR..(p + 1) * kk * NR];
        let j0 = p * NR;
        let w = (n - j0).min(NR);
        let mut i = 0;
        while i + MR <= m {
            let arow0 = &a[i * kk..(i + 1) * kk];
            let arow1 = &a[(i + 1) * kk..(i + 2) * kk];
            let mut acc0 = [0.0f64; NR];
            let mut acc1 = [0.0f64; NR];
            for (bk, (&a0, &a1)) in panel.chunks_exact(NR).zip(arow0.iter().zip(arow1.iter())) {
                if a0 != 0.0 {
                    for l in 0..NR {
                        acc0[l] += a0 * bk[l];
                    }
                }
                if a1 != 0.0 {
                    for l in 0..NR {
                        acc1[l] += a1 * bk[l];
                    }
                }
            }
            out[i * n + j0..i * n + j0 + w].copy_from_slice(&acc0[..w]);
            out[(i + 1) * n + j0..(i + 1) * n + j0 + w].copy_from_slice(&acc1[..w]);
            i += MR;
        }
        while i < m {
            let arow = &a[i * kk..(i + 1) * kk];
            let mut acc = [0.0f64; NR];
            for (bk, &a0) in panel.chunks_exact(NR).zip(arow.iter()) {
                if a0 != 0.0 {
                    for l in 0..NR {
                        acc[l] += a0 * bk[l];
                    }
                }
            }
            out[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
            i += 1;
        }
    }
}

/// Fast-math-tier multiply: branch-free, `k`-reassociated. **Not**
/// bit-identical to the serve tier — see the module docs for which code
/// paths may use it. `out` must be zero-filled on entry.
///
/// Each output lane keeps two partial accumulators over interleaved
/// even/odd `k` and folds them at the end; there is no zero-skip, so a
/// zero `a[i][k]` against a non-finite `b[k][j]` contributes NaN here
/// where the serve tier contributes nothing.
pub fn matmul_fastmath(m: usize, kk: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || kk == 0 {
        return;
    }
    let full = n - n % NR;
    let kpair = kk - kk % 2;
    for i in 0..m {
        let arow = &a[i * kk..(i + 1) * kk];
        let mut j0 = 0;
        while j0 < full {
            let mut even = [0.0f64; NR];
            let mut odd = [0.0f64; NR];
            let mut k = 0;
            while k < kpair {
                let a0 = arow[k];
                let a1 = arow[k + 1];
                let b0: &[f64; NR] = b[k * n + j0..k * n + j0 + NR].try_into().unwrap();
                let b1: &[f64; NR] = b[(k + 1) * n + j0..(k + 1) * n + j0 + NR]
                    .try_into()
                    .unwrap();
                for l in 0..NR {
                    even[l] += a0 * b0[l];
                    odd[l] += a1 * b1[l];
                }
                k += 2;
            }
            if k < kk {
                let a0 = arow[k];
                let b0: &[f64; NR] = b[k * n + j0..k * n + j0 + NR].try_into().unwrap();
                for l in 0..NR {
                    even[l] += a0 * b0[l];
                }
            }
            for l in 0..NR {
                out[i * n + j0 + l] = even[l] + odd[l];
            }
            j0 += NR;
        }
        for j in full..n {
            let mut s = 0.0f64;
            for (k, &a0) in arow.iter().enumerate() {
                s += a0 * b[k * n + j];
            }
            out[i * n + j] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(m: usize, n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..m * n).map(f).collect()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    fn check_serve(m: usize, kk: usize, n: usize) {
        // Mix of signs, magnitudes, exact zeros and negative zeros so the
        // zero-skip path and rounding-sensitive sums are both exercised.
        let a = dense(m, kk, |i| match i % 7 {
            0 => 0.0,
            1 => -0.0,
            x => ((x * i) as f64).sin() * 1e3f64.powi((i % 5) as i32 - 2),
        });
        let b = dense(kk, n, |i| ((i * 31 + 7) as f64).cos() * 0.37);
        let mut want = vec![0.0; m * n];
        let mut got = vec![0.0; m * n];
        matmul_reference(m, kk, n, &a, &b, &mut want);
        matmul_serve(m, kk, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got);
    }

    #[test]
    fn serve_matches_reference_on_serve_shapes() {
        // predict single row, batched predict, hidden layer, output heads
        for &(m, kk, n) in &[
            (1usize, 25usize, 64usize),
            (64, 25, 64),
            (64, 64, 64),
            (64, 64, 1),
            (64, 64, 2),
            (256, 65, 64),
        ] {
            check_serve(m, kk, n);
        }
    }

    #[test]
    fn serve_matches_reference_on_ragged_shapes() {
        for &(m, kk, n) in &[
            (1usize, 1usize, 1usize),
            (1, 13, 7),
            (3, 9, 15),
            (7, 8, 9),
            (8, 3, 5), // packed path, ragged tail panel
            (9, 17, 12),
            (13, 1, 19),
            (5, 64, 1),
        ] {
            check_serve(m, kk, n);
        }
    }

    #[test]
    fn serve_zero_skip_shields_nonfinite() {
        // A zero in `a` must skip a NaN/inf in `b`, exactly like the
        // reference; both rows below the packing threshold and above it.
        for m in [2usize, 9] {
            let kk = 3;
            let n = 10;
            let mut a = dense(m, kk, |i| i as f64 + 1.0);
            a[1] = 0.0; // row 0, k=1
            let mut b = dense(kk, n, |i| i as f64);
            b[n + 4] = f64::NAN; // k=1 row
            b[n + 5] = f64::INFINITY;
            let mut want = vec![0.0; m * n];
            let mut got = vec![0.0; m * n];
            matmul_reference(m, kk, n, &a, &b, &mut want);
            matmul_serve(m, kk, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got);
        }
    }

    #[test]
    fn fastmath_close_to_reference() {
        let (m, kk, n) = (6, 33, 20);
        let a = dense(m, kk, |i| ((i * 3 + 1) as f64).sin());
        let b = dense(kk, n, |i| ((i * 5 + 2) as f64).cos());
        let mut want = vec![0.0; m * n];
        let mut got = vec![0.0; m * n];
        matmul_reference(m, kk, n, &a, &b, &mut want);
        matmul_fastmath(m, kk, n, &a, &b, &mut got);
        for (x, y) in want.iter().zip(got.iter()) {
            assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let mut out = [0.0f64; 0];
        matmul_serve(0, 3, 0, &[], &[], &mut out);
        matmul_fastmath(0, 3, 0, &[], &[], &mut out);
        let mut out1 = [0.0f64; 4];
        matmul_serve(2, 0, 2, &[], &[], &mut out1);
        assert_eq!(out1, [0.0; 4]);
    }
}
