//! Sparse symmetric QUBO models.
//!
//! A QUBO is `E(x) = offset + Σ_i l_i x_i + Σ_{i<j} w_ij x_i x_j` over
//! `x ∈ {0,1}^n`. Models are stored as a linear vector plus per-variable
//! adjacency lists of the *symmetric* coupling view (each `w_ij` appears in
//! the lists of both `i` and `j`), which keeps energy evaluation and
//! local-field updates proportional to the true coupling degree — essential
//! for TSP QUBOs where `n` reaches `90² = 8100` variables but each variable
//! couples with only `O(cities)` others.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::QuboError;

/// Incremental builder for [`QuboModel`].
///
/// Repeated contributions to the same linear or quadratic coefficient are
/// accumulated; `(i, j)` and `(j, i)` refer to the same coupling, and
/// `(i, i)` folds into the linear term (since `x² = x` for binaries).
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// let mut b = QuboBuilder::new(2);
/// b.add_quadratic(0, 1, 1.0);
/// b.add_quadratic(1, 0, 2.0); // accumulates onto the same coupling
/// let m = b.build();
/// assert_eq!(m.energy(&[1, 1]), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct QuboBuilder {
    num_vars: usize,
    offset: f64,
    linear: Vec<f64>,
    quadratic: HashMap<(u32, u32), f64>,
}

impl QuboBuilder {
    /// Creates a builder for `num_vars` binary variables.
    pub fn new(num_vars: usize) -> Self {
        QuboBuilder {
            num_vars,
            offset: 0.0,
            linear: vec![0.0; num_vars],
            quadratic: HashMap::new(),
        }
    }

    /// Number of variables of the model under construction.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a constant to the energy offset.
    pub fn add_offset(&mut self, value: f64) -> &mut Self {
        self.offset += value;
        self
    }

    /// Adds `value` to the linear coefficient of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_linear(&mut self, i: usize, value: f64) -> &mut Self {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.linear[i] += value;
        self
    }

    /// Adds `value` to the coupling between `i` and `j`.
    ///
    /// `i == j` folds into the linear term (binary idempotence).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_quadratic(&mut self, i: usize, j: usize, value: f64) -> &mut Self {
        assert!(i < self.num_vars, "variable {i} out of range");
        assert!(j < self.num_vars, "variable {j} out of range");
        if i == j {
            self.linear[i] += value;
        } else {
            let key = if i < j {
                (i as u32, j as u32)
            } else {
                (j as u32, i as u32)
            };
            *self.quadratic.entry(key).or_insert(0.0) += value;
        }
        self
    }

    /// Checked variant of [`QuboBuilder::add_quadratic`].
    ///
    /// # Errors
    ///
    /// * [`QuboError::VariableOutOfRange`] for an out-of-range index.
    /// * [`QuboError::NonFiniteCoefficient`] for NaN/infinite `value`.
    pub fn try_add_quadratic(&mut self, i: usize, j: usize, value: f64) -> Result<(), QuboError> {
        if i >= self.num_vars {
            return Err(QuboError::VariableOutOfRange {
                index: i,
                num_vars: self.num_vars,
            });
        }
        if j >= self.num_vars {
            return Err(QuboError::VariableOutOfRange {
                index: j,
                num_vars: self.num_vars,
            });
        }
        if !value.is_finite() {
            return Err(QuboError::NonFiniteCoefficient);
        }
        self.add_quadratic(i, j, value);
        Ok(())
    }

    /// Finalises the model, dropping exact-zero couplings.
    pub fn build(self) -> QuboModel {
        let mut neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.num_vars];
        let mut entries: Vec<((u32, u32), f64)> = self
            .quadratic
            .into_iter()
            .filter(|&(_, w)| w != 0.0)
            .collect();
        // Deterministic ordering regardless of HashMap iteration order.
        entries.sort_by_key(|&(k, _)| k);
        for ((i, j), w) in &entries {
            neighbors[*i as usize].push((*j, *w));
            neighbors[*j as usize].push((*i, *w));
        }
        for list in &mut neighbors {
            list.sort_by_key(|&(j, _)| j);
        }
        QuboModel {
            offset: self.offset,
            linear: self.linear,
            neighbors,
        }
    }
}

/// An immutable sparse QUBO model.
///
/// See the [module documentation](self) for the storage layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuboModel {
    offset: f64,
    linear: Vec<f64>,
    /// symmetric adjacency: `neighbors[i]` holds `(j, w_ij)` for every
    /// coupled `j != i`
    neighbors: Vec<Vec<(u32, f64)>>,
}

impl QuboModel {
    /// Number of binary variables.
    pub fn num_vars(&self) -> usize {
        self.linear.len()
    }

    /// Constant energy offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Linear coefficient of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// Coupling between `i` and `j` (`0.0` when absent).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        assert!(j < self.num_vars(), "variable {j} out of range");
        if i == j {
            return 0.0;
        }
        match self.neighbors[i].binary_search_by_key(&(j as u32), |&(k, _)| k) {
            Ok(pos) => self.neighbors[i][pos].1,
            Err(_) => 0.0,
        }
    }

    /// The `(j, w_ij)` adjacency list of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: usize) -> &[(u32, f64)] {
        &self.neighbors[i]
    }

    /// Number of distinct non-zero couplings.
    pub fn num_couplings(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Largest absolute coefficient (linear or quadratic); `0.0` for an
    /// all-zero model.
    pub fn max_abs_coefficient(&self) -> f64 {
        let lin = self.linear.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        let quad = self
            .neighbors
            .iter()
            .flatten()
            .fold(0.0_f64, |m, &(_, w)| m.max(w.abs()));
        lin.max(quad)
    }

    /// Full energy `E(x)` of a binary assignment (entries must be 0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn energy(&self, x: &[u8]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "state length mismatch");
        let mut e = self.offset;
        for i in 0..x.len() {
            if x[i] == 0 {
                continue;
            }
            e += self.linear[i];
            // Each coupling counted once via the i < j half.
            for &(j, w) in &self.neighbors[i] {
                let j = j as usize;
                if j > i && x[j] != 0 {
                    e += w;
                }
            }
        }
        e
    }

    /// Checked energy evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::StateLengthMismatch`] when the slice length is
    /// wrong.
    pub fn try_energy(&self, x: &[u8]) -> Result<f64, QuboError> {
        if x.len() != self.num_vars() {
            return Err(QuboError::StateLengthMismatch {
                expected: self.num_vars(),
                found: x.len(),
            });
        }
        Ok(self.energy(x))
    }

    /// Returns a new model with every coefficient (linear, quadratic and
    /// offset) passed through `f`.
    ///
    /// This is how the precision/noise solver wrappers inject coefficient
    /// quantisation and analog control error (paper appendix B) without the
    /// solvers knowing about the degradation model.
    pub fn map_coefficients<F: FnMut(f64) -> f64>(&self, mut f: F) -> QuboModel {
        let linear = self.linear.iter().map(|&v| f(v)).collect();
        // Transform each coupling exactly once (the i < j copy), then mirror.
        let n = self.num_vars();
        let mut neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for &(j, w) in &self.neighbors[i] {
                if (j as usize) > i {
                    let new_w = f(w);
                    neighbors[i].push((j, new_w));
                    neighbors[j as usize].push((i as u32, new_w));
                }
            }
        }
        for list in &mut neighbors {
            list.sort_by_key(|&(j, _)| j);
        }
        QuboModel {
            offset: f(self.offset),
            linear,
            neighbors,
        }
    }

    /// Iterates over all couplings as `(i, j, w)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.neighbors.iter().enumerate().flat_map(|(i, list)| {
            list.iter().filter_map(move |&(j, w)| {
                let j = j as usize;
                if j > i {
                    Some((i, j, w))
                } else {
                    None
                }
            })
        })
    }
}

impl std::fmt::Display for QuboModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QuboModel({} vars, {} couplings, offset {:.3})",
            self.num_vars(),
            self.num_couplings(),
            self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> QuboModel {
        // E = 1 + x0 - 2 x1 + 3 x0 x1 - x1 x2
        let mut b = QuboBuilder::new(3);
        b.add_offset(1.0);
        b.add_linear(0, 1.0);
        b.add_linear(1, -2.0);
        b.add_quadratic(0, 1, 3.0);
        b.add_quadratic(2, 1, -1.0);
        b.build()
    }

    #[test]
    fn energy_enumeration() {
        let m = toy();
        let want = |x0: f64, x1: f64, x2: f64| 1.0 + x0 - 2.0 * x1 + 3.0 * x0 * x1 - x1 * x2;
        for bits in 0..8u8 {
            let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            let e = m.energy(&x);
            let w = want(x[0] as f64, x[1] as f64, x[2] as f64);
            assert!((e - w).abs() < 1e-12, "x={x:?}");
        }
    }

    #[test]
    fn diagonal_folds_to_linear() {
        let mut b = QuboBuilder::new(1);
        b.add_quadratic(0, 0, 5.0);
        let m = b.build();
        assert_eq!(m.linear(0), 5.0);
        assert_eq!(m.energy(&[1]), 5.0);
    }

    #[test]
    fn symmetric_accumulation() {
        let mut b = QuboBuilder::new(2);
        b.add_quadratic(0, 1, 1.5);
        b.add_quadratic(1, 0, 0.5);
        let m = b.build();
        assert_eq!(m.quadratic(0, 1), 2.0);
        assert_eq!(m.quadratic(1, 0), 2.0);
        assert_eq!(m.num_couplings(), 1);
    }

    #[test]
    fn zero_couplings_dropped() {
        let mut b = QuboBuilder::new(2);
        b.add_quadratic(0, 1, 1.0);
        b.add_quadratic(0, 1, -1.0);
        let m = b.build();
        assert_eq!(m.num_couplings(), 0);
        assert_eq!(m.quadratic(0, 1), 0.0);
    }

    #[test]
    fn max_abs_coefficient() {
        let m = toy();
        assert_eq!(m.max_abs_coefficient(), 3.0);
        let empty = QuboBuilder::new(2).build();
        assert_eq!(empty.max_abs_coefficient(), 0.0);
    }

    #[test]
    fn map_coefficients_scales_energy() {
        let m = toy();
        let doubled = m.map_coefficients(|w| 2.0 * w);
        for bits in 0..8u8 {
            let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            assert!((doubled.energy(&x) - 2.0 * m.energy(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn try_energy_length_check() {
        let m = toy();
        assert!(matches!(
            m.try_energy(&[0, 1]),
            Err(QuboError::StateLengthMismatch { .. })
        ));
        assert!(m.try_energy(&[0, 1, 0]).is_ok());
    }

    #[test]
    fn try_add_quadratic_checks() {
        let mut b = QuboBuilder::new(2);
        assert!(matches!(
            b.try_add_quadratic(0, 2, 1.0),
            Err(QuboError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            b.try_add_quadratic(0, 1, f64::NAN),
            Err(QuboError::NonFiniteCoefficient)
        ));
        assert!(b.try_add_quadratic(0, 1, 1.0).is_ok());
    }

    #[test]
    fn couplings_iterator_half_view() {
        let m = toy();
        let cs: Vec<(usize, usize, f64)> = m.couplings().collect();
        assert_eq!(cs.len(), 2);
        assert!(cs.contains(&(0, 1, 3.0)));
        assert!(cs.contains(&(1, 2, -1.0)));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", toy()).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let m = toy();
        let json = serde_json::to_string(&m).unwrap();
        let back: QuboModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
