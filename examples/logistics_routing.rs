//! Repeated vehicle routing — the motivating workload from the paper's
//! introduction ("a car company has to do vehicle routing in a city many
//! times a day").
//!
//! A dispatcher solves a fresh TSP every shift. Conventional tuners burn
//! several QUBO-solver calls per instance re-discovering the relaxation
//! parameter; QROSS amortises that cost: the surrogate is trained once on
//! history, then every new day's instance gets a good parameter on the
//! *first* call. This example simulates a week of daily instances and
//! compares the first-call success of QROSS's offline proposal against a
//! random first call.
//!
//! ```text
//! cargo run --release --example logistics_routing
//! ```

use rand::Rng;

use qross_repro::mathkit::rng::derive_rng;
use qross_repro::problems::tsp::heuristics;
use qross_repro::problems::{TspEncoding, TspInstance};
use qross_repro::qross::collect::observe;
use qross_repro::qross::pipeline::{Pipeline, PipelineConfig, A_DOMAIN};
use qross_repro::qross::strategy::mfs;
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};

/// A "city": depot plus customer sites drawn around fixed district
/// centres, so every day shares structure — exactly the premise QROSS
/// exploits.
fn daily_instance(day: u64) -> TspInstance {
    let mut rng = derive_rng(0xC17, day);
    let districts = [(10.0, 10.0), (60.0, 20.0), (35.0, 70.0)];
    let mut coords = vec![(0.0, 0.0)]; // depot
    for k in 0..9 {
        let (cx, cy) = districts[k % districts.len()];
        coords.push((cx + rng.gen_range(-8.0..8.0), cy + rng.gen_range(-8.0..8.0)));
    }
    TspInstance::from_coords(&format!("day{day}"), &coords)
}

fn main() -> Result<(), qross_repro::qross::QrossError> {
    let solver = SimulatedAnnealer::new(SaConfig {
        sweeps: 128,
        ..Default::default()
    });
    println!("training the surrogate once, on history…");
    let trained = Pipeline::new(PipelineConfig::quick()).try_run(&solver)?;
    let batch = 24;

    println!("\nsimulating one week of daily routing problems:");
    println!("day | QROSS 1st call          | random 1st call");
    let mut qross_wins = 0usize;
    let mut qross_feasible = 0usize;
    let mut random_feasible = 0usize;
    for day in 0..7u64 {
        let instance = daily_instance(day);
        let encoding = TspEncoding::preprocessed(instance);
        let features = trained.featurizer.extract(encoding.qubo_instance());
        let (_, reference) = heuristics::reference_tour(encoding.fitness_instance(), 6);

        // QROSS: MFS proposal, zero solver calls spent choosing it.
        let a_qross = mfs::propose(&trained.surrogate, &features, A_DOMAIN, batch)
            .map(|m| m.x)
            .unwrap_or((A_DOMAIN.0 * A_DOMAIN.1).sqrt());
        let q = observe(&encoding, &solver, a_qross, batch, 50 + day);

        // Baseline: a uniform-random parameter, as a tuner's first trial.
        let mut rng = derive_rng(0xBAD, day);
        let a_rand = rng.gen_range(A_DOMAIN.0..A_DOMAIN.1);
        let r = observe(&encoding, &solver, a_rand, batch, 150 + day);

        let show = |label: &str, a: f64, f: Option<f64>| match f {
            Some(v) => format!(
                "{label} A={a:.3} len={v:.1} (+{:.1}%)",
                (v / reference - 1.0) * 100.0
            ),
            None => format!("{label} A={a:.3} infeasible"),
        };
        println!(
            " {}  | {:<24} | {}",
            day,
            show("", a_qross, q.best_fitness),
            show("", a_rand, r.best_fitness)
        );
        qross_feasible += q.best_fitness.is_some() as usize;
        random_feasible += r.best_fitness.is_some() as usize;
        match (q.best_fitness, r.best_fitness) {
            (Some(qf), Some(rf)) if qf <= rf => qross_wins += 1,
            (Some(_), None) => qross_wins += 1,
            _ => {}
        }
    }
    println!(
        "\nQROSS first-call feasibility {}/7, random {}/7; QROSS at least as good on {}/7 days",
        qross_feasible, random_feasible, qross_wins
    );
    Ok(())
}
