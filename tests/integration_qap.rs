//! QAP hypothesis check (paper §3.1 fn. 2: "with more experiments we
//! confirm this hypothesis holds true for ... QAPLIB with SA on CPU").
//!
//! The hypothesis: optimal solutions appear within `0 < Pf < 1`, on the
//! slope of the feasibility sigmoid. These tests replay the check on
//! random QAP instances with the SA solver — exercising the third problem
//! family end to end (encode → solve → decode → fitness).

use qross_repro::problems::{QapInstance, RelaxableProblem};
use qross_repro::qross::collect::{collect_profile, observe, CollectConfig};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_repro::solvers::Solver;

fn solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 128,
        ..Default::default()
    })
}

/// Exact best permutation by brute force (n ≤ 6).
fn exact_best(q: &QapInstance) -> f64 {
    let n = q.size();
    assert!(n <= 6);
    let mut best = f64::INFINITY;
    let mut perm: Vec<usize> = (0..n).collect();
    fn visit(k: usize, perm: &mut Vec<usize>, q: &QapInstance, best: &mut f64) {
        if k == perm.len() {
            *best = best.min(q.assignment_cost(perm));
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            visit(k + 1, perm, q, best);
            perm.swap(k, i);
        }
    }
    visit(0, &mut perm, q, &mut best);
    best
}

/// The QAP feasibility profile is sigmoid-shaped: infeasible at low A,
/// feasible at high A, with slope samples in between.
#[test]
fn qap_pf_profile_is_sigmoid() {
    let q = QapInstance::random("qap6", 6, 11);
    let s = solver();
    let cfg = CollectConfig {
        batch: 16,
        sweep_points: 10,
        a_init: 10.0, // QAP costs are O(n²·f·d): the slope sits higher
        a_bounds: (1e-2, 1e5),
        ..Default::default()
    };
    let profile = collect_profile(&q, &s, &cfg, 3);
    assert!(
        profile.first().unwrap().pf < 0.5,
        "low-A end not infeasible"
    );
    assert!(profile.last().unwrap().pf > 0.5, "high-A end not feasible");
    assert!(
        profile.iter().any(|o| o.pf > 0.0 && o.pf < 1.0),
        "no slope samples in the QAP profile"
    );
}

/// The paper's hypothesis on QAP: the best solution across the sweep is
/// found at a parameter whose measured Pf lies strictly inside (0, 1] and
/// the best-known assignment cost is reached on the slope side, not deep
/// in the penalty-dominated plateau.
#[test]
fn qap_best_solutions_near_the_slope() {
    let q = QapInstance::random("qap5", 5, 7);
    let s = solver();
    let optimal = exact_best(&q);
    // Sweep A across three decades around the expected slope.
    let mut best: Option<(f64, f64, f64)> = None; // (fitness, a, pf)
    for k in 0..14 {
        let a = 2.0 * (1000.0f64).powf(k as f64 / 13.0);
        let obs = observe(&q, &s, a, 16, 40 + k as u64);
        if let Some(f) = obs.best_fitness {
            if best.is_none() || f < best.unwrap().0 {
                best = Some((f, a, obs.pf));
            }
        }
    }
    let (fitness, _a, pf) = best.expect("some feasible trial");
    assert!(
        (fitness - optimal).abs() < 1e-9,
        "sweep should find the exact optimum on a 5-instance: {fitness} vs {optimal}"
    );
    assert!(pf > 0.0, "best trial had zero measured feasibility?");
}

/// Feasible QUBO solutions decode to permutations whose cost matches the
/// QUBO energy (the QAP analogue of the TSP fitness-identity test).
#[test]
fn qap_energy_fitness_identity_via_solver() {
    let q = QapInstance::random("qap5b", 5, 19);
    let s = solver();
    let a = 500.0; // comfortably feasible
    let qubo = q.to_qubo(a);
    let set = s.sample(&qubo, 16, 5);
    let best = set
        .best_feasible(|x| q.is_feasible(x))
        .expect("feasible at high A");
    let perm = q.decode_assignment(&best.assignment).unwrap();
    let cost = q.assignment_cost(&perm);
    assert!(
        (best.energy - cost).abs() < 1e-9,
        "QUBO energy must equal assignment cost"
    );
    assert_eq!(q.fitness(&best.assignment), Some(cost));
}
