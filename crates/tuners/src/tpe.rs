//! Tree-structured Parzen Estimator (Bergstra et al. 2011) — the
//! Hyperopt-style baseline of §5.1.
//!
//! TPE models `p(x | y)` instead of `p(y | x)`: observations are split at
//! the γ-quantile of the objective into a "good" set (below) and a "bad"
//! set (above); Parzen mixtures `l(x)` and `g(x)` are fitted to each, and
//! the next candidate maximises the density ratio `l(x)/g(x)` over a small
//! batch of samples drawn from `l`.

use rand::rngs::StdRng;
use rand::Rng;

use mathkit::kde::ParzenEstimator;
use mathkit::rng::seeded_rng;

use crate::{validate_observation, Observation, Tuner};

/// Configuration for [`Tpe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpeConfig {
    /// number of uniform random start-up trials
    pub warmup: usize,
    /// quantile splitting good from bad observations
    pub gamma: f64,
    /// candidates sampled from `l(x)` per ask
    pub candidates: usize,
}

impl Default for TpeConfig {
    fn default() -> Self {
        TpeConfig {
            warmup: 5,
            gamma: 0.25,
            candidates: 24,
        }
    }
}

/// TPE tuner over a bounded scalar domain.
#[derive(Debug)]
pub struct Tpe {
    lo: f64,
    hi: f64,
    config: TpeConfig,
    rng: StdRng,
    observations: Vec<Observation>,
}

impl Tpe {
    /// Creates a tuner on `[lo, hi]` with default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, seed: u64) -> Self {
        Self::with_config(lo, hi, seed, TpeConfig::default())
    }

    /// Creates a tuner with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid domain, `gamma ∉ (0, 1)` or zero candidates.
    pub fn with_config(lo: f64, hi: f64, seed: u64, config: TpeConfig) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid domain [{lo}, {hi}]"
        );
        assert!(
            config.gamma > 0.0 && config.gamma < 1.0,
            "gamma must lie in (0, 1)"
        );
        assert!(config.candidates > 0, "need at least one candidate");
        Tpe {
            lo,
            hi,
            config,
            rng: seeded_rng(seed ^ 0x793E),
            observations: Vec::new(),
        }
    }
}

impl Tuner for Tpe {
    fn name(&self) -> &str {
        "tpe"
    }

    fn ask(&mut self) -> f64 {
        let n = self.observations.len();
        if n < self.config.warmup.max(2) {
            return self.rng.gen_range(self.lo..=self.hi);
        }
        // Split at the γ-quantile (at least one good observation).
        let mut sorted: Vec<Observation> = self.observations.clone();
        sorted.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal));
        let n_good = ((self.config.gamma * n as f64).ceil() as usize).clamp(1, n - 1);
        let good: Vec<f64> = sorted[..n_good].iter().map(|o| o.x).collect();
        let bad: Vec<f64> = sorted[n_good..].iter().map(|o| o.x).collect();

        self.propose_from_split(&good, &bad)
    }

    fn tell(&mut self, x: f64, y: f64) {
        validate_observation(self.lo, self.hi, x, y);
        self.observations.push(Observation { x, y });
    }

    fn observations(&self) -> &[Observation] {
        &self.observations
    }
}

impl Tpe {
    /// Fits the good/bad Parzen mixtures and proposes the best density
    /// ratio among sampled candidates.
    ///
    /// Degrades to a uniform draw over the domain when either mixture
    /// cannot be fitted (an empty split — this used to be an
    /// `expect("non-empty good set")` panic path): with no model of the
    /// good region, uniform exploration is the only unbiased proposal.
    fn propose_from_split(&mut self, good: &[f64], bad: &[f64]) -> f64 {
        let (Ok(l), Ok(g)) = (
            ParzenEstimator::fit(good, self.lo, self.hi),
            ParzenEstimator::fit(bad, self.lo, self.hi),
        ) else {
            return self.rng.gen_range(self.lo..=self.hi);
        };
        // Sample candidates from l, keep the best density ratio.
        let mut best_x = self.rng.gen_range(self.lo..=self.hi);
        let mut best_score = f64::NEG_INFINITY;
        for _ in 0..self.config.candidates {
            let x = l.sample(&mut self.rng);
            let score = l.log_pdf(x) - g.log_pdf(x);
            if score > best_score {
                best_score = score;
                best_x = x;
            }
        }
        best_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_then_exploitation() {
        let mut t = Tpe::new(0.0, 100.0, 11);
        for _ in 0..30 {
            let x = t.ask();
            t.tell(x, (x - 40.0).abs());
        }
        let (bx, _) = t.best().unwrap();
        assert!((bx - 40.0).abs() < 15.0, "TPE best at {bx}");
    }

    #[test]
    fn proposals_concentrate_in_good_region() {
        let mut t = Tpe::new(0.0, 100.0, 5);
        // Seed with a clear structure: good near 20, bad elsewhere.
        for &(x, y) in &[
            (18.0, 0.1),
            (20.0, 0.0),
            (22.0, 0.1),
            (60.0, 5.0),
            (80.0, 8.0),
            (5.0, 4.0),
            (95.0, 9.0),
            (40.0, 3.0),
        ] {
            t.tell(x, y);
        }
        let mut near = 0;
        for _ in 0..40 {
            let x = t.ask();
            if (x - 20.0).abs() < 15.0 {
                near += 1;
            }
            // do not tell: probe the stationary proposal distribution
        }
        assert!(near > 20, "only {near}/40 proposals near the good region");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut t = Tpe::new(0.0, 10.0, seed);
            let mut xs = Vec::new();
            for _ in 0..15 {
                let x = t.ask();
                t.tell(x, (x - 3.0).powi(2));
                xs.push(x);
            }
            xs
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(2), run(3));
    }

    #[test]
    fn handles_identical_objectives() {
        let mut t = Tpe::new(0.0, 10.0, 1);
        for i in 0..8 {
            t.tell(i as f64, 1.0);
        }
        let x = t.ask();
        assert!((0.0..=10.0).contains(&x));
    }

    #[test]
    fn empty_splits_degrade_to_uniform_sampling() {
        // Regression for the former `expect("non-empty good set")`
        // panic: an unfittable split must yield a uniform in-domain
        // proposal, not an abort.
        let mut t = Tpe::new(2.0, 8.0, 4);
        for (good, bad) in [
            (&[][..], &[3.0, 4.0][..]), // empty good set
            (&[3.0, 4.0][..], &[][..]), // empty bad set
            (&[][..], &[][..]),         // both empty
        ] {
            for _ in 0..20 {
                let x = t.propose_from_split(good, bad);
                assert!((2.0..=8.0).contains(&x), "proposal {x} escaped domain");
            }
        }
        // The degraded draws explore (not a constant point).
        let a = t.propose_from_split(&[], &[]);
        let b = t.propose_from_split(&[], &[]);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let _ = Tpe::with_config(
            0.0,
            1.0,
            0,
            TpeConfig {
                gamma: 1.5,
                ..Default::default()
            },
        );
    }
}
