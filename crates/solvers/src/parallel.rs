//! Replica-level parallelism for batch sampling.
//!
//! All solvers produce a batch of `B` independent replicas (the paper uses
//! `B = 128` solutions per call). Replicas share nothing but the read-only
//! model, so they parallelise embarrassingly across threads with
//! `crossbeam::scope`.

/// Runs `f(replica_index)` for `count` replicas across the available
/// cores and returns the results in replica order.
///
/// Falls back to a sequential loop when `count <= 1` or only one core is
/// available. `f` must be deterministic per index (seed-derived RNG) so the
/// parallel and sequential paths produce identical output.
///
/// # Examples
///
/// ```
/// use solvers::parallel::parallel_map_indexed;
/// let xs = parallel_map_indexed(8, |i| i * i);
/// assert_eq!(xs, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }

    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (t, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = t * chunk;
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    })
    .expect("replica worker panicked");
    out.into_iter()
        .map(|x| x.expect("replica result missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let xs = parallel_map_indexed(100, |i| i as u64 * 3);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let counter = AtomicUsize::new(0);
        let xs = parallel_map_indexed(64, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(xs.len(), 64);
    }

    #[test]
    fn zero_and_one_replicas() {
        let none: Vec<usize> = parallel_map_indexed(0, |i| i);
        assert!(none.is_empty());
        let one = parallel_map_indexed(1, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn matches_sequential_reference() {
        let par = parallel_map_indexed(37, |i| (i as f64).sin());
        let seq: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        assert_eq!(par, seq);
    }
}
