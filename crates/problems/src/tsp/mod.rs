//! Travelling Salesman Problem: instances, generators, QUBO encoding,
//! pre-processing and reference heuristics.
//!
//! Sub-modules:
//!
//! * [`generator`] — the synthetic dataset of paper appendix D (uniform and
//!   exponential coordinate distributions);
//! * [`encoding`] — the n²-variable permutation QUBO of Lucas (2014),
//!   paper §4.1 eqs. (4)–(6);
//! * [`preprocess`] — distance scaling and Minimizing the Variance Of the
//!   Distance Matrix (MVODM), paper appendix E;
//! * [`heuristics`] — nearest-neighbour + 2-opt + Or-opt reference tours
//!   used to normalise optimality gaps.

pub mod encoding;
pub mod features;
pub mod generator;
pub mod heuristics;
pub mod preprocess;

pub use encoding::TspEncoding;

use mathkit::Matrix;
use serde::{Deserialize, Serialize};

use crate::ProblemError;

/// A TSP instance: a symmetric distance matrix with zero diagonal.
///
/// # Examples
///
/// ```
/// use problems::TspInstance;
/// let inst = TspInstance::from_coords("square", &[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]);
/// assert_eq!(inst.num_cities(), 4);
/// // optimal tour walks the square perimeter
/// assert_eq!(inst.tour_length(&[0, 1, 2, 3]), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TspInstance {
    name: String,
    dist: Matrix,
    /// Generating coordinates, kept when the instance was built with
    /// [`TspInstance::from_coords`] — the family layer persists these
    /// (2n floats) instead of the dense n×n matrix, and re-deriving the
    /// matrix from them is bit-identical because the Euclidean distance
    /// computation is deterministic. `None` for explicit-matrix
    /// instances (TSPLIB `EXPLICIT`, MVODM outputs, scaled copies).
    coords: Option<Vec<(f64, f64)>>,
}

impl TspInstance {
    /// Builds an instance from planar coordinates with plain Euclidean
    /// distances (no TSPLIB rounding — use [`crate::tsplib`] for that).
    /// The coordinates are retained (see [`TspInstance::coords`]).
    pub fn from_coords(name: &str, coords: &[(f64, f64)]) -> Self {
        let n = coords.len();
        let mut dist = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                let d = (dx * dx + dy * dy).sqrt();
                dist[(i, j)] = d;
                dist[(j, i)] = d;
            }
        }
        TspInstance {
            name: name.to_string(),
            dist,
            coords: Some(coords.to_vec()),
        }
    }

    /// Builds an instance from an explicit distance matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::InvalidInstance`] if the matrix is not
    /// square, has a non-zero diagonal, is asymmetric, or contains
    /// non-finite entries. (MVODM-transformed matrices may contain
    /// negative off-diagonal values; those are accepted.)
    pub fn from_matrix(name: &str, dist: Matrix) -> Result<Self, ProblemError> {
        let (r, c) = dist.shape();
        if r != c {
            return Err(ProblemError::InvalidInstance {
                message: format!("distance matrix must be square, got {r}x{c}"),
            });
        }
        for i in 0..r {
            if dist[(i, i)] != 0.0 {
                return Err(ProblemError::InvalidInstance {
                    message: format!("diagonal entry ({i},{i}) must be zero"),
                });
            }
            for j in 0..c {
                let d = dist[(i, j)];
                if !d.is_finite() {
                    return Err(ProblemError::InvalidInstance {
                        message: format!("non-finite distance at ({i},{j})"),
                    });
                }
                if (d - dist[(j, i)]).abs() > 1e-9 {
                    return Err(ProblemError::InvalidInstance {
                        message: format!("asymmetric distances at ({i},{j})"),
                    });
                }
            }
        }
        Ok(TspInstance {
            name: name.to_string(),
            dist,
            coords: None,
        })
    }

    /// Instance identifier.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generating planar coordinates, when the instance was built
    /// from them (`None` for explicit-matrix instances).
    pub fn coords(&self) -> Option<&[(f64, f64)]> {
        self.coords.as_deref()
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.dist.rows()
    }

    /// Distance between cities `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.dist[(i, j)]
    }

    /// Borrow of the full distance matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.dist
    }

    /// Mean off-diagonal distance (the scale used to normalise instances
    /// so relaxation parameters of different problems live on the same
    /// order of magnitude — paper §3.3).
    pub fn mean_distance(&self) -> f64 {
        let n = self.num_cities();
        if n < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    acc += self.dist[(i, j)];
                }
            }
        }
        acc / (n * (n - 1)) as f64
    }

    /// Largest off-diagonal distance.
    pub fn max_distance(&self) -> f64 {
        let n = self.num_cities();
        let mut m = 0.0_f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m = m.max(self.dist[(i, j)]);
                }
            }
        }
        m
    }

    /// Length of a closed tour visiting `tour[0], tour[1], …` and
    /// returning to `tour[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `tour` is not a permutation-sized slice of valid city
    /// indices (length must equal `num_cities`).
    pub fn tour_length(&self, tour: &[usize]) -> f64 {
        assert_eq!(
            tour.len(),
            self.num_cities(),
            "tour must visit every city exactly once"
        );
        let n = tour.len();
        let mut acc = 0.0;
        for k in 0..n {
            acc += self.dist[(tour[k], tour[(k + 1) % n])];
        }
        acc
    }

    /// Returns a copy with every distance multiplied by `factor` (used by
    /// normalisation; see [`preprocess`]).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or not positive.
    pub fn scaled(&self, factor: f64) -> TspInstance {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite"
        );
        TspInstance {
            name: self.name.clone(),
            dist: self.dist.scale(factor),
            // Scaled distances no longer match the coordinates; drop them
            // rather than persist a recipe that would rebuild the wrong
            // matrix.
            coords: None,
        }
    }

    /// Replaces the name (used by generators and parsers).
    pub fn with_name(mut self, name: &str) -> TspInstance {
        self.name = name.to_string();
        self
    }
}

impl std::fmt::Display for TspInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TspInstance({}, {} cities)",
            self.name,
            self.num_cities()
        )
    }
}

/// Returns `true` when `tour` is a permutation of `0..n`.
pub fn is_permutation(tour: &[usize], n: usize) -> bool {
    if tour.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &c in tour {
        if c >= n || seen[c] {
            return false;
        }
        seen[c] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> TspInstance {
        TspInstance::from_coords("square", &[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)])
    }

    #[test]
    fn distances_symmetric_zero_diagonal() {
        let s = square();
        for i in 0..4 {
            assert_eq!(s.distance(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(s.distance(i, j), s.distance(j, i));
            }
        }
        assert!((s.distance(0, 2) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tour_length_rotation_invariant() {
        let s = square();
        let l1 = s.tour_length(&[0, 1, 2, 3]);
        let l2 = s.tour_length(&[1, 2, 3, 0]);
        let l3 = s.tour_length(&[3, 2, 1, 0]); // reflection
        assert!((l1 - l2).abs() < 1e-12);
        assert!((l1 - l3).abs() < 1e-12);
    }

    #[test]
    fn diagonal_tour_longer() {
        let s = square();
        let perimeter = s.tour_length(&[0, 1, 2, 3]);
        let crossing = s.tour_length(&[0, 2, 1, 3]);
        assert!(crossing > perimeter);
    }

    #[test]
    fn mean_and_max_distance() {
        let s = square();
        // 8 unit edges + 4 diagonals of sqrt(2), over 12 ordered pairs
        let want_mean = (8.0 + 4.0 * 2.0_f64.sqrt()) / 12.0;
        assert!((s.mean_distance() - want_mean).abs() < 1e-12);
        assert!((s.max_distance() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn from_matrix_validation() {
        let mut bad = Matrix::zeros(2, 2);
        bad[(0, 1)] = 1.0;
        bad[(1, 0)] = 2.0; // asymmetric
        assert!(TspInstance::from_matrix("bad", bad).is_err());

        let mut diag = Matrix::zeros(2, 2);
        diag[(0, 0)] = 1.0;
        assert!(TspInstance::from_matrix("diag", diag).is_err());

        assert!(TspInstance::from_matrix("rect", Matrix::zeros(2, 3)).is_err());

        let mut ok = Matrix::zeros(2, 2);
        ok[(0, 1)] = 3.0;
        ok[(1, 0)] = 3.0;
        assert!(TspInstance::from_matrix("ok", ok).is_ok());
    }

    #[test]
    fn negative_off_diagonal_accepted() {
        // MVODM can legitimately produce negative entries.
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = -1.5;
        m[(1, 0)] = -1.5;
        assert!(TspInstance::from_matrix("neg", m).is_ok());
    }

    #[test]
    fn scaled_scales_lengths() {
        let s = square();
        let s2 = s.scaled(3.0);
        assert!((s2.tour_length(&[0, 1, 2, 3]) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_check() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
    }

    #[test]
    #[should_panic(expected = "every city")]
    fn tour_length_wrong_size_panics() {
        let s = square();
        let _ = s.tour_length(&[0, 1, 2]);
    }
}
