//! Online Fitting Strategy (paper §4.2, Algorithm 1).
//!
//! OFS improves the parameter search for one specific instance by fitting
//! the two-parameter sigmoid ansatz `S(A; θs, θo) = σ(θs·A − θo)` (eq. 7)
//! to the `(A, Pf)` pairs observed from actual solver calls, then sampling
//! the next candidate uniformly from the fitted slope region
//! `{A | 0 < S(A) < 1}` (Algorithm 1, line 5).
//!
//! The bound-finding of Algorithm 1 lines 1–2 (halve until `Pf = 0`,
//! double until `Pf = 1`) is exposed via [`OnlineFitting::bound_probe`] so
//! the composed strategy can interleave it with its offline proposals —
//! the paper notes the offline strategies already provide good initial
//! guesses, so bound probes are only needed when the offline trials left a
//! side of the sigmoid unexplored.

use rand::rngs::StdRng;
use rand::Rng;

use mathkit::fit::{fit_sigmoid, SigmoidParams};
use mathkit::rng::derive_rng;

/// Online sigmoid-fitting state for one instance.
///
/// # Examples
///
/// ```
/// use qross::strategy::ofs::OnlineFitting;
/// let mut ofs = OnlineFitting::new((0.01, 100.0), 7);
/// // Feed observations straddling the slope.
/// ofs.observe(0.1, 0.0);
/// ofs.observe(1.0, 0.4);
/// ofs.observe(10.0, 1.0);
/// let a = ofs.next_candidate();
/// assert!((0.01..=100.0).contains(&a));
/// ```
#[derive(Debug)]
pub struct OnlineFitting {
    domain: (f64, f64),
    history: Vec<(f64, f64)>,
    rng: StdRng,
    /// clamp for the fitted slope region (matches the `0 < S < 1`
    /// condition at the resolution a solver batch can distinguish)
    eps: f64,
}

impl OnlineFitting {
    /// Creates the strategy for one instance over the `A` domain.
    ///
    /// # Panics
    ///
    /// Panics on an invalid domain.
    pub fn new(domain: (f64, f64), seed: u64) -> Self {
        assert!(
            domain.0 > 0.0 && domain.0 < domain.1,
            "invalid A domain [{}, {}]",
            domain.0,
            domain.1
        );
        OnlineFitting {
            domain,
            history: Vec::new(),
            rng: derive_rng(seed, 0x0F5),
            eps: 0.02,
        }
    }

    /// Records a solver-measured `(A, Pf)` pair (Algorithm 1 line 6 — the
    /// offline trials of the composed strategy are fed here too).
    ///
    /// # Panics
    ///
    /// Panics if `pf` is outside `[0, 1]` or `a` is not positive.
    pub fn observe(&mut self, a: f64, pf: f64) {
        assert!(a > 0.0 && a.is_finite(), "invalid A {a}");
        assert!((0.0..=1.0).contains(&pf), "Pf must be in [0, 1], got {pf}");
        self.history.push((a, pf));
    }

    /// Observed history.
    pub fn history(&self) -> &[(f64, f64)] {
        &self.history
    }

    /// Whether a `Pf = 0` observation (left bound) exists.
    pub fn has_left_bound(&self) -> bool {
        self.history.iter().any(|&(_, pf)| pf == 0.0)
    }

    /// Whether a `Pf = 1` observation (right bound) exists.
    pub fn has_right_bound(&self) -> bool {
        self.history.iter().any(|&(_, pf)| pf == 1.0)
    }

    /// Algorithm 1 lines 1–2: the next probe value for a missing bound,
    /// or `None` when both bounds are present. Halves below the smallest
    /// probed `A` for the left bound, doubles above the largest for the
    /// right, clamped to the domain.
    pub fn bound_probe(&self) -> Option<f64> {
        if self.history.is_empty() {
            return Some((self.domain.0 * self.domain.1).sqrt());
        }
        if !self.has_left_bound() {
            let a_min = self
                .history
                .iter()
                .map(|&(a, _)| a)
                .fold(f64::INFINITY, f64::min);
            let probe = (a_min / 2.0).max(self.domain.0);
            if probe < a_min {
                return Some(probe);
            }
        }
        if !self.has_right_bound() {
            let a_max = self
                .history
                .iter()
                .map(|&(a, _)| a)
                .fold(f64::NEG_INFINITY, f64::max);
            let probe = (a_max * 2.0).min(self.domain.1);
            if probe > a_max {
                return Some(probe);
            }
        }
        None
    }

    /// Fits the sigmoid ansatz to the history (Algorithm 1 line 4).
    ///
    /// Returns `None` with fewer than two observations or a degenerate
    /// fit.
    pub fn fitted(&self) -> Option<SigmoidParams> {
        if self.history.len() < 2 {
            return None;
        }
        let a: Vec<f64> = self.history.iter().map(|&(a, _)| a).collect();
        let p: Vec<f64> = self.history.iter().map(|&(_, pf)| pf).collect();
        fit_sigmoid(&a, &p).ok().map(|f| f.params)
    }

    /// Algorithm 1 line 5: draws `A_next ~ U{A | 0 < S(A) < 1}` from the
    /// fitted sigmoid, clamped to the domain. Falls back to a bound probe
    /// or log-uniform exploration when no usable fit exists.
    pub fn next_candidate(&mut self) -> f64 {
        if let Some(params) = self.fitted() {
            if let Ok((lo, hi)) = params.slope_interval(self.eps) {
                let lo = lo.max(self.domain.0);
                let hi = hi.min(self.domain.1);
                if lo < hi {
                    return self.rng.gen_range(lo..hi);
                }
            }
        }
        if let Some(probe) = self.bound_probe() {
            return probe;
        }
        // Degenerate fallback: log-uniform over the domain. The domain is
        // strictly ordered, but its *log* can still collapse to a single
        // float (adjacent huge values), and `gen_range` panics on an empty
        // range — fall back to the geometric centre there.
        let (lo, hi) = (self.domain.0.ln(), self.domain.1.ln());
        if lo < hi {
            (self.rng.gen_range(lo..hi)).exp()
        } else {
            (0.5 * (lo + hi)).exp()
        }
    }

    /// Returns the best observed `A` by a caller-maintained criterion —
    /// Algorithm 1 line 9 returns "the best A among history of F", which
    /// the evaluation harness tracks via fitness; this helper returns the
    /// `A` whose observed `Pf` is closest to `target` as a surrogate-free
    /// tie-breaker.
    pub fn closest_to(&self, target: f64) -> Option<f64> {
        self.history
            .iter()
            .min_by(|x, y| {
                (x.1 - target)
                    .abs()
                    .partial_cmp(&(y.1 - target).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|&(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::special::sigmoid;

    /// Ground-truth sigmoid world: Pf(A) = σ(2·A − 6), midpoint at A = 3.
    fn world(a: f64) -> f64 {
        sigmoid(2.0 * a - 6.0)
    }

    #[test]
    fn bound_probing_walks_outward() {
        let mut ofs = OnlineFitting::new((0.01, 1000.0), 1);
        // Start somewhere on the slope.
        ofs.observe(3.0, world(3.0));
        // Drive the probe loop to completion.
        let mut guard = 0;
        while let Some(probe) = ofs.bound_probe() {
            let pf = world(probe);
            // Snap saturated values to exact bounds like a real batch does.
            let pf = if pf < 0.004 {
                0.0
            } else if pf > 0.996 {
                1.0
            } else {
                pf
            };
            ofs.observe(probe, pf);
            guard += 1;
            assert!(guard < 50, "probe loop did not terminate");
        }
        assert!(ofs.has_left_bound());
        assert!(ofs.has_right_bound());
    }

    #[test]
    fn fit_recovers_world_parameters() {
        let mut ofs = OnlineFitting::new((0.01, 100.0), 2);
        for k in 0..15 {
            let a = 0.5 + k as f64 * 0.4;
            ofs.observe(a, world(a));
        }
        let params = ofs.fitted().expect("fit succeeds");
        assert!((params.scale - 2.0).abs() < 0.2, "{params:?}");
        assert!((params.offset - 6.0).abs() < 0.6, "{params:?}");
    }

    #[test]
    fn candidates_land_on_slope() {
        let mut ofs = OnlineFitting::new((0.01, 100.0), 3);
        for k in 0..15 {
            let a = 0.5 + k as f64 * 0.4;
            ofs.observe(a, world(a));
        }
        for _ in 0..50 {
            let a = ofs.next_candidate();
            let pf = world(a);
            assert!(
                pf > 0.005 && pf < 0.995,
                "candidate A={a} off the slope (Pf={pf})"
            );
        }
    }

    #[test]
    fn empty_history_suggests_geometric_centre() {
        let ofs = OnlineFitting::new((0.01, 100.0), 4);
        let probe = ofs.bound_probe().unwrap();
        assert!((probe - 1.0).abs() < 1e-9); // sqrt(0.01 * 100)
    }

    #[test]
    fn closest_to_picks_nearest_pf() {
        let mut ofs = OnlineFitting::new((0.1, 10.0), 5);
        ofs.observe(1.0, 0.1);
        ofs.observe(2.0, 0.55);
        ofs.observe(4.0, 0.95);
        assert_eq!(ofs.closest_to(0.5), Some(2.0));
        assert_eq!(ofs.closest_to(1.0), Some(4.0));
    }

    #[test]
    fn next_candidate_always_in_domain() {
        let mut ofs = OnlineFitting::new((0.5, 2.0), 6);
        // Pathological history: all zeros (no slope visible).
        ofs.observe(0.5, 0.0);
        ofs.observe(1.0, 0.0);
        ofs.observe(2.0, 0.0);
        for _ in 0..30 {
            let a = ofs.next_candidate();
            assert!((0.5..=2.0).contains(&a), "escaped domain: {a}");
        }
    }

    #[test]
    fn collapsed_log_domain_never_panics() {
        // Valid (strictly ordered) domain whose logs round to the same
        // f64: ln(1e308) and ln(next representable) collapse because the
        // relative gap (~2e-16) is far below the ULP of 709.2.
        let lo: f64 = 1.0e308;
        let hi = f64::from_bits(lo.to_bits() + 1);
        assert!(lo < hi);
        assert_eq!(lo.ln(), hi.ln());
        let mut ofs = OnlineFitting::new((lo, hi), 11);
        // Saturate both bounds so bound_probe returns None and the
        // degenerate log-uniform fallback is reached.
        ofs.observe(lo, 0.0);
        ofs.observe(hi, 1.0);
        for _ in 0..20 {
            let a = ofs.next_candidate();
            assert!(a.is_finite() && a > 0.0, "bad candidate {a}");
        }
    }

    #[test]
    #[should_panic(expected = "Pf must be")]
    fn rejects_invalid_pf() {
        let mut ofs = OnlineFitting::new((0.1, 1.0), 0);
        ofs.observe(0.5, 1.5);
    }
}
