//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_filter_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`], and the [`proptest!`] macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! case's seed so it can be replayed), and generation runs on the
//! workspace's deterministic `rand` subset. Case count defaults to 64 and
//! can be raised via the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Marker returned by `prop_assume!` when a generated case is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// A generator of random values.
///
/// `generate` returns `None` when a filter rejects the candidate; the
/// runner retries with fresh randomness (bounded by the rejection budget).
pub trait Strategy: Sized {
    /// Generated value type.
    type Value;

    /// Draws one candidate value.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then runs the strategy `f` builds
    /// from it.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Rejects candidates failing `f` (the reason string is unused here).
    fn prop_filter<R, F: Fn(&Self::Value) -> bool>(self, _reason: R, f: F) -> Filter<Self, F> {
        Filter { inner: self, f }
    }

    /// Combined filter + map: rejects candidates for which `f` is `None`.
    fn prop_filter_map<R, U, F: Fn(Self::Value) -> Option<U>>(
        self,
        _reason: R,
        f: F,
    ) -> FilterMap<Self, F> {
        FilterMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut StdRng) -> Option<U::Value> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Rejected,
        Strategy,
    };
}

/// Number of cases per property (`PROPTEST_CASES` env override).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// cases generated per property
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: case_count() as u32,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `body` against `cases` generated values of `strategy` (macro
/// backend; not part of the public proptest API).
///
/// # Panics
///
/// Panics when the rejection budget is exhausted or `body` panics — the
/// panic message of a failing case includes the replay seed.
pub fn run_cases<S: Strategy>(
    name: &str,
    strategy: &S,
    body: impl FnMut(S::Value) -> Result<(), Rejected>,
) {
    run_cases_n(name, case_count(), strategy, body);
}

/// [`run_cases`] with an explicit case count (macro backend for
/// `#![proptest_config(..)]` blocks).
///
/// # Panics
///
/// See [`run_cases`].
pub fn run_cases_n<S: Strategy>(
    name: &str,
    cases: usize,
    strategy: &S,
    mut body: impl FnMut(S::Value) -> Result<(), Rejected>,
) {
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejections = 0usize;
    let budget = cases * 256;
    let mut case = 0usize;
    let mut attempt = 0u64;
    while case < cases {
        let case_seed = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        let mut rng = StdRng::seed_from_u64(case_seed);
        let rejected = match strategy.generate(&mut rng) {
            None => true,
            Some(value) => body(value).is_err(),
        };
        if rejected {
            rejections += 1;
            assert!(
                rejections <= budget,
                "property `{name}`: too many rejected cases ({rejections})"
            );
        } else {
            case += 1;
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)*);
                $crate::run_cases_n(
                    stringify!($name),
                    config.cases as usize,
                    &strategy,
                    |values| -> ::std::result::Result<(), $crate::Rejected> {
                        let ($($pat,)*) = values;
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strat),*) $body)*
        }
    };
}

/// Asserts inside a property body (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -1.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_links_sizes(
            (n, xs) in (1usize..8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u8..2, n))
            }),
        ) {
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|&b| b < 2));
        }

        #[test]
        fn filters_reject(pair in (0usize..5, 0usize..5).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert!(pair.0 != pair.1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn vec_fixed_size() {
        let strat = crate::collection::vec(0u8..2, 12);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let v = strat.generate(&mut rng).unwrap();
        assert_eq!(v.len(), 12);
    }

    #[test]
    fn deterministic_given_name() {
        let mut first = Vec::new();
        super::run_cases("det", &(0u64..1000), |v| {
            first.push(v);
            Ok(())
        });
        let mut second = Vec::new();
        super::run_cases("det", &(0u64..1000), |v| {
            second.push(v);
            Ok(())
        });
        assert_eq!(first, second);
    }
}
