//! Failure injection: the pipeline must degrade gracefully, not panic,
//! when components are starved or fed degenerate inputs.

use qross_repro::problems::{RelaxableProblem, TspEncoding, TspInstance};
use qross_repro::qross::collect::{collect_profile, observe, CollectConfig};
use qross_repro::qross::dataset::{DatasetRow, SurrogateDataset};
use qross_repro::qross::strategy::ofs::OnlineFitting;
use qross_repro::qross::strategy::{ProposalStrategy, TunerStrategy};
use qross_repro::qross::surrogate::{Surrogate, SurrogateConfig};
use qross_repro::qross::QrossError;
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_repro::solvers::Solver;
use qross_repro::tuners::{RandomSearch, Tuner};

fn tiny() -> TspEncoding {
    TspEncoding::preprocessed(TspInstance::from_coords(
        "tiny",
        &[(0.0, 0.0), (1.0, 0.2), (0.8, 1.1), (-0.2, 0.9)],
    ))
}

/// A solver given zero optimisation budget still returns well-formed
/// (random) samples, and the whole observation path tolerates it.
#[test]
fn zero_budget_solver_survives_pipeline_paths() {
    let dead = SimulatedAnnealer::new(SaConfig {
        sweeps: 0,
        ..Default::default()
    });
    let enc = tiny();
    let obs = observe(&enc, &dead, 1.0, 8, 1);
    assert!((0.0..=1.0).contains(&obs.pf));
    assert!(obs.e_std >= 0.0);
    // Profile collection with a hopeless solver terminates (bounded probes).
    let cfg = CollectConfig {
        batch: 4,
        sweep_points: 4,
        ..Default::default()
    };
    let profile = collect_profile(&enc, &dead, &cfg, 2);
    assert!(profile.len() >= 4);
}

/// An all-infeasible regime (absurdly low A bound) yields Pf = 0 rows;
/// the surrogate still trains (it learns "always infeasible") and MFS
/// correctly reports NoCandidate instead of proposing garbage.
#[test]
fn all_infeasible_regime_yields_no_candidate() {
    let mut ds = SurrogateDataset::new(1);
    for g in 0..6 {
        for k in 0..8 {
            ds.push(DatasetRow {
                features: vec![g as f64],
                a: 0.01 * (k + 1) as f64,
                pf: 0.0,
                e_avg: 1.0 + k as f64,
                e_std: 0.3,
            });
        }
    }
    let cfg = SurrogateConfig {
        hidden: 8,
        epochs: 300,
        val_fraction: 0.0,
        ..Default::default()
    };
    let (sur, _) = Surrogate::train(&ds, &cfg).unwrap();
    let result = qross_repro::qross::strategy::mfs::propose(&sur, &[2.0], (0.01, 0.08), 16);
    assert!(
        matches!(result, Err(QrossError::NoCandidate { .. })),
        "MFS must refuse when Pf is zero everywhere, got {result:?}"
    );
}

/// OFS fed only saturated observations (all Pf = 1) keeps proposing
/// in-domain candidates and never panics.
#[test]
fn ofs_saturated_history_keeps_probing() {
    let mut ofs = OnlineFitting::new((0.1, 50.0), 9);
    for k in 0..6 {
        ofs.observe(10.0 + k as f64, 1.0);
    }
    for _ in 0..20 {
        let a = ofs.next_candidate();
        assert!((0.1..=50.0).contains(&a));
        // keep it saturated — the strategy must keep walking left
        ofs.observe(a, 1.0);
    }
    // The bound probe must have pushed towards the left boundary.
    assert!(ofs.history().iter().any(|&(a, _)| a < 1.0));
}

/// Tuner strategies encode infeasible outcomes as the finite fallback —
/// a full run with a solver that never finds feasible solutions works.
#[test]
fn tuner_strategy_with_never_feasible_solver() {
    let enc = tiny();
    // A=0.0001-bounded search: essentially always infeasible.
    let dead = SimulatedAnnealer::new(SaConfig {
        sweeps: 16,
        ..Default::default()
    });
    let mut strat = TunerStrategy::new(RandomSearch::new(1e-4, 1e-3, 3), 999.0);
    for t in 0..6 {
        let a = strat.propose(t);
        let obs = observe(&enc, &dead, a, 8, 10 + t as u64);
        strat.observe(a, &obs);
    }
    assert_eq!(strat.tuner().observations().len(), 6);
    assert!(strat
        .tuner()
        .observations()
        .iter()
        .all(|o| o.y == 999.0 || o.y.is_finite()));
}

/// Degenerate instances: all-equal coordinates produce zero distances —
/// the encoding still builds, and solvers return *feasible* tours (every
/// permutation is optimal).
#[test]
fn degenerate_all_equal_instance() {
    let inst = TspInstance::from_coords("dup", &[(1.0, 1.0); 4]);
    let enc = TspEncoding::new(inst); // preprocessing would divide by 0 mean
    let s = SimulatedAnnealer::new(SaConfig {
        sweeps: 64,
        ..Default::default()
    });
    let qubo = enc.to_qubo(1.0);
    let set = s.sample(&qubo, 8, 4);
    let best = set.best_feasible(|x| enc.is_feasible(x));
    assert!(
        best.is_some(),
        "all-zero-distance instance must be solvable"
    );
    assert_eq!(enc.fitness(&best.unwrap().assignment), Some(0.0));
}

/// Surrogate training diverges cleanly (error, not NaN propagation) under
/// an absurd learning rate.
#[test]
fn surrogate_divergence_is_an_error() {
    let mut ds = SurrogateDataset::new(1);
    for k in 0..30 {
        ds.push(DatasetRow {
            features: vec![k as f64 * 100.0],
            a: 1.0 + k as f64,
            pf: (k % 2) as f64,
            e_avg: 1e6 * k as f64,
            e_std: 1.0,
        });
    }
    let cfg = SurrogateConfig {
        hidden: 8,
        epochs: 400,
        learning_rate: 1e9,
        val_fraction: 0.0,
        ..Default::default()
    };
    match Surrogate::train(&ds, &cfg) {
        Err(QrossError::TrainingDiverged) => {}
        Ok(_) => {} // extreme clipping by Huber/BCE may keep it finite
        Err(other) => panic!("unexpected error kind: {other}"),
    }
}
