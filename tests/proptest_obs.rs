//! Property-based tests for the observability histograms: quantile
//! estimates over the log₂-bucketed [`obs::Histogram`] must be
//! monotone in the quantile (`q1 <= q2` implies `quantile(q1) <=
//! quantile(q2)`), bounded by the recorded extremes' bucket spans, and
//! stable under recording order and shard interleaving — arbitrary
//! value mixes, including the degenerate single-value and
//! all-identical cases.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Monotonicity: walking q from 0 to 1 never walks the estimate
    /// backwards, for arbitrary recorded values and arbitrary q grids.
    #[test]
    fn quantile_is_monotone_in_q(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..200),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..20),
    ) {
        let reg = obs::Registry::new();
        let hist = reg.histogram("prop_ns", "property histogram");
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let estimates: Vec<f64> = qs
            .iter()
            .map(|&q| snap.quantile(q).expect("non-empty histogram"))
            .collect();
        for pair in estimates.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "quantile went backwards: {} -> {} over qs {:?}",
                pair[0],
                pair[1],
                qs,
            );
        }
    }

    /// Every estimate stays inside the bucket span of the recorded
    /// extremes: at least the minimum's bucket lower bound, at most
    /// the maximum's bucket upper bound.
    #[test]
    fn quantile_respects_recorded_extremes(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let reg = obs::Registry::new();
        let hist = reg.histogram("prop_ns", "property histogram");
        for &v in &values {
            hist.record(v);
        }
        let estimate = hist.snapshot().quantile(q).expect("non-empty histogram");
        let min_bucket = obs::Histogram::bucket_of(*values.iter().min().expect("non-empty"));
        let max_bucket = obs::Histogram::bucket_of(*values.iter().max().expect("non-empty"));
        let lower = if min_bucket == 0 { 0.0 } else { (min_bucket as f64).exp2() };
        let upper = ((max_bucket + 1) as f64).exp2();
        prop_assert!(
            estimate >= lower && estimate <= upper,
            "quantile({q}) = {estimate} escaped bucket span [{lower}, {upper}]"
        );
    }

    /// Recording order is irrelevant: a histogram is a pure multiset
    /// reduction, so any permutation (here: reversal, plus a
    /// two-handle interleave simulating shards) snapshots identically.
    #[test]
    fn order_and_interleaving_invariance(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..100),
    ) {
        let forward = obs::Registry::new();
        let hist_f = forward.histogram("prop_ns", "property histogram");
        for &v in &values {
            hist_f.record(v);
        }
        let backward = obs::Registry::new();
        let hist_b = backward.histogram("prop_ns", "property histogram");
        // Same name → same metric: two handles feed one histogram's
        // shards, alternating, in reverse order.
        let hist_b2 = backward.histogram("prop_ns", "property histogram");
        for (k, &v) in values.iter().rev().enumerate() {
            if k % 2 == 0 { hist_b.record(v) } else { hist_b2.record(v) }
        }
        let (a, b) = (hist_f.snapshot(), hist_b.snapshot());
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.sum, b.sum);
        prop_assert_eq!(a.buckets, b.buckets);
    }
}
