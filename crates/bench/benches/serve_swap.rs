//! Criterion bench for the continual-learning hot-swap path:
//!
//! * **swap latency** — one full retrain/checkpoint/swap cycle
//!   (`refresh().wait()`) at small and moderate fine-tune budgets; this
//!   is the cost an operator pays per refresh, all of it off the predict
//!   path;
//! * **predict p50 during continuous swapping** — single-prediction
//!   latency through an engine whose trainer thread is swapping
//!   generations as fast as it can, vs the same engine idle. The delta
//!   is the *entire* interference of the online loop with the serving
//!   hot path (slot lock + generation-keyed cache); the swap itself is a
//!   pointer exchange.
//!
//! The setup asserts post-swap predictions equal a fresh load of the
//! swap's checkpoint bit-for-bit before any timing runs, so a hot-swap
//! regression fails the bench smoke step rather than producing
//! fast-but-wrong numbers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use neural::network::MlpBuilder;
use qross::dataset::Scalers;
use qross::online::{FeedbackRecord, OnlineConfig, SurrogateCheckpoint};
use qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross::surrogate::{Surrogate, SurrogateState};
use qross_store::Artifact;

const FEAT_DIM: usize = 24;

/// Paper-architecture surrogate (24 features + ln A, 64-wide heads).
fn sample_surrogate() -> Surrogate {
    let zscore = |m: f64, s: f64| mathkit::stats::ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(1)
            .sigmoid()
            .build(7)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(2)
            .build(8)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM).map(|c| zscore(c as f64 * 0.1, 1.5)).collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(10.0, 4.0),
            e_std: zscore(1.0, 0.3),
        },
    };
    Surrogate::from_state(state).expect("consistent state")
}

fn feedback(k: usize) -> FeedbackRecord {
    FeedbackRecord {
        features: (0..FEAT_DIM)
            .map(|c| ((k * 31 + c * 17) % 97) as f64 / 97.0 - 0.5)
            .collect(),
        a: 0.05 + (k % 13) as f64 * 0.4,
        observed_pf: ((k * 7) % 11) as f64 / 10.0,
        observed_e_avg: 9.0 + (k % 5) as f64,
        observed_e_std: 0.5 + (k % 3) as f64 * 0.3,
        instance_tag: format!("b{k}"),
        seed: k as u64,
    }
}

fn online_engine(epochs: usize, checkpoint_dir: Option<std::path::PathBuf>) -> ServeEngine {
    ServeEngine::with_online(
        ServeModel::Surrogate(Arc::new(sample_surrogate())),
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
        OnlineConfig {
            refresh_after: 0, // bench drives refreshes explicitly
            buffer_capacity: 64,
            recent_capacity: 32,
            feedback_weight: 2,
            epochs,
            learning_rate: 1e-3,
            batch_size: 16,
            max_pending_retrains: 2,
            seed: 11,
            checkpoint_dir,
        },
        None,
    )
    .expect("online engine")
}

fn bench_serve_swap(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("qross_bench_swap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Correctness gate before any timing: a swap's served predictions
    // must equal a fresh load of its checkpoint, exactly.
    {
        let eng = online_engine(4, Some(dir.clone()));
        for k in 0..16 {
            eng.submit_feedback(feedback(k)).expect("feedback");
        }
        let generation = eng.refresh().expect("refresh").wait().expect("swap");
        assert_eq!(generation, 1);
        let ckpt = SurrogateCheckpoint::load(dir.join("ckpt-g000001.qross")).expect("checkpoint");
        let reloaded = Surrogate::from_state(ckpt.state).expect("state");
        for k in 0..32 {
            let fb = feedback(k);
            let served = eng.predict(&fb.features, fb.a).expect("serve");
            let direct = reloaded.predict(&fb.features, fb.a);
            assert_eq!(served.pf.to_bits(), direct.pf.to_bits());
            assert_eq!(served.e_avg.to_bits(), direct.e_avg.to_bits());
            assert_eq!(served.e_std.to_bits(), direct.e_std.to_bits());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Swap latency: one retrain/checkpoint/swap cycle, end to end.
    for epochs in [2usize, 16] {
        let eng = online_engine(epochs, Some(dir.clone()));
        for k in 0..16 {
            eng.submit_feedback(feedback(k)).expect("feedback");
        }
        c.bench_function(&format!("serve_swap/refresh_epochs{epochs}"), |b| {
            b.iter(|| eng.refresh().expect("refresh").wait().expect("swap"));
        });
        drop(eng);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Predict latency while the model is NOT being swapped (baseline)…
    let eng = online_engine(2, None);
    for k in 0..16 {
        eng.submit_feedback(feedback(k)).expect("feedback");
    }
    let probe = feedback(3);
    c.bench_function("serve_swap/predict_idle", |b| {
        b.iter(|| eng.predict(&probe.features, probe.a).expect("serve"));
    });

    // …and while a background thread swaps continuously. The spread
    // between these two is the online loop's entire predict-path cost.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (eng_ref, stop_ref) = (&eng, &stop);
        scope.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                let _ = eng_ref.refresh().and_then(|p| p.wait());
            }
        });
        c.bench_function("serve_swap/predict_during_continuous_swaps", |b| {
            b.iter(|| eng.predict(&probe.features, probe.a).expect("serve"));
        });
        // In `--test` mode the measurement window can be shorter than one
        // retrain cycle (or even the swap thread's spawn latency), so keep
        // predict traffic flowing until a swap actually lands — the assert
        // below must gate on the engine, not on the scheduler.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while eng.stats().refreshes == 0 && std::time::Instant::now() < deadline {
            eng.predict(&probe.features, probe.a).expect("serve");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let swapped = eng.stats().refreshes;
    assert!(swapped > 0, "no swap landed during the contention bench");
    eprintln!("serve_swap: {swapped} swaps landed during the contention run");
}

criterion_group!(benches, bench_serve_swap);
criterion_main!(benches);
