//! One-dimensional truncated Parzen (Gaussian-mixture) estimators.
//!
//! These back the Tree-structured Parzen Estimator baseline tuner: TPE
//! models the "good" and "bad" observation sets with Parzen mixtures over
//! the bounded search domain and proposes the candidate maximising the
//! density ratio `l(x)/g(x)` (Bergstra et al., 2011).

use rand::Rng;

use crate::special::normal_cdf;
use crate::{MathError, Result};

/// A Parzen estimator over a bounded interval `[lo, hi]`.
///
/// Each observation contributes a Gaussian kernel truncated to the domain;
/// a uniform "prior" kernel over the full domain is mixed in, as in the
/// reference TPE implementation, so the density never vanishes.
///
/// # Examples
///
/// ```
/// use mathkit::kde::ParzenEstimator;
/// let est = ParzenEstimator::fit(&[2.0, 2.5, 3.0], 0.0, 10.0)?;
/// assert!(est.pdf(2.5) > est.pdf(9.0));
/// # Ok::<(), mathkit::MathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParzenEstimator {
    lo: f64,
    hi: f64,
    centers: Vec<f64>,
    bandwidths: Vec<f64>,
    /// weight of the uniform prior component (the remaining mass is split
    /// evenly across the observation kernels)
    prior_weight: f64,
}

impl ParzenEstimator {
    /// Fits an estimator to `observations` on the domain `[lo, hi]`.
    ///
    /// Bandwidths follow the heuristic of the reference implementation:
    /// for each (sorted) center, the distance to its farther neighbour,
    /// clamped to `[domain/min_frac, domain]` with `min_frac = 100`.
    ///
    /// # Errors
    ///
    /// * [`MathError::Domain`] if `lo >= hi`.
    /// * [`MathError::EmptyInput`] if `observations` is empty.
    pub fn fit(observations: &[f64], lo: f64, hi: f64) -> Result<Self> {
        if lo >= hi {
            return Err(MathError::Domain {
                message: format!("parzen domain requires lo < hi, got [{lo}, {hi}]"),
            });
        }
        if observations.is_empty() {
            return Err(MathError::EmptyInput);
        }
        let mut centers: Vec<f64> = observations.iter().map(|&x| x.clamp(lo, hi)).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
        let span = hi - lo;
        let min_bw = span / 100.0;
        let n = centers.len();
        let mut bandwidths = Vec::with_capacity(n);
        for i in 0..n {
            let left = if i == 0 {
                centers[i] - lo
            } else {
                centers[i] - centers[i - 1]
            };
            let right = if i + 1 == n {
                hi - centers[i]
            } else {
                centers[i + 1] - centers[i]
            };
            bandwidths.push(left.max(right).clamp(min_bw, span));
        }
        Ok(ParzenEstimator {
            lo,
            hi,
            centers,
            bandwidths,
            prior_weight: 1.0 / (n as f64 + 1.0),
        })
    }

    /// Probability density at `x` (zero outside the domain).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        let span = self.hi - self.lo;
        let n = self.centers.len() as f64;
        let kernel_weight = (1.0 - self.prior_weight) / n;
        let mut acc = self.prior_weight / span;
        for (&c, &bw) in self.centers.iter().zip(self.bandwidths.iter()) {
            // Truncated Gaussian: renormalise by the in-domain mass.
            let mass = normal_cdf(self.hi, c, bw) - normal_cdf(self.lo, c, bw);
            if mass <= 0.0 {
                continue;
            }
            let z = (x - c) / bw;
            let g = (-0.5 * z * z).exp() / (bw * (2.0 * std::f64::consts::PI).sqrt());
            acc += kernel_weight * g / mass;
        }
        acc
    }

    /// Natural log of [`ParzenEstimator::pdf`], floored to avoid `-inf`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        self.pdf(x).max(1e-300).ln()
    }

    /// Draws one sample: picks the uniform prior with probability
    /// `prior_weight`, otherwise a random kernel, then samples the
    /// truncated Gaussian by rejection (falling back to clamping after 64
    /// rejections, which is vanishingly rare for in-domain centers).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.prior_weight {
            return rng.gen_range(self.lo..self.hi);
        }
        let k = rng.gen_range(0..self.centers.len());
        let c = self.centers[k];
        let bw = self.bandwidths[k];
        for _ in 0..64 {
            // Box–Muller normal draw.
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = c + bw * z;
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        c.clamp(self.lo, self.hi)
    }

    /// Domain lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Domain upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of observation kernels.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Whether the estimator holds no kernels (never true for a
    /// successfully-constructed estimator).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pdf_peaks_near_observations() {
        let est = ParzenEstimator::fit(&[3.0, 3.2, 2.8], 0.0, 10.0).unwrap();
        assert!(est.pdf(3.0) > est.pdf(8.0));
        assert!(est.pdf(3.0) > est.pdf(0.5));
    }

    #[test]
    fn pdf_zero_outside_domain() {
        let est = ParzenEstimator::fit(&[5.0], 0.0, 10.0).unwrap();
        assert_eq!(est.pdf(-1.0), 0.0);
        assert_eq!(est.pdf(11.0), 0.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let est = ParzenEstimator::fit(&[2.0, 7.0, 7.5], 0.0, 10.0).unwrap();
        let mut acc = 0.0;
        let steps = 20_000;
        for i in 0..steps {
            let x = 10.0 * (i as f64 + 0.5) / steps as f64;
            acc += est.pdf(x) * (10.0 / steps as f64);
        }
        assert!((acc - 1.0).abs() < 1e-3, "mass = {acc}");
    }

    #[test]
    fn samples_stay_in_domain() {
        let est = ParzenEstimator::fit(&[1.0, 9.0], 0.0, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = est.sample(&mut rng);
            assert!((0.0..=10.0).contains(&x));
        }
    }

    #[test]
    fn samples_concentrate_near_kernels() {
        let est = ParzenEstimator::fit(&[2.0, 2.1, 1.9, 2.05], 0.0, 100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut near = 0;
        let trials = 2000;
        for _ in 0..trials {
            let x = est.sample(&mut rng);
            if (x - 2.0).abs() < 10.0 {
                near += 1;
            }
        }
        // 4/5 of the mass is kernels near 2.0; allow generous slack.
        assert!(near as f64 > 0.6 * trials as f64, "near = {near}");
    }

    #[test]
    fn observations_outside_domain_are_clamped() {
        let est = ParzenEstimator::fit(&[-5.0, 15.0], 0.0, 10.0).unwrap();
        assert_eq!(est.len(), 2);
        assert!(est.pdf(0.1) > 0.0);
        assert!(est.pdf(9.9) > 0.0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            ParzenEstimator::fit(&[], 0.0, 1.0),
            Err(MathError::EmptyInput)
        ));
        assert!(matches!(
            ParzenEstimator::fit(&[0.5], 1.0, 0.0),
            Err(MathError::Domain { .. })
        ));
    }

    #[test]
    fn log_pdf_finite_everywhere_in_domain() {
        let est = ParzenEstimator::fit(&[5.0], 0.0, 10.0).unwrap();
        for i in 0..=100 {
            let x = i as f64 / 10.0;
            assert!(est.log_pdf(x).is_finite());
        }
    }
}
