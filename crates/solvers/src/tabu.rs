//! Single-flip tabu search.
//!
//! The qbsolv hybrid (Booth et al. 2017) uses tabu search as its classical
//! subsolver; this implementation follows the standard scheme: at each
//! iteration the best non-tabu flip is applied (even if uphill), the
//! flipped variable becomes tabu for `tenure` iterations, and the
//! *aspiration criterion* overrides tabu status for moves that would beat
//! the global incumbent. Search stops after `max_iters` iterations or
//! `stall_limit` iterations without improving the incumbent.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use qubo::{QuboModel, QuboState};

use crate::parallel::parallel_map_with;
use crate::sample::{Sample, SampleSet};
use crate::Solver;

/// Configuration for [`TabuSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// hard iteration cap per replica
    pub max_iters: usize,
    /// stop after this many non-improving iterations
    pub stall_limit: usize,
    /// tabu tenure; `None` uses the common `min(20, n/4) + 1` heuristic
    pub tenure: Option<usize>,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            max_iters: 2000,
            stall_limit: 300,
            tenure: None,
        }
    }
}

/// Best-improvement tabu search with aspiration.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{tabu::TabuSearch, Solver};
/// let mut b = QuboBuilder::new(3);
/// b.add_linear(1, -1.0);
/// let model = b.build();
/// let set = TabuSearch::default().sample(&model, 2, 5);
/// assert_eq!(set.best().unwrap().energy, -1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TabuSearch {
    config: TabuConfig,
}

impl TabuSearch {
    /// Creates a solver with the given configuration.
    pub fn new(config: TabuConfig) -> Self {
        TabuSearch { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TabuConfig {
        &self.config
    }

    fn tenure_for(&self, n: usize) -> usize {
        self.config.tenure.unwrap_or_else(|| (n / 4).min(20) + 1)
    }

    /// Runs tabu search from the given start state (used directly by
    /// qbsolv for sub-QUBO refinement). Returns the best assignment found
    /// and its energy.
    pub fn improve(&self, model: &QuboModel, start: Vec<u8>, seed: u64) -> Sample {
        if model.num_vars() == 0 {
            return Sample {
                assignment: start,
                energy: model.offset(),
            };
        }
        let mut state = QuboState::new(model, start);
        let mut best_x = Vec::new();
        let mut tabu_until = Vec::new();
        self.search(&mut state, &mut best_x, &mut tabu_until, seed)
    }

    /// Core loop on an already-initialised state (scratch-reuse entry
    /// point). The iteration scans the maintained flip-delta vector (O(1)
    /// per candidate), commits one O(degree) flip, and tracks the incumbent
    /// from the cached energy — no full `model.energy()` inside the loop.
    fn search(
        &self,
        state: &mut QuboState<'_>,
        best_x: &mut Vec<u8>,
        tabu_until: &mut Vec<usize>,
        seed: u64,
    ) -> Sample {
        let n = state.model().num_vars();
        let mut rng = derive_rng(seed, 0x7AB);
        let tenure = self.tenure_for(n);
        best_x.clear();
        best_x.extend_from_slice(state.assignment());
        let mut best_e = state.energy();
        tabu_until.clear();
        tabu_until.resize(n, 0usize);
        let mut stall = 0usize;
        let mut iters_done = 0usize;
        for iter in 1..=self.config.max_iters {
            iters_done = iter;
            // Best admissible flip: non-tabu, or tabu-but-aspiring.
            let mut chosen: Option<(usize, f64)> = None;
            let mut ties = 0u32;
            let current_e = state.energy();
            for (i, &delta) in state.flip_deltas().iter().enumerate() {
                let aspires = current_e + delta < best_e - 1e-12;
                if tabu_until[i] > iter && !aspires {
                    continue;
                }
                match chosen {
                    None => {
                        chosen = Some((i, delta));
                        ties = 1;
                    }
                    Some((_, cur)) => {
                        if delta < cur - 1e-15 {
                            chosen = Some((i, delta));
                            ties = 1;
                        } else if (delta - cur).abs() <= 1e-15 {
                            // Reservoir-style random tie-breaking keeps
                            // replicas from marching in lockstep.
                            ties += 1;
                            if rng.gen_ratio(1, ties) {
                                chosen = Some((i, delta));
                            }
                        }
                    }
                }
            }
            let Some((i, _)) = chosen else {
                break; // everything tabu (tiny n): bail out
            };
            state.flip(i);
            tabu_until[i] = iter + tenure;
            if state.energy() < best_e - 1e-12 {
                best_e = state.energy();
                best_x.copy_from_slice(state.assignment());
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.config.stall_limit {
                    break;
                }
            }
        }
        // Iteration count is adaptive (stall cutoff, all-tabu bail), so
        // the work is counted here where it's known: one iteration scans
        // all `n` maintained flip-deltas. Covers `improve()` too —
        // qbsolv's sub-QUBO refinements are real tabu sweeps.
        crate::metrics::record_sweeps("tabu", iters_done as u64, (iters_done * n) as u64);
        Sample {
            assignment: best_x.clone(),
            energy: best_e,
        }
    }
}

impl Solver for TabuSearch {
    fn name(&self) -> &str {
        "tabu"
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        let sw = obs::Stopwatch::start();
        let n = model.num_vars();
        if n == 0 {
            return SampleSet::from_samples(
                (0..batch)
                    .map(|_| Sample {
                        assignment: Vec::new(),
                        energy: model.offset(),
                    })
                    .collect(),
            );
        }
        let samples = parallel_map_with(
            batch,
            || (QuboState::new(model, vec![0; n]), Vec::new(), Vec::new()),
            |(state, best_x, tabu_until), replica| {
                let rs = mathkit::rng::derive_seed(seed, replica as u64);
                let mut rng = derive_rng(rs, 0x57A27);
                state.randomize(&mut rng);
                self.search(state, best_x, tabu_until, rs)
            },
        );
        let set = SampleSet::from_samples(samples);
        // Sweep/eval counters are bumped inside `search` (adaptive
        // iteration count); only the duration is recorded here.
        crate::metrics::record_sample("tabu", sw.elapsed_ns(), 0, 0);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::QuboBuilder;

    fn bumpy10() -> QuboModel {
        let mut b = QuboBuilder::new(10);
        for i in 0..10 {
            b.add_linear(i, ((i as f64) * 1.3).sin());
        }
        for i in 0..10 {
            for j in (i + 1)..10 {
                if (i + j) % 3 == 0 {
                    b.add_quadratic(i, j, ((i * j) as f64 * 0.7).cos());
                }
            }
        }
        b.build()
    }

    fn exact_minimum(model: &QuboModel) -> f64 {
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        for bits in 0..(1u32 << n) {
            let x: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            best = best.min(model.energy(&x));
        }
        best
    }

    #[test]
    fn reaches_ground_state() {
        let m = bumpy10();
        let truth = exact_minimum(&m);
        let set = TabuSearch::default().sample(&m, 8, 3);
        assert!((set.best().unwrap().energy - truth).abs() < 1e-9);
    }

    #[test]
    fn improve_never_worsens() {
        let m = bumpy10();
        let start = vec![0u8; 10];
        let e0 = m.energy(&start);
        let out = TabuSearch::default().improve(&m, start, 1);
        assert!(out.energy <= e0 + 1e-12);
        assert!((m.energy(&out.assignment) - out.energy).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = bumpy10();
        let t = TabuSearch::default();
        assert_eq!(t.sample(&m, 4, 77), t.sample(&m, 4, 77));
    }

    #[test]
    fn escapes_local_minimum_uphill() {
        // Two-well model where the greedy descent from [0,0] stops at the
        // local optimum; tabu's forced uphill moves must cross the barrier.
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, 3.0);
        b.add_linear(1, 3.0);
        b.add_quadratic(0, 1, -7.0);
        let m = b.build();
        let out = TabuSearch::default().improve(&m, vec![0, 0], 5);
        assert_eq!(out.energy, -1.0); // global optimum [1,1]
    }

    #[test]
    fn zero_iterations_returns_start() {
        let m = bumpy10();
        let cfg = TabuConfig {
            max_iters: 0,
            ..Default::default()
        };
        let start = vec![1u8; 10];
        let out = TabuSearch::new(cfg).improve(&m, start.clone(), 1);
        assert_eq!(out.assignment, start);
    }

    #[test]
    fn empty_model_ok() {
        let m = QuboBuilder::new(0).build();
        let out = TabuSearch::default().improve(&m, Vec::new(), 1);
        assert_eq!(out.energy, 0.0);
    }

    #[test]
    fn stall_limit_terminates_early() {
        let m = bumpy10();
        let cfg = TabuConfig {
            max_iters: 1_000_000,
            stall_limit: 5,
            tenure: Some(3),
        };
        // Must finish quickly despite the huge iteration cap.
        let out = TabuSearch::new(cfg).improve(&m, vec![0; 10], 2);
        assert!(out.energy.is_finite());
    }
}
