//! Exact enumeration solver for small models.
//!
//! Enumerates all `2^n` assignments; the ground-truth oracle used by tests
//! and by the tiny end-to-end experiment configurations. Refuses models
//! beyond [`ExhaustiveSolver::MAX_VARS`] variables.

use qubo::{QuboModel, QuboState};

use crate::sample::{Sample, SampleSet};
use crate::Solver;

/// Walks all `2^n` assignments in Gray-code order, calling `visit(bits, e)`
/// with the plain-binary index of each assignment and its energy.
///
/// Consecutive Gray codes differ in one bit, so each step is one O(degree)
/// incremental flip instead of an O(n + nnz) full evaluation — the
/// enumeration shares the same [`QuboState`] engine as the annealers.
///
/// Audited for redundant flip pairs: the walk applies exactly one `flip`
/// per visited assignment (`2^n - 1` flips total for `2^n` states) and
/// never un-flips to probe a neighbour — `flip_delta` already reports
/// every neighbour's energy change from the cached local fields, so a
/// flip/unflip round-trip would be pure waste and none exists.
fn enumerate_gray<F: FnMut(u32, f64)>(model: &QuboModel, mut visit: F) {
    /// Resync cadence: every 2^16 steps the energy *and* delta caches are
    /// rebuilt exactly, so rounding drift is bounded by what one 64k-flip
    /// window can accumulate (the level the `qubo` property tests certify)
    /// instead of growing over the whole 2^n walk. Costs at most 2^8 full
    /// rebuilds.
    const RESYNC_MASK: u64 = (1 << 16) - 1;
    let n = model.num_vars();
    let mut state = QuboState::new(model, vec![0; n]);
    visit(0, state.energy());
    let mut gray = 0u32;
    for k in 1..(1u64 << n) {
        let flip_bit = k.trailing_zeros() as usize;
        gray ^= 1 << flip_bit;
        state.flip(flip_bit);
        if k & RESYNC_MASK == 0 {
            state.resync();
        }
        visit(gray, state.energy());
    }
}

/// Expands a plain-binary assignment index into a bit vector.
fn bits_to_assignment(bits: u32, n: usize) -> Vec<u8> {
    (0..n).map(|k| ((bits >> k) & 1) as u8).collect()
}

/// Exact brute-force solver (≤ 24 variables).
///
/// `sample` returns the `batch` *lowest-energy distinct assignments* in
/// ascending order, so `best()` is the exact ground state and the "batch"
/// mimics a perfectly-converged stochastic solver.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{exhaustive::ExhaustiveSolver, Solver};
/// let mut b = QuboBuilder::new(2);
/// b.add_linear(0, -1.0);
/// b.add_linear(1, 2.0);
/// let model = b.build();
/// let set = ExhaustiveSolver::new().sample(&model, 4, 0);
/// assert_eq!(set.best().unwrap().energy, -1.0);
/// assert_eq!(set.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSolver;

impl ExhaustiveSolver {
    /// Largest model size the solver will enumerate.
    pub const MAX_VARS: usize = 24;

    /// Creates the solver.
    pub fn new() -> Self {
        ExhaustiveSolver
    }

    /// Exact ground state of `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model exceeds [`ExhaustiveSolver::MAX_VARS`] variables.
    pub fn ground_state(&self, model: &QuboModel) -> Sample {
        let n = model.num_vars();
        assert!(
            n <= Self::MAX_VARS,
            "exhaustive enumeration limited to {} variables, got {n}",
            Self::MAX_VARS
        );
        let mut best_bits = 0u32;
        let mut best_e = f64::INFINITY;
        enumerate_gray(model, |bits, e| {
            if e < best_e {
                best_e = e;
                best_bits = bits;
            }
        });
        // Re-score the winner with a full evaluation so the reported
        // energy is free of incremental rounding accumulated over the walk.
        let assignment = bits_to_assignment(best_bits, n);
        let energy = model.energy(&assignment);
        Sample { assignment, energy }
    }
}

impl Solver for ExhaustiveSolver {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn sample(&self, model: &QuboModel, batch: usize, _seed: u64) -> SampleSet {
        let n = model.num_vars();
        assert!(
            n <= Self::MAX_VARS,
            "exhaustive enumeration limited to {} variables, got {n}",
            Self::MAX_VARS
        );
        if batch == 0 {
            return SampleSet::new();
        }
        // Keep the `batch` lowest-energy assignments in a sorted bounded
        // buffer. Binary insertion (O(log batch) search + one memmove)
        // replaces the previous re-sort on every accepted candidate;
        // inserting *after* equal energies reproduces the ordering the old
        // stable sort produced, so the output is unchanged.
        let mut keep: Vec<(f64, u32)> = Vec::with_capacity(batch + 1);
        enumerate_gray(model, |bits, e| {
            if keep.len() == batch {
                if e >= keep[batch - 1].0 {
                    return;
                }
                keep.pop();
            }
            let at = keep.partition_point(|p| p.0 <= e);
            keep.insert(at, (e, bits));
        });
        // Exact re-scoring of the survivors (cheap: `batch` evaluations),
        // then a final sort in case rounding reordered near-ties.
        let mut samples: Vec<Sample> = keep
            .into_iter()
            .map(|(_, bits)| {
                let assignment = bits_to_assignment(bits, n);
                let energy = model.energy(&assignment);
                Sample { assignment, energy }
            })
            .collect();
        samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        SampleSet::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::QuboBuilder;

    #[test]
    fn ground_state_known() {
        // E = -x0 + x1 - 2 x0 x1 → min at [1,1] = -1 + 1 - 2 = -2
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, -1.0);
        b.add_linear(1, 1.0);
        b.add_quadratic(0, 1, -2.0);
        let m = b.build();
        let g = ExhaustiveSolver::new().ground_state(&m);
        assert_eq!(g.assignment, vec![1, 1]);
        assert_eq!(g.energy, -2.0);
    }

    #[test]
    fn batch_is_k_lowest() {
        let mut b = QuboBuilder::new(3);
        b.add_linear(0, 1.0);
        b.add_linear(1, 2.0);
        b.add_linear(2, 4.0);
        let m = b.build();
        let set = ExhaustiveSolver::new().sample(&m, 3, 0);
        assert_eq!(set.energies(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_keep_first_seen_assignments() {
        // Two symmetric variables → energies {0, 1, 1, 2}. The bounded
        // buffer must keep the earlier-enumerated of the two energy-1
        // assignments when batch truncates the tie, matching the ordering
        // the former stable-sort implementation produced.
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, 1.0);
        b.add_linear(1, 1.0);
        let m = b.build();
        let set = ExhaustiveSolver::new().sample(&m, 2, 0);
        assert_eq!(set.energies(), vec![0.0, 1.0]);
        // Gray order visits 00, 01, 11, 10 → the kept tie is x0 = 1.
        assert_eq!(set.iter().nth(1).unwrap().assignment, vec![1, 0]);
    }

    #[test]
    fn batch_larger_than_space() {
        let m = QuboBuilder::new(1).build();
        let set = ExhaustiveSolver::new().sample(&m, 10, 0);
        assert_eq!(set.len(), 2); // only two assignments exist
    }

    #[test]
    fn zero_batch() {
        let m = QuboBuilder::new(2).build();
        assert!(ExhaustiveSolver::new().sample(&m, 0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn too_large_model_rejected() {
        let m = QuboBuilder::new(25).build();
        let _ = ExhaustiveSolver::new().ground_state(&m);
    }
}
