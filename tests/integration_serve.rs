//! Integration tests for the serving subsystem: the [`ServeEngine`]
//! under concurrent load, and the NDJSON protocol end to end (valid
//! traffic, hostile traffic, response ordering).
//!
//! The model is a hand-built bundle (seed-derived surrogate weights, the
//! real 24-feature statistical featurizer, no training) so the suite runs
//! in milliseconds while exercising exactly the code paths `qross-serve`
//! runs in production: engine micro-batching + caching, TSPLIB ingest,
//! featurisation, offline strategy planning.

use std::io::Cursor;
use std::sync::Arc;

use bench::protocol::{serve_connection, Response};
use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::pipeline::{PipelineConfig, TrainedQross};
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross_repro::qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross_repro::qross::StatisticalFeaturizer;

/// Feature width of [`StatisticalFeaturizer`].
const FEAT_DIM: usize = 24;

/// Seed-derived surrogate over the statistical featurizer's 24 features.
fn test_surrogate() -> Surrogate {
    let zscore = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    Surrogate::from_state(state).expect("consistent state")
}

/// A serve-ready bundle around [`test_surrogate`] — every public field of
/// [`TrainedQross`], no pipeline run required.
fn test_bundle() -> Arc<TrainedQross> {
    Arc::new(TrainedQross {
        surrogate: test_surrogate(),
        featurizer: Box::new(StatisticalFeaturizer::new()),
        train_encodings: Vec::new(),
        test_encodings: Vec::new(),
        dataset_len: 0,
        report: TrainReport::default(),
        config: PipelineConfig::micro(),
    })
}

fn engine(config: ServeConfig) -> ServeEngine {
    ServeEngine::new(ServeModel::Bundle(test_bundle()), config)
}

/// Deterministic query `k`: 24 features plus a positive `A`.
fn query(k: usize) -> (Vec<f64>, f64) {
    let features: Vec<f64> = (0..FEAT_DIM)
        .map(|c| ((k * 13 + c * 7) % 29) as f64 / 7.0 - 2.0)
        .collect();
    let a = 0.1 + (k % 11) as f64 * 0.45;
    (features, a)
}

#[test]
fn hammered_engine_is_bit_identical_to_direct_predict() {
    let reference = test_surrogate();
    let eng = engine(ServeConfig {
        workers: 4,
        max_batch_rows: 16,
        ..Default::default()
    });
    let (eng, reference) = (&eng, &reference);
    std::thread::scope(|scope| {
        for t in 0..8usize {
            scope.spawn(move || {
                for i in 0..150usize {
                    // Overlapping key space across threads: fresh
                    // computes, cache hits and in-flight duplicates all
                    // occur; every answer must still be exact.
                    let (f, a) = query((t * 37 + i) % 60);
                    let served = eng.predict(&f, a).expect("serve");
                    let direct = reference.predict(&f, a);
                    assert_eq!(served.pf.to_bits(), direct.pf.to_bits());
                    assert_eq!(served.e_avg.to_bits(), direct.e_avg.to_bits());
                    assert_eq!(served.e_std.to_bits(), direct.e_std.to_bits());
                }
            });
        }
    });
    let stats = eng.stats();
    assert_eq!(stats.requests, 8 * 150);
    assert!(stats.cache_hits > 0, "no cache hits: {stats:?}");
    assert!(stats.rejected == 0, "spurious backpressure: {stats:?}");
}

/// Runs a full NDJSON session in memory and parses the response lines.
fn roundtrip(eng: &ServeEngine, requests: &str) -> Vec<Response> {
    let mut out: Vec<u8> = Vec::new();
    serve_connection(eng, Cursor::new(requests.to_string()), &mut out).expect("session");
    let text = String::from_utf8(out).expect("utf-8 responses");
    text.lines()
        .map(|line| serde_json::from_str::<Response>(line).expect("parseable response"))
        .collect()
}

#[test]
fn ndjson_roundtrip_serves_and_rejects() {
    let reference = test_surrogate();
    let eng = engine(ServeConfig::default());
    let (features, a) = query(3);
    let feat_json = serde_json::to_string(&features).expect("json");
    let tsplib = "NAME: up\\nTYPE: TSP\\nDIMENSION: 4\\nEDGE_WEIGHT_TYPE: EXPLICIT\\n\
                  EDGE_WEIGHT_FORMAT: UPPER_ROW\\nEDGE_WEIGHT_SECTION\\n1 2 3\\n4 5\\n6\\nEOF\\n";
    let truncated = "NAME: bad\\nTYPE: TSP\\nDIMENSION: 4\\nEDGE_WEIGHT_TYPE: EXPLICIT\\n\
                     EDGE_WEIGHT_FORMAT: UPPER_ROW\\nEDGE_WEIGHT_SECTION\\n1 2\\nEOF\\n";
    let requests = format!(
        concat!(
            "{{\"id\": 1, \"op\": \"info\"}}\n",
            "{{\"id\": 2, \"op\": \"predict\", \"features\": {feat}, \"a\": {a}}}\n",
            "{{\"id\": 3, \"op\": \"predict\", \"features\": {feat}, \"a_values\": [0.5, 1.0, 2.0]}}\n",
            "this is not json\n",
            "{{\"id\": 4, \"op\": \"warp\"}}\n",
            "{{\"id\": 5, \"op\": \"predict\", \"features\": [1.0], \"a\": 1.0}}\n",
            "{{\"id\": 6, \"op\": \"predict\", \"features\": {feat}, \"a\": -2.0}}\n",
            "{{\"id\": 7, \"op\": \"predict\", \"features\": {feat}}}\n",
            "\n",
            "{{\"id\": 8, \"op\": \"tsp\", \"tsplib\": \"{tsplib}\", \"a\": 1.0}}\n",
            "{{\"id\": 9, \"op\": \"tsp\", \"tsplib\": \"{truncated}\"}}\n",
        ),
        feat = feat_json,
        a = a,
        tsplib = tsplib,
        truncated = truncated,
    );
    let responses = roundtrip(&eng, &requests);
    // One response per non-blank request line, in request order.
    assert_eq!(responses.len(), 10);
    let ids: Vec<Option<u64>> = responses.iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        vec![
            Some(1),
            Some(2),
            Some(3),
            None, // unparseable line cannot echo an id
            Some(4),
            Some(5),
            Some(6),
            Some(7),
            Some(8),
            Some(9),
        ]
    );

    // info
    let info = responses[0].info.as_ref().expect("info payload");
    assert!(responses[0].ok);
    assert_eq!(info.kind, "bundle");
    assert_eq!(info.feature_dim, FEAT_DIM);

    // single predict: exact bits of a direct prediction
    let direct = reference.predict(&features, a);
    let preds = responses[1].predictions.as_ref().expect("predictions");
    assert!(responses[1].ok);
    assert_eq!(preds.len(), 1);
    assert_eq!(preds[0].pf_bits, direct.pf.to_bits());
    assert_eq!(preds[0].e_avg_bits, direct.e_avg.to_bits());
    assert_eq!(preds[0].e_std_bits, direct.e_std.to_bits());
    assert_eq!(preds[0].pf, direct.pf);

    // grid predict
    let grid = reference.predict_grid(&features, &[0.5, 1.0, 2.0]);
    let preds = responses[2].predictions.as_ref().expect("grid");
    assert_eq!(preds.len(), 3);
    for (p, d) in preds.iter().zip(&grid) {
        assert_eq!(p.pf_bits, d.pf.to_bits());
    }

    // hostile lines: rejected with errors, session kept serving
    for (idx, needle) in [
        (3, "unparseable request"),
        (4, "unknown op"),
        (5, "expected 24 features"),
        (6, "finite and positive"),
        (7, "needs `a` or `a_values`"),
    ] {
        let r = &responses[idx];
        assert!(!r.ok, "line {idx} should be rejected");
        let error = r.error.as_ref().expect("error message");
        assert!(
            error.contains(needle),
            "line {idx}: `{error}` missing `{needle}`"
        );
    }

    // tsp upload: parsed, featurised, proposals planned, grid answered
    let tsp = &responses[8];
    assert!(tsp.ok, "tsp upload failed: {:?}", tsp.error);
    assert_eq!(tsp.instance.as_deref(), Some("up"));
    let proposals = tsp.proposals.as_ref().expect("proposals");
    assert!(!proposals.is_empty());
    assert!(proposals.iter().all(|p| p.is_finite() && *p > 0.0));
    assert_eq!(
        tsp.proposal_bits.as_ref().expect("bits").len(),
        proposals.len()
    );
    assert_eq!(tsp.predictions.as_ref().expect("tsp grid").len(), 1);

    // truncated tsp upload: clean rejection
    let bad = &responses[9];
    assert!(!bad.ok);
    assert!(
        bad.error.as_ref().expect("error").contains("edge weight"),
        "unexpected error: {:?}",
        bad.error
    );
}

#[test]
fn responses_stay_in_request_order_under_batching() {
    let eng = engine(ServeConfig {
        workers: 4,
        max_batch_rows: 8,
        ..Default::default()
    });
    let mut requests = String::new();
    for id in 0..200u64 {
        let (features, a) = query(id as usize % 17);
        requests.push_str(&format!(
            "{{\"id\": {id}, \"op\": \"predict\", \"features\": {}, \"a\": {a}}}\n",
            serde_json::to_string(&features).expect("json"),
        ));
    }
    let responses = roundtrip(&eng, &requests);
    assert_eq!(responses.len(), 200);
    for (k, r) in responses.iter().enumerate() {
        assert_eq!(r.id, Some(k as u64), "response order broke at {k}");
        assert!(r.ok);
    }
    let stats = eng.stats();
    assert_eq!(stats.requests, 200);
    assert_eq!(stats.rows, 200);
    // Whether a repeat hits the cache or rides an in-flight batch is a
    // timing accident (the stager can outpace the workers); deterministic
    // cache-hit coverage lives in the hammer test, where each client
    // blocks on its own earlier query before repeating it.
}

#[test]
fn bare_surrogate_rejects_tsp_op_but_serves_predict() {
    let eng = ServeEngine::new(
        ServeModel::Surrogate(Arc::new(test_surrogate())),
        ServeConfig::default(),
    );
    let (features, a) = query(5);
    let requests = format!(
        "{{\"id\": 1, \"op\": \"tsp\", \"tsplib\": \"NAME: x\"}}\n\
         {{\"id\": 2, \"op\": \"predict\", \"features\": {}, \"a\": {a}}}\n\
         {{\"id\": 3, \"op\": \"info\"}}\n",
        serde_json::to_string(&features).expect("json"),
    );
    let responses = roundtrip(&eng, &requests);
    assert_eq!(responses.len(), 3);
    assert!(!responses[0].ok);
    assert!(responses[0]
        .error
        .as_ref()
        .expect("error")
        .contains("bare surrogate"));
    assert!(responses[1].ok);
    assert_eq!(responses[2].info.as_ref().expect("info").kind, "surrogate");
}
