//! Lockstep multi-replica flip evaluation (structure-of-arrays).
//!
//! Annealer batches run many independent replicas over the *same* model.
//! [`ReplicaBatch`] stores `lanes` replicas' assignments and flip-delta
//! vectors interleaved — `x[i * lanes + r]` / `delta[i * lanes + r]` for
//! variable `i` of replica `r` — so that:
//!
//! * [`ReplicaBatch::rebuild_all`] rebuilds every lane's energy and delta
//!   caches in **one shared CSR traversal**: the row offsets, column
//!   indices and weights of each variable are read once and applied to
//!   all lanes, instead of once per replica;
//! * per-variable lane rows (`delta[i * lanes ..][.. lanes]`) are
//!   contiguous, which turns the digital annealer's all-candidate scan
//!   into a unit-stride sweep across replicas and gives the
//!   autovectorizer clean `lanes`-wide inner loops;
//! * the batched [`ReplicaBatch::flip`] uses the same branch-free
//!   sign-bit delta update as [`QuboState::flip`](crate::QuboState::flip).
//!
//! # Bit-exactness contract
//!
//! Every lane behaves *bit-identically* to an independent
//! [`QuboState`](crate::QuboState): `rebuild_all` performs, per lane, the
//! exact per-variable accumulation order of `QuboState::rebuild_caches`
//! (neighbours in CSR row order), and `flip(r, i)` the exact update order
//! of `QuboState::flip`. Interleaving lanes only reorders operations
//! *across* independent replicas, never within one, so a solver that
//! advances `N` lanes in lockstep produces the same trajectories as `N`
//! sequential single-replica runs with the same per-replica RNG streams
//! (property-tested in `crates/qubo/tests/proptest_batch.rs`). This is
//! what lets the SA/DA replica loops batch replicas without perturbing
//! any persisted dataset or golden fixture.

use rand::Rng;

use crate::model::QuboModel;

/// `lanes` independent replica states over one model, stored
/// structure-of-arrays and advanced in lockstep.
///
/// # Examples
///
/// ```
/// use qubo::{QuboBuilder, ReplicaBatch, QuboState};
/// let mut b = QuboBuilder::new(2);
/// b.add_linear(0, 1.0);
/// b.add_quadratic(0, 1, -3.0);
/// let m = b.build();
/// let mut batch = ReplicaBatch::new(&m, 2);
/// batch.flip(1, 0); // lane 1 turns on x0
/// assert_eq!(batch.energy(0), 0.0);
/// assert_eq!(batch.energy(1), 1.0);
/// assert_eq!(batch.flip_delta(1, 0), QuboState::new(&m, vec![1, 0]).flip_delta(0));
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaBatch<'m> {
    model: &'m QuboModel,
    lanes: usize,
    /// `x[i * lanes + r]` — bit `i` of replica `r`
    x: Vec<u8>,
    /// `delta[i * lanes + r]` — flip delta of bit `i` in replica `r`
    delta: Vec<f64>,
    /// `energy[r]` — cached energy of replica `r`
    energy: Vec<f64>,
    /// scratch for `rebuild_all` (local fields per lane)
    h: Vec<f64>,
    /// scratch for `rebuild_all` (upper-triangle sums per lane)
    upper: Vec<f64>,
}

impl<'m> ReplicaBatch<'m> {
    /// Creates `lanes` replicas, all starting from the all-zeros
    /// assignment, with caches built.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(model: &'m QuboModel, lanes: usize) -> Self {
        assert!(lanes > 0, "ReplicaBatch requires at least one lane");
        let n = model.num_vars();
        let mut batch = ReplicaBatch {
            model,
            lanes,
            x: vec![0; n * lanes],
            delta: vec![0.0; n * lanes],
            energy: vec![0.0; lanes],
            h: vec![0.0; lanes],
            upper: vec![0.0; lanes],
        };
        batch.rebuild_all();
        batch
    }

    /// The underlying model.
    pub fn model(&self) -> &'m QuboModel {
        self.model
    }

    /// Number of replica lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of variables per replica.
    pub fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    /// Cached energy of replica `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn energy(&self, r: usize) -> f64 {
        self.energy[r]
    }

    /// Flip delta of bit `i` in replica `r` (O(1) read).
    ///
    /// # Panics
    ///
    /// Panics if `r` or `i` is out of range.
    #[inline]
    pub fn flip_delta(&self, r: usize, i: usize) -> f64 {
        assert!(r < self.lanes, "lane {r} out of range");
        self.delta[i * self.lanes + r]
    }

    /// All lanes' flip deltas for variable `i` — a contiguous
    /// `lanes`-long row, the unit-stride shape the DA candidate scan
    /// iterates.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn flip_deltas_at(&self, i: usize) -> &[f64] {
        &self.delta[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Current value of bit `i` in replica `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `i` is out of range.
    pub fn bit(&self, r: usize, i: usize) -> u8 {
        assert!(r < self.lanes, "lane {r} out of range");
        self.x[i * self.lanes + r]
    }

    /// Gathers replica `r`'s assignment into `out` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn copy_assignment(&self, r: usize, out: &mut Vec<u8>) {
        assert!(r < self.lanes, "lane {r} out of range");
        let n = self.num_vars();
        out.clear();
        out.reserve(n);
        for i in 0..n {
            out.push(self.x[i * self.lanes + r]);
        }
    }

    /// Overwrites replica `r`'s assignment with `bits`.
    ///
    /// Caches are **not** rebuilt (same contract as
    /// [`ReplicaBatch::randomize_lane`]): stage all lanes, then amortise
    /// one [`ReplicaBatch::rebuild_all`] over the batch.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or `bits.len() != num_vars()`.
    pub fn set_assignment(&mut self, r: usize, bits: &[u8]) {
        assert!(r < self.lanes, "lane {r} out of range");
        assert_eq!(bits.len(), self.num_vars(), "state length mismatch");
        for (i, &bit) in bits.iter().enumerate() {
            self.x[i * self.lanes + r] = bit;
        }
    }

    /// Redraws replica `r`'s bits uniformly at random, consuming exactly
    /// the draws (in variable order) that
    /// [`QuboState::randomize`](crate::QuboState::randomize) would.
    ///
    /// Caches are **not** rebuilt: callers randomize each lane with its
    /// own RNG, then amortise one [`ReplicaBatch::rebuild_all`] over the
    /// whole batch. Energies and deltas are stale until then.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn randomize_lane<R: Rng + ?Sized>(&mut self, r: usize, rng: &mut R) {
        assert!(r < self.lanes, "lane {r} out of range");
        for i in 0..self.num_vars() {
            self.x[i * self.lanes + r] = rng.gen_range(0..2);
        }
    }

    /// Rebuilds every lane's energy and delta caches in one shared CSR
    /// traversal. O(n + nnz) model reads for *all* lanes together, versus
    /// O(lanes · (n + nnz)) for per-replica rebuilds.
    ///
    /// Per lane, the accumulation order is exactly
    /// `QuboState::rebuild_caches` (neighbours in CSR row order), so each
    /// lane's caches are bit-identical to an independent state's. The
    /// bounds-checked `x[j * lanes + r]` access doubles as the CSR
    /// **bounds validation** that [`ReplicaBatch::flip`]'s unchecked
    /// accesses rely on (`j * lanes + r < n * lanes` implies `j < n`):
    /// the constructor funnels through here before any flip can run. Do
    /// not change this loop to skip entries without adding an explicit
    /// validation pass.
    pub fn rebuild_all(&mut self) {
        let model = self.model;
        let lanes = self.lanes;
        let offset = model.offset();
        self.energy.fill(offset);
        for i in 0..self.num_vars() {
            let row = &self.x[i * lanes..(i + 1) * lanes];
            for (r, &xi) in row.iter().enumerate() {
                assert!(xi <= 1, "state entries must be 0 or 1 (lane {r})");
            }
            let cols = model.neighbor_cols(i);
            let weights = model.neighbor_weights(i);
            let linear = model.linear(i);
            self.h.fill(linear);
            self.upper.fill(0.0);
            for (&j, &w) in cols.iter().zip(weights) {
                let j = j as usize;
                let above = j > i;
                for r in 0..lanes {
                    if self.x[j * lanes + r] != 0 {
                        self.h[r] += w;
                        if above {
                            self.upper[r] += w;
                        }
                    }
                }
            }
            for r in 0..lanes {
                if self.x[i * lanes + r] != 0 {
                    self.energy[r] += linear + self.upper[r];
                    self.delta[i * lanes + r] = -self.h[r];
                } else {
                    self.delta[i * lanes + r] = self.h[r];
                }
            }
        }
    }

    /// Commits a flip of bit `i` in replica `r`: the batched counterpart
    /// of [`QuboState::flip`](crate::QuboState::flip), using the same
    /// branch-free sign-bit neighbour update and the same operation
    /// order, so the lane's trajectory stays bit-identical to an
    /// independent state's. O(degree). Returns the applied energy delta.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `i` is out of range.
    #[inline]
    pub fn flip(&mut self, r: usize, i: usize) -> f64 {
        assert!(r < self.lanes, "lane {r} out of range");
        let lanes = self.lanes;
        let applied = self.delta[i * lanes + r];
        // Sign mask of (1 − 2 x_i) *before* the flip, as in QuboState.
        let flip_sign = (self.x[i * lanes + r] as u64) << 63;
        self.x[i * lanes + r] ^= 1;
        self.energy[r] += applied;
        self.delta[i * lanes + r] = -applied;
        let cols = self.model.neighbor_cols(i);
        let weights = self.model.neighbor_weights(i);
        for (&j, &w) in cols.iter().zip(weights) {
            let j = j as usize;
            // SAFETY: every CSR column index was bounds-checked by
            // `rebuild_all` (the constructor funnels through it, covering
            // deserialised models), `r < lanes` was asserted above, and
            // `x`/`delta` both have length `num_vars * lanes`, so
            // `j * lanes + r` is in bounds. Same justification as
            // `QuboState::flip`; this is the solvers' hottest loop.
            unsafe {
                let idx = j * lanes + r;
                let xj = *self.x.get_unchecked(idx);
                let mask = flip_sign ^ ((xj as u64) << 63);
                *self.delta.get_unchecked_mut(idx) += f64::from_bits(w.to_bits() ^ mask);
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuboBuilder;
    use crate::state::QuboState;
    use mathkit::rng::seeded_rng;
    use rand::Rng;

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = seeded_rng(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.gen_range(-2.0..2.0));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.4 {
                    b.add_quadratic(i, j, rng.gen_range(-1.5..1.5));
                }
            }
        }
        b.build()
    }

    /// Every lane of a lockstep-advanced batch matches an independent
    /// QuboState fed the same flips — exact bits, not tolerances.
    #[test]
    fn lanes_match_independent_states_bitwise() {
        let m = random_model(12, 7);
        let lanes = 5;
        let mut batch = ReplicaBatch::new(&m, lanes);
        let mut rngs: Vec<_> = (0..lanes).map(|r| seeded_rng(100 + r as u64)).collect();
        for (r, rng) in rngs.iter_mut().enumerate() {
            batch.randomize_lane(r, rng);
        }
        batch.rebuild_all();
        let mut singles: Vec<QuboState<'_>> = (0..lanes)
            .map(|r| {
                let mut rng = seeded_rng(100 + r as u64);
                let mut s = QuboState::new(&m, vec![0; 12]);
                s.randomize(&mut rng);
                s
            })
            .collect();
        // Interleave flips across lanes; each lane uses its own stream.
        for step in 0..200 {
            for (r, rng) in rngs.iter_mut().enumerate() {
                let i = rng.gen_range(0..12);
                let db = batch.flip(r, i);
                let ds = singles[r].flip(i);
                assert_eq!(db.to_bits(), ds.to_bits(), "step {step} lane {r}");
                assert_eq!(
                    batch.energy(r).to_bits(),
                    singles[r].energy().to_bits(),
                    "energy drift at step {step} lane {r}"
                );
            }
        }
        let mut buf = Vec::new();
        for (r, single) in singles.iter().enumerate() {
            batch.copy_assignment(r, &mut buf);
            assert_eq!(&buf[..], single.assignment(), "assignment lane {r}");
            for i in 0..12 {
                assert_eq!(
                    batch.flip_delta(r, i).to_bits(),
                    single.flip_delta(i).to_bits(),
                    "delta lane {r} var {i}"
                );
            }
        }
    }

    #[test]
    fn rebuild_matches_fresh_states() {
        let m = random_model(9, 3);
        let lanes = 4;
        let mut batch = ReplicaBatch::new(&m, lanes);
        let mut rng = seeded_rng(42);
        for r in 0..lanes {
            batch.randomize_lane(r, &mut rng);
        }
        batch.rebuild_all();
        let mut buf = Vec::new();
        for r in 0..lanes {
            batch.copy_assignment(r, &mut buf);
            let fresh = QuboState::new(&m, buf.clone());
            assert_eq!(batch.energy(r).to_bits(), fresh.energy().to_bits());
            for i in 0..9 {
                assert_eq!(
                    batch.flip_delta(r, i).to_bits(),
                    fresh.flip_delta(i).to_bits()
                );
            }
        }
    }

    #[test]
    fn deltas_at_row_is_lane_contiguous() {
        let m = random_model(6, 5);
        let batch = ReplicaBatch::new(&m, 3);
        for i in 0..6 {
            let row = batch.flip_deltas_at(i);
            assert_eq!(row.len(), 3);
            for (r, &d) in row.iter().enumerate() {
                assert_eq!(d.to_bits(), batch.flip_delta(r, i).to_bits());
            }
        }
    }

    #[test]
    fn empty_model_ok() {
        let m = QuboBuilder::new(0).build();
        let batch = ReplicaBatch::new(&m, 2);
        assert_eq!(batch.energy(0), 0.0);
        assert_eq!(batch.energy(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let m = QuboBuilder::new(2).build();
        let _ = ReplicaBatch::new(&m, 0);
    }
}
