//! Numerical quadrature: adaptive Simpson and fixed-order Gauss–Legendre.
//!
//! The Minimum Fitness Strategy evaluates
//! `E[min] ≈ ∫_0^∞ (1 − Φ(z; Eavg, Estd))^(Pf·B) dz` (paper eq. 2); the
//! integrand is a smooth sigmoid-like step, so adaptive Simpson on a finite
//! window chosen from the Gaussian parameters converges quickly.

use crate::{MathError, Result};

/// Adaptive Simpson quadrature of `f` over `[a, b]`.
///
/// `tol` is an absolute error target; `max_depth` bounds the recursion.
///
/// # Errors
///
/// Returns [`MathError::Domain`] if `a > b` or either endpoint is not
/// finite, and [`MathError::NoConvergence`] when the integrand produces a
/// non-finite value.
///
/// # Examples
///
/// ```
/// use mathkit::integrate::adaptive_simpson;
/// let v = adaptive_simpson(|x| x * x, 0.0, 1.0, 1e-10, 30)?;
/// assert!((v - 1.0 / 3.0).abs() < 1e-9);
/// # Ok::<(), mathkit::MathError>(())
/// ```
pub fn adaptive_simpson<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: usize,
) -> Result<f64> {
    if !(a.is_finite() && b.is_finite()) || a > b {
        return Err(MathError::Domain {
            message: format!("invalid interval [{a}, {b}]"),
        });
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    if !(fa.is_finite() && fb.is_finite() && fm.is_finite()) {
        return Err(MathError::NoConvergence {
            routine: "adaptive_simpson",
        });
    }
    let whole = simpson_rule(a, b, fa, fm, fb);
    simpson_recurse(&f, a, b, fa, fm, fb, whole, tol, max_depth)
}

fn simpson_rule(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> Result<f64> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    if !(flm.is_finite() && frm.is_finite()) {
        return Err(MathError::NoConvergence {
            routine: "adaptive_simpson",
        });
    }
    let left = simpson_rule(a, m, fa, flm, fm);
    let right = simpson_rule(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation term improves the final estimate.
        return Ok(left + right + delta / 15.0);
    }
    let lv = simpson_recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)?;
    let rv = simpson_recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)?;
    Ok(lv + rv)
}

/// Nodes and weights for 32-point Gauss–Legendre quadrature on `[-1, 1]`
/// (positive half; the rule is symmetric).
const GL32_X: [f64; 16] = [
    0.048_307_665_687_738_32,
    0.144_471_961_582_796_5,
    0.239_287_362_252_137_06,
    0.331_868_602_282_127_67,
    0.421_351_276_130_635_33,
    0.506_899_908_932_229_4,
    0.587_715_757_240_762_3,
    0.663_044_266_930_215_2,
    0.732_182_118_740_289_7,
    0.794_483_795_967_942_4,
    0.849_367_613_732_57,
    0.896_321_155_766_052_1,
    0.934_906_075_937_739_7,
    0.964_762_255_587_506_4,
    0.985_611_511_545_268_4,
    0.997_263_861_849_481_6,
];
const GL32_W: [f64; 16] = [
    0.096_540_088_514_727_8,
    0.095_638_720_079_274_86,
    0.093_844_399_080_804_57,
    0.091_173_878_695_763_89,
    0.087_652_093_004_403_81,
    0.083_311_924_226_946_75,
    0.078_193_895_787_070_31,
    0.072_345_794_108_848_5,
    0.065_822_222_776_361_85,
    0.058684093478535547,
    0.050998059262376176,
    0.042_835_898_022_226_68,
    0.034_273_862_913_021_43,
    0.025_392_065_309_262_06,
    0.016_274_394_730_905_67,
    0.007018610009470097,
];

/// 32-point Gauss–Legendre quadrature of `f` over `[a, b]`.
///
/// Exact for polynomials of degree ≤ 63; for the smooth integrands used in
/// this workspace it is typically accurate to near machine precision.
///
/// # Examples
///
/// ```
/// use mathkit::integrate::gauss_legendre_32;
/// let v = gauss_legendre_32(|x| x.sin(), 0.0, std::f64::consts::PI);
/// assert!((v - 2.0).abs() < 1e-12);
/// ```
pub fn gauss_legendre_32<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> f64 {
    let c = 0.5 * (b - a);
    let d = 0.5 * (b + a);
    let mut acc = 0.0;
    for i in 0..16 {
        let x = GL32_X[i] * c;
        acc += GL32_W[i] * (f(d + x) + f(d - x));
    }
    acc * c
}

/// Composite Gauss–Legendre: splits `[a, b]` into `panels` equal panels and
/// applies [`gauss_legendre_32`] to each. Use when the integrand has a sharp
/// but smooth transition (e.g. survival functions raised to large powers).
pub fn gauss_legendre_composite<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, panels: usize) -> f64 {
    assert!(panels > 0, "at least one panel required");
    let h = (b - a) / panels as f64;
    let mut acc = 0.0;
    for p in 0..panels {
        let lo = a + p as f64 * h;
        acc += gauss_legendre_32(&f, lo, lo + h);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_polynomial_exact() {
        let v = adaptive_simpson(|x| 3.0 * x * x, 0.0, 2.0, 1e-12, 40).unwrap();
        assert!((v - 8.0).abs() < 1e-9);
    }

    #[test]
    fn simpson_transcendental() {
        let v = adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-12, 40).unwrap();
        assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn simpson_zero_width() {
        assert_eq!(adaptive_simpson(|x| x, 1.0, 1.0, 1e-9, 10).unwrap(), 0.0);
    }

    #[test]
    fn simpson_invalid_interval() {
        assert!(adaptive_simpson(|x| x, 1.0, 0.0, 1e-9, 10).is_err());
        assert!(adaptive_simpson(|x| x, f64::NAN, 1.0, 1e-9, 10).is_err());
    }

    #[test]
    fn simpson_rejects_nan_integrand() {
        assert!(adaptive_simpson(|_| f64::NAN, 0.0, 1.0, 1e-9, 10).is_err());
    }

    #[test]
    fn gl32_sin_integral() {
        let v = gauss_legendre_32(|x| x.sin(), 0.0, std::f64::consts::PI);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gl32_high_degree_polynomial() {
        // x^10 over [0,1] = 1/11; GL32 is exact to degree 63.
        let v = gauss_legendre_32(|x| x.powi(10), 0.0, 1.0);
        assert!((v - 1.0 / 11.0).abs() < 1e-14);
    }

    #[test]
    fn composite_matches_single_on_smooth() {
        let single = gauss_legendre_32(|x: f64| (-x * x).exp(), -2.0, 2.0);
        let multi = gauss_legendre_composite(|x: f64| (-x * x).exp(), -2.0, 2.0, 8);
        assert!((single - multi).abs() < 1e-10);
    }

    #[test]
    fn survival_power_integral() {
        // E[min of m std-normals] via integral of sf^m over a window, compared
        // with a Monte-Carlo estimate. For m=4, E[min] ~ -1.0294.
        use crate::special::normal_sf;
        let m = 4.0;
        // E[min] = ∫_{-∞}^{0} (sf^m − 1) dz + ∫_0^∞ sf^m dz
        let left = adaptive_simpson(
            |z| normal_sf(z, 0.0, 1.0).powf(m) - 1.0,
            -8.0,
            0.0,
            1e-10,
            40,
        )
        .unwrap();
        let right =
            adaptive_simpson(|z| normal_sf(z, 0.0, 1.0).powf(m), 0.0, 8.0, 1e-10, 40).unwrap();
        let e_min = left + right;
        assert!((e_min - (-1.029375)).abs() < 1e-3, "got {e_min}");
    }

    #[test]
    #[should_panic(expected = "panel")]
    fn composite_zero_panels_panics() {
        let _ = gauss_legendre_composite(|x| x, 0.0, 1.0, 0);
    }
}
