//! First-order optimisers: SGD with momentum, and Adam.
//!
//! Optimisers hold per-parameter state keyed by the stable visitation
//! order of [`crate::layers::Layer::visit_params`].

use mathkit::Matrix;
use serde::{Deserialize, Serialize};

use crate::network::Mlp;

/// Optimiser configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerConfig {
    /// stochastic gradient descent
    Sgd {
        /// learning rate
        lr: f64,
        /// momentum coefficient (`0.0` disables momentum)
        momentum: f64,
    },
    /// Adam (Kingma & Ba 2015)
    Adam {
        /// learning rate
        lr: f64,
        /// first-moment decay
        beta1: f64,
        /// second-moment decay
        beta2: f64,
        /// numerical-stability epsilon
        eps: f64,
    },
}

impl OptimizerConfig {
    /// Adam with the standard defaults and the given learning rate.
    pub fn adam(lr: f64) -> Self {
        OptimizerConfig::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD with the given learning rate.
    pub fn sgd(lr: f64) -> Self {
        OptimizerConfig::Sgd { lr, momentum: 0.0 }
    }
}

/// Stateful optimiser applying updates to an [`Mlp`].
#[derive(Debug)]
pub struct Optimizer {
    config: OptimizerConfig,
    /// per-parameter slots, in visitation order
    state: Vec<ParamState>,
    step_count: u64,
}

#[derive(Debug, Clone)]
enum ParamState {
    Sgd { velocity: Matrix },
    Adam { m: Matrix, v: Matrix },
}

impl Optimizer {
    /// Creates an optimiser for the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer {
            config,
            state: Vec::new(),
            step_count: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one update using the gradients currently accumulated in the
    /// network, then leaves gradients untouched (callers decide when to
    /// zero them).
    pub fn step(&mut self, net: &mut Mlp) {
        self.step_count += 1;
        let t = self.step_count;
        let config = self.config;
        let state = &mut self.state;
        let mut slot = 0usize;
        net.visit_params(&mut |value, grad| {
            if state.len() <= slot {
                state.push(match config {
                    OptimizerConfig::Sgd { .. } => ParamState::Sgd {
                        velocity: Matrix::zeros(value.rows(), value.cols()),
                    },
                    OptimizerConfig::Adam { .. } => ParamState::Adam {
                        m: Matrix::zeros(value.rows(), value.cols()),
                        v: Matrix::zeros(value.rows(), value.cols()),
                    },
                });
            }
            match (&config, &mut state[slot]) {
                (OptimizerConfig::Sgd { lr, momentum }, ParamState::Sgd { velocity }) => {
                    if *momentum > 0.0 {
                        // v ← μ·v − lr·g; θ ← θ + v
                        for (v, g) in velocity
                            .as_mut_slice()
                            .iter_mut()
                            .zip(grad.as_slice().iter())
                        {
                            *v = *momentum * *v - lr * g;
                        }
                        value.axpy(1.0, velocity);
                    } else {
                        value.axpy(-*lr, grad);
                    }
                }
                (
                    OptimizerConfig::Adam {
                        lr,
                        beta1,
                        beta2,
                        eps,
                    },
                    ParamState::Adam { m, v },
                ) => {
                    let bc1 = 1.0 - beta1.powi(t as i32);
                    let bc2 = 1.0 - beta2.powi(t as i32);
                    let value_s = value.as_mut_slice();
                    let m_s = m.as_mut_slice();
                    let v_s = v.as_mut_slice();
                    for ((w, g), (mi, vi)) in value_s
                        .iter_mut()
                        .zip(grad.as_slice().iter())
                        .zip(m_s.iter_mut().zip(v_s.iter_mut()))
                    {
                        *mi = beta1 * *mi + (1.0 - beta1) * g;
                        *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                        let m_hat = *mi / bc1;
                        let v_hat = *vi / bc2;
                        *w -= lr * m_hat / (v_hat.sqrt() + eps);
                    }
                }
                _ => unreachable!("optimizer state kind matches config"),
            }
            slot += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::network::MlpBuilder;

    /// One-parameter quadratic: verify each optimiser drives a dense(1→1)
    /// "network" towards the target.
    fn converges(config: OptimizerConfig, steps: usize) -> f64 {
        let mut net = MlpBuilder::new(1).dense(1).build(3);
        let mut opt = Optimizer::new(config);
        let x = Matrix::row(&[1.0]);
        let y = Matrix::row(&[5.0]);
        for _ in 0..steps {
            net.zero_grad();
            let pred = net.forward(&x);
            let g = Loss::Mse.grad(&pred, &y);
            net.backward(&g);
            opt.step(&mut net);
        }
        let pred = net.forward(&x);
        (pred[(0, 0)] - 5.0).abs()
    }

    #[test]
    fn sgd_converges() {
        assert!(converges(OptimizerConfig::sgd(0.1), 500) < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(
            converges(
                OptimizerConfig::Sgd {
                    lr: 0.05,
                    momentum: 0.9
                },
                500
            ) < 1e-6
        );
    }

    #[test]
    fn adam_converges() {
        assert!(converges(OptimizerConfig::adam(0.1), 800) < 1e-4);
    }

    #[test]
    fn adam_handles_illconditioned_inputs() {
        // Two inputs with wildly different scales: Adam's per-parameter
        // step normalisation still converges at a generic learning rate
        // (where plain SGD would need per-problem tuning to avoid blow-up —
        // lr 1e-2 diverges here, checked below).
        let run = |config: OptimizerConfig| {
            let mut net = MlpBuilder::new(2).dense(1).build(11);
            let mut opt = Optimizer::new(config);
            let x = Matrix::from_rows(&[&[100.0, 0.01]]);
            let y = Matrix::row(&[1.0]);
            for _ in 0..400 {
                net.zero_grad();
                let pred = net.forward(&x);
                let g = Loss::Mse.grad(&pred, &y);
                net.backward(&g);
                opt.step(&mut net);
            }
            let pred = net.forward(&x);
            (pred[(0, 0)] - 1.0).abs()
        };
        let adam = run(OptimizerConfig::adam(0.05));
        assert!(adam < 0.05, "adam residual {adam}");
        let sgd = run(OptimizerConfig::sgd(1e-2));
        assert!(
            !sgd.is_finite() || sgd > 1.0,
            "sgd unexpectedly fine: {sgd}"
        );
    }

    #[test]
    fn step_counter_advances() {
        let mut net = MlpBuilder::new(1).dense(1).build(1);
        let mut opt = Optimizer::new(OptimizerConfig::adam(0.01));
        assert_eq!(opt.steps(), 0);
        net.zero_grad();
        let x = Matrix::row(&[1.0]);
        let pred = net.forward(&x);
        let g = Loss::Mse.grad(&pred, &Matrix::row(&[0.0]));
        net.backward(&g);
        opt.step(&mut net);
        opt.step(&mut net);
        assert_eq!(opt.steps(), 2);
    }
}
