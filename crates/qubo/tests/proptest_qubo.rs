//! Property-based tests for QUBO invariants.

use proptest::prelude::*;
use qubo::{ConstrainedBinaryProgram, LinearConstraint, LocalFieldState, QuboBuilder};

/// Strategy producing a random QUBO model description: `n`, linear terms
/// and a sparse set of couplings.
fn qubo_strategy() -> impl Strategy<Value = (usize, Vec<f64>, Vec<(usize, usize, f64)>)> {
    (2usize..12).prop_flat_map(|n| {
        let linear = proptest::collection::vec(-5.0..5.0f64, n);
        let couplings = proptest::collection::vec(
            (
                (0..n, 0..n).prop_filter("distinct", |(i, j)| i != j),
                -5.0..5.0f64,
            )
                .prop_map(|((i, j), w)| (i, j, w)),
            0..(n * 2),
        );
        (Just(n), linear, couplings)
    })
}

fn build_model(n: usize, linear: &[f64], couplings: &[(usize, usize, f64)]) -> qubo::QuboModel {
    let mut b = QuboBuilder::new(n);
    for (i, &l) in linear.iter().enumerate() {
        b.add_linear(i, l);
    }
    for &(i, j, w) in couplings {
        b.add_quadratic(i, j, w);
    }
    b.build()
}

proptest! {
    /// Flipping a sequence of bits via local-field deltas reproduces the
    /// full energy recomputation exactly (modulo float tolerance).
    #[test]
    fn delta_energy_equals_recompute(
        (n, linear, couplings) in qubo_strategy(),
        flips in proptest::collection::vec(0usize..12, 1..40),
        init_bits in proptest::collection::vec(0u8..2, 12),
    ) {
        let model = build_model(n, &linear, &couplings);
        let x: Vec<u8> = init_bits.into_iter().take(n).collect();
        prop_assume!(x.len() == n);
        let mut state = LocalFieldState::new(&model, x);
        for f in flips {
            let i = f % n;
            let predicted = state.flip_delta(i);
            let before = state.energy();
            state.flip(i);
            prop_assert!((state.energy() - before - predicted).abs() < 1e-9);
            prop_assert!((state.energy() - state.recompute_energy()).abs() < 1e-8);
        }
    }

    /// After an arbitrary flip sequence, the *entire* maintained
    /// flip-delta vector agrees with brute-force `model.energy()`
    /// differences to 1e-9, and `assign_all` reuse is indistinguishable
    /// from a freshly constructed state.
    #[test]
    fn flip_delta_vector_and_assign_all_agree(
        (n, linear, couplings) in qubo_strategy(),
        flips in proptest::collection::vec(0usize..12, 1..40),
        init_bits in proptest::collection::vec(0u8..2, 12),
    ) {
        let model = build_model(n, &linear, &couplings);
        let x: Vec<u8> = init_bits.into_iter().take(n).collect();
        prop_assume!(x.len() == n);
        let mut state = qubo::QuboState::new(&model, x.clone());
        for f in flips {
            state.flip(f % n);
        }
        let full = model.energy(state.assignment());
        prop_assert!((state.energy() - full).abs() < 1e-9);
        for i in 0..n {
            let mut flipped = state.assignment().to_vec();
            flipped[i] ^= 1;
            let want = model.energy(&flipped) - full;
            prop_assert!(
                (state.flip_delta(i) - want).abs() < 1e-9,
                "delta {} drifted: {} vs {}", i, state.flip_delta(i), want
            );
        }
        // Bulk reset back onto the original assignment must equal a fresh
        // construction bit-for-bit (same energy and delta caches).
        state.assign_all(&x);
        let fresh = qubo::QuboState::new(&model, x);
        prop_assert!((state.energy() - fresh.energy()).abs() < 1e-12);
        for i in 0..n {
            prop_assert!((state.flip_delta(i) - fresh.flip_delta(i)).abs() < 1e-12);
        }
    }

    /// QUBO energy is invariant to the insertion order of couplings.
    #[test]
    fn insertion_order_irrelevant(
        (n, linear, couplings) in qubo_strategy(),
        assignment in proptest::collection::vec(0u8..2, 12),
    ) {
        let x: Vec<u8> = assignment.into_iter().take(n).collect();
        prop_assume!(x.len() == n);
        let forward = build_model(n, &linear, &couplings);
        let mut rev = couplings.clone();
        rev.reverse();
        let backward = build_model(n, &linear, &rev);
        prop_assert!((forward.energy(&x) - backward.energy(&x)).abs() < 1e-9);
    }

    /// Penalty relaxation identity: QUBO(A) == objective + A * ||Cx-d||^2,
    /// and raising A never lowers the energy of an infeasible assignment.
    #[test]
    fn penalty_identity_and_monotonicity(
        (n, linear, couplings) in qubo_strategy(),
        assignment in proptest::collection::vec(0u8..2, 12),
        a1 in 0.1..10.0f64,
        extra in 0.1..10.0f64,
    ) {
        let x: Vec<u8> = assignment.into_iter().take(n).collect();
        prop_assume!(x.len() == n);
        let objective = build_model(n, &linear, &couplings);
        let mut prog = ConstrainedBinaryProgram::new(objective);
        // one-hot over the first min(n,4) variables
        prog.add_constraint(LinearConstraint::one_hot(0..n.min(4)));
        let a2 = a1 + extra;
        let q1 = prog.to_qubo(a1);
        let q2 = prog.to_qubo(a2);
        let want1 = prog.objective_value(&x) + a1 * prog.penalty_value(&x);
        prop_assert!((q1.energy(&x) - want1).abs() < 1e-8);
        if prog.is_feasible(&x) {
            prop_assert!((q1.energy(&x) - q2.energy(&x)).abs() < 1e-8);
        } else {
            prop_assert!(q2.energy(&x) >= q1.energy(&x) - 1e-9);
        }
    }

    /// Ising conversion preserves energies for random assignments.
    #[test]
    fn ising_energy_agreement(
        (n, linear, couplings) in qubo_strategy(),
        assignment in proptest::collection::vec(0u8..2, 12),
    ) {
        let x: Vec<u8> = assignment.into_iter().take(n).collect();
        prop_assume!(x.len() == n);
        let q = build_model(n, &linear, &couplings);
        let ising = qubo::IsingModel::from_qubo(&q);
        let s = qubo::ising::binary_to_spins(&x);
        prop_assert!((ising.energy(&s) - q.energy(&x)).abs() < 1e-8);
        let back = ising.to_qubo();
        prop_assert!((back.energy(&x) - q.energy(&x)).abs() < 1e-8);
    }
}
