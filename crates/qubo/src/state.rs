//! Incremental single-flip evaluation of QUBO states.
//!
//! Annealing-style solvers attempt millions of single-bit flips; recomputing
//! the full energy per attempt would cost O(nnz) each. [`LocalFieldState`]
//! caches the *local field* of every variable,
//!
//! `h_i(x) = l_i + Σ_{j≠i} w_ij x_j`,
//!
//! so the energy change of flipping bit `i` is `ΔE = (1 − 2 x_i) · h_i` in
//! O(1), and committing a flip updates the coupled fields in O(degree).

use rand::Rng;

use crate::model::QuboModel;
use crate::QuboError;

/// A binary assignment with cached local fields and energy.
///
/// # Examples
///
/// ```
/// use qubo::{QuboBuilder, LocalFieldState};
/// let mut b = QuboBuilder::new(2);
/// b.add_linear(0, 1.0);
/// b.add_quadratic(0, 1, -3.0);
/// let m = b.build();
/// let mut s = LocalFieldState::new(&m, vec![0, 1]);
/// assert_eq!(s.energy(), 0.0);
/// let delta = s.flip_delta(0); // turning on x0: +1 (linear) -3 (coupling)
/// assert_eq!(delta, -2.0);
/// s.flip(0);
/// assert_eq!(s.energy(), -2.0);
/// ```
#[derive(Debug, Clone)]
pub struct LocalFieldState<'m> {
    model: &'m QuboModel,
    x: Vec<u8>,
    fields: Vec<f64>,
    energy: f64,
}

impl<'m> LocalFieldState<'m> {
    /// Builds the cache for assignment `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != model.num_vars()` or any entry is not 0/1.
    #[allow(clippy::needless_range_loop)] // i indexes fields, x and the model
    pub fn new(model: &'m QuboModel, x: Vec<u8>) -> Self {
        assert_eq!(x.len(), model.num_vars(), "state length mismatch");
        assert!(x.iter().all(|&b| b <= 1), "state entries must be 0 or 1");
        let mut fields = vec![0.0; x.len()];
        for i in 0..x.len() {
            let mut h = model.linear(i);
            for &(j, w) in model.neighbors(i) {
                if x[j as usize] != 0 {
                    h += w;
                }
            }
            fields[i] = h;
        }
        let energy = model.energy(&x);
        LocalFieldState {
            model,
            x,
            fields,
            energy,
        }
    }

    /// Checked constructor.
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::StateLengthMismatch`] for a wrong-length
    /// assignment.
    pub fn try_new(model: &'m QuboModel, x: Vec<u8>) -> Result<Self, QuboError> {
        if x.len() != model.num_vars() {
            return Err(QuboError::StateLengthMismatch {
                expected: model.num_vars(),
                found: x.len(),
            });
        }
        Ok(Self::new(model, x))
    }

    /// Builds a uniformly random assignment.
    pub fn random<R: Rng + ?Sized>(model: &'m QuboModel, rng: &mut R) -> Self {
        let x: Vec<u8> = (0..model.num_vars()).map(|_| rng.gen_range(0..2)).collect();
        Self::new(model, x)
    }

    /// The underlying model.
    pub fn model(&self) -> &QuboModel {
        self.model
    }

    /// Current assignment.
    pub fn assignment(&self) -> &[u8] {
        &self.x
    }

    /// Current cached energy.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Current value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> u8 {
        self.x[i]
    }

    /// Local field of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// Energy change that flipping bit `i` *would* cause (O(1)).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn flip_delta(&self, i: usize) -> f64 {
        let sign = 1.0 - 2.0 * self.x[i] as f64;
        sign * self.fields[i]
    }

    /// Commits a flip of bit `i`, updating energy and coupled fields.
    ///
    /// Returns the applied energy delta.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip(&mut self, i: usize) -> f64 {
        let delta = self.flip_delta(i);
        let sign = 1.0 - 2.0 * self.x[i] as f64; // +1 when turning on
        self.x[i] ^= 1;
        self.energy += delta;
        for &(j, w) in self.model.neighbors(i) {
            self.fields[j as usize] += sign * w;
        }
        delta
    }

    /// Replaces the assignment wholesale and rebuilds the caches.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn reset(&mut self, x: Vec<u8>) {
        *self = LocalFieldState::new(self.model, x);
    }

    /// Consumes the state and returns the assignment.
    pub fn into_assignment(self) -> Vec<u8> {
        self.x
    }

    /// Recomputes the energy from scratch (O(nnz)) — used by tests and
    /// debug assertions to validate the incremental bookkeeping.
    pub fn recompute_energy(&self) -> f64 {
        self.model.energy(&self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuboBuilder;
    use mathkit::rng::seeded_rng;
    use rand::Rng;

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = seeded_rng(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.gen_range(-2.0..2.0));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.4 {
                    b.add_quadratic(i, j, rng.gen_range(-1.5..1.5));
                }
            }
        }
        b.build()
    }

    #[test]
    fn fields_match_definition() {
        let m = random_model(8, 3);
        let mut rng = seeded_rng(11);
        let s = LocalFieldState::random(&m, &mut rng);
        for i in 0..8 {
            let mut h = m.linear(i);
            for j in 0..8 {
                if j != i && s.bit(j) == 1 {
                    h += m.quadratic(i, j);
                }
            }
            assert!((s.field(i) - h).abs() < 1e-12, "field {i}");
        }
    }

    #[test]
    fn delta_matches_full_recompute() {
        let m = random_model(10, 5);
        let mut rng = seeded_rng(17);
        let mut s = LocalFieldState::random(&m, &mut rng);
        for step in 0..200 {
            let i = rng.gen_range(0..10);
            let predicted = s.flip_delta(i);
            let before = s.recompute_energy();
            s.flip(i);
            let after = s.recompute_energy();
            assert!(
                (after - before - predicted).abs() < 1e-9,
                "step {step}, var {i}"
            );
            assert!((s.energy() - after).abs() < 1e-9, "cached energy drift");
        }
    }

    #[test]
    fn flip_twice_restores() {
        let m = random_model(6, 9);
        let mut rng = seeded_rng(23);
        let mut s = LocalFieldState::random(&m, &mut rng);
        let e0 = s.energy();
        let x0 = s.assignment().to_vec();
        s.flip(2);
        s.flip(2);
        assert_eq!(s.assignment(), &x0[..]);
        assert!((s.energy() - e0).abs() < 1e-12);
    }

    #[test]
    fn reset_rebuilds() {
        let m = random_model(5, 1);
        let mut s = LocalFieldState::new(&m, vec![0; 5]);
        s.flip(0);
        s.reset(vec![1; 5]);
        assert_eq!(s.assignment(), &[1, 1, 1, 1, 1]);
        assert!((s.energy() - m.energy(&[1; 5])).abs() < 1e-12);
    }

    #[test]
    fn try_new_length_check() {
        let m = random_model(4, 2);
        assert!(LocalFieldState::try_new(&m, vec![0; 3]).is_err());
        assert!(LocalFieldState::try_new(&m, vec![0; 4]).is_ok());
    }

    #[test]
    #[should_panic(expected = "0 or 1")]
    fn rejects_non_binary() {
        let m = random_model(2, 2);
        let _ = LocalFieldState::new(&m, vec![0, 2]);
    }
}
