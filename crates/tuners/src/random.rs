//! Random search — the exhaustive-method representative in the paper's
//! comparison (§5.1).

use rand::rngs::StdRng;
use rand::Rng;

use mathkit::rng::seeded_rng;

use crate::{validate_observation, Observation, Tuner};

/// Uniform random sampling over `[lo, hi]`.
#[derive(Debug)]
pub struct RandomSearch {
    lo: f64,
    hi: f64,
    rng: StdRng,
    observations: Vec<Observation>,
}

impl RandomSearch {
    /// Creates a random-search tuner on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, seed: u64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid domain [{lo}, {hi}]"
        );
        RandomSearch {
            lo,
            hi,
            rng: seeded_rng(seed ^ 0x5241_4E44),
            observations: Vec::new(),
        }
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn ask(&mut self) -> f64 {
        self.rng.gen_range(self.lo..=self.hi)
    }

    fn tell(&mut self, x: f64, y: f64) {
        validate_observation(self.lo, self.hi, x, y);
        self.observations.push(Observation { x, y });
    }

    fn observations(&self) -> &[Observation] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_domain() {
        let mut t = RandomSearch::new(2.0, 7.0, 1);
        for _ in 0..500 {
            let x = t.ask();
            assert!((2.0..=7.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_sequences() {
        let xs: Vec<f64> = {
            let mut t = RandomSearch::new(0.0, 1.0, 9);
            (0..10).map(|_| t.ask()).collect()
        };
        let ys: Vec<f64> = {
            let mut t = RandomSearch::new(0.0, 1.0, 9);
            (0..10).map(|_| t.ask()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn best_tracks_minimum() {
        let mut t = RandomSearch::new(0.0, 10.0, 3);
        t.tell(1.0, 5.0);
        t.tell(2.0, -1.0);
        t.tell(3.0, 2.0);
        assert_eq!(t.best(), Some((2.0, -1.0)));
        assert_eq!(t.observations().len(), 3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_objective() {
        let mut t = RandomSearch::new(0.0, 1.0, 1);
        t.tell(0.5, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid domain")]
    fn rejects_bad_domain() {
        let _ = RandomSearch::new(1.0, 1.0, 0);
    }
}
