//! TSPLIB95 parser.
//!
//! Parses the symmetric-TSP subset of the TSPLIB95 format (Reinelt 1991),
//! covering every edge-weight type used by the instances the paper
//! evaluates on (14 ≤ N < 90): coordinate types `EUC_2D`, `CEIL_2D`,
//! `MAN_2D`, `MAX_2D`, `ATT`, `GEO`, and `EXPLICIT` matrices in
//! `FULL_MATRIX`, `UPPER_ROW`, `LOWER_ROW`, `UPPER_DIAG_ROW` and
//! `LOWER_DIAG_ROW` formats. Distance functions follow the TSPLIB95
//! specification exactly (including its integer rounding conventions).
//!
//! The genuine TSPLIB data files are not bundled (see DESIGN.md); this
//! parser lets users load them from disk, and the test-suite exercises it
//! with format-faithful fixture files.

use mathkit::Matrix;

use crate::tsp::TspInstance;
use crate::ProblemError;

/// Edge-weight types supported by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeWeightType {
    Euc2d,
    Ceil2d,
    Man2d,
    Max2d,
    Att,
    Geo,
    Explicit,
}

/// Matrix layouts for `EXPLICIT` edge weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeWeightFormat {
    FullMatrix,
    UpperRow,
    LowerRow,
    UpperDiagRow,
    LowerDiagRow,
}

/// Parses TSPLIB95 text into a [`TspInstance`].
///
/// # Errors
///
/// Returns [`ProblemError::Parse`] with a line number for malformed input
/// and [`ProblemError::InvalidInstance`] for structurally impossible data
/// (e.g. missing dimension).
///
/// # Examples
///
/// ```
/// use problems::tsplib::parse_tsplib;
/// let text = "NAME: tiny\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0.0 0.0\n2 3.0 0.0\n3 0.0 4.0\nEOF\n";
/// let inst = parse_tsplib(text)?;
/// assert_eq!(inst.num_cities(), 3);
/// assert_eq!(inst.distance(0, 1), 3.0);
/// assert_eq!(inst.distance(1, 2), 5.0);
/// # Ok::<(), problems::ProblemError>(())
/// ```
pub fn parse_tsplib(text: &str) -> Result<TspInstance, ProblemError> {
    let mut name = String::from("unnamed");
    let mut dimension: Option<usize> = None;
    let mut ew_type: Option<EdgeWeightType> = None;
    let mut ew_format: Option<EdgeWeightFormat> = None;
    let mut coords: Vec<(f64, f64)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();

    #[derive(PartialEq)]
    enum Section {
        Header,
        NodeCoords,
        EdgeWeights,
        Done,
    }
    let mut section = Section::Header;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("EOF") {
            section = Section::Done;
            continue;
        }
        match section {
            Section::Done => {}
            Section::Header => {
                if line.eq_ignore_ascii_case("NODE_COORD_SECTION") {
                    section = Section::NodeCoords;
                    continue;
                }
                if line.eq_ignore_ascii_case("EDGE_WEIGHT_SECTION") {
                    section = Section::EdgeWeights;
                    continue;
                }
                if line.eq_ignore_ascii_case("DISPLAY_DATA_SECTION") {
                    // Display coordinates are cosmetic; ignore the section by
                    // consuming until EOF keyword handled above.
                    section = Section::Done;
                    continue;
                }
                let (key, value) = split_header(line, lineno)?;
                match key.to_ascii_uppercase().as_str() {
                    "NAME" => name = value.to_string(),
                    "TYPE" => {
                        let v = value.to_ascii_uppercase();
                        if v != "TSP" {
                            return Err(ProblemError::Parse {
                                line: lineno,
                                message: format!("unsupported problem TYPE `{value}`"),
                            });
                        }
                    }
                    "COMMENT" => {}
                    "DIMENSION" => {
                        dimension =
                            Some(value.parse::<usize>().map_err(|e| ProblemError::Parse {
                                line: lineno,
                                message: format!("bad DIMENSION: {e}"),
                            })?);
                    }
                    "EDGE_WEIGHT_TYPE" => {
                        ew_type = Some(match value.to_ascii_uppercase().as_str() {
                            "EUC_2D" => EdgeWeightType::Euc2d,
                            "CEIL_2D" => EdgeWeightType::Ceil2d,
                            "MAN_2D" => EdgeWeightType::Man2d,
                            "MAX_2D" => EdgeWeightType::Max2d,
                            "ATT" => EdgeWeightType::Att,
                            "GEO" => EdgeWeightType::Geo,
                            "EXPLICIT" => EdgeWeightType::Explicit,
                            other => {
                                return Err(ProblemError::Parse {
                                    line: lineno,
                                    message: format!("unsupported EDGE_WEIGHT_TYPE `{other}`"),
                                })
                            }
                        });
                    }
                    "EDGE_WEIGHT_FORMAT" => {
                        ew_format = Some(match value.to_ascii_uppercase().as_str() {
                            "FULL_MATRIX" => EdgeWeightFormat::FullMatrix,
                            "UPPER_ROW" => EdgeWeightFormat::UpperRow,
                            "LOWER_ROW" => EdgeWeightFormat::LowerRow,
                            "UPPER_DIAG_ROW" => EdgeWeightFormat::UpperDiagRow,
                            "LOWER_DIAG_ROW" => EdgeWeightFormat::LowerDiagRow,
                            other => {
                                return Err(ProblemError::Parse {
                                    line: lineno,
                                    message: format!("unsupported EDGE_WEIGHT_FORMAT `{other}`"),
                                })
                            }
                        });
                    }
                    "NODE_COORD_TYPE" | "DISPLAY_DATA_TYPE" => {}
                    other => {
                        return Err(ProblemError::Parse {
                            line: lineno,
                            message: format!("unknown header keyword `{other}`"),
                        })
                    }
                }
            }
            Section::NodeCoords => {
                let mut parts = line.split_whitespace();
                let _index = parts.next().ok_or_else(|| ProblemError::Parse {
                    line: lineno,
                    message: "missing node index".to_string(),
                })?;
                let x: f64 = parse_num(parts.next(), lineno, "x coordinate")?;
                let y: f64 = parse_num(parts.next(), lineno, "y coordinate")?;
                coords.push((x, y));
            }
            Section::EdgeWeights => {
                for tok in line.split_whitespace() {
                    weights.push(tok.parse::<f64>().map_err(|e| ProblemError::Parse {
                        line: lineno,
                        message: format!("bad edge weight `{tok}`: {e}"),
                    })?);
                }
            }
        }
    }

    let n = dimension.ok_or_else(|| ProblemError::InvalidInstance {
        message: "missing DIMENSION".to_string(),
    })?;
    if n < 2 {
        return Err(ProblemError::InvalidInstance {
            message: format!("DIMENSION must be at least 2, got {n}"),
        });
    }
    let ew = ew_type.ok_or_else(|| ProblemError::InvalidInstance {
        message: "missing EDGE_WEIGHT_TYPE".to_string(),
    })?;

    let dist = match ew {
        EdgeWeightType::Explicit => {
            let fmt = ew_format.ok_or_else(|| ProblemError::InvalidInstance {
                message: "EXPLICIT weights require EDGE_WEIGHT_FORMAT".to_string(),
            })?;
            explicit_matrix(n, fmt, &weights)?
        }
        _ => {
            if coords.len() != n {
                return Err(ProblemError::InvalidInstance {
                    message: format!("expected {n} coordinates, found {}", coords.len()),
                });
            }
            coord_matrix(n, ew, &coords)
        }
    };
    TspInstance::from_matrix(&name, dist)
}

/// Reads and parses a TSPLIB file from disk.
///
/// # Errors
///
/// I/O failures are wrapped into [`ProblemError::InvalidInstance`]; parse
/// failures propagate from [`parse_tsplib`].
pub fn load_tsplib_file(path: &std::path::Path) -> Result<TspInstance, ProblemError> {
    let text = std::fs::read_to_string(path).map_err(|e| ProblemError::InvalidInstance {
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_tsplib(&text)
}

fn split_header(line: &str, lineno: usize) -> Result<(&str, &str), ProblemError> {
    match line.split_once(':') {
        Some((k, v)) => Ok((k.trim(), v.trim())),
        None => Err(ProblemError::Parse {
            line: lineno,
            message: format!("expected `KEY: VALUE`, got `{line}`"),
        }),
    }
}

fn parse_num(tok: Option<&str>, lineno: usize, what: &str) -> Result<f64, ProblemError> {
    let tok = tok.ok_or_else(|| ProblemError::Parse {
        line: lineno,
        message: format!("missing {what}"),
    })?;
    tok.parse::<f64>().map_err(|e| ProblemError::Parse {
        line: lineno,
        message: format!("bad {what} `{tok}`: {e}"),
    })
}

/// TSPLIB `nint` (round half away from zero, as in the reference C code).
fn nint(x: f64) -> f64 {
    (x + 0.5).floor()
}

fn coord_matrix(n: usize, ew: EdgeWeightType, coords: &[(f64, f64)]) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    // GEO precomputation: latitude/longitude in radians per TSPLIB spec.
    let geo: Vec<(f64, f64)> = if ew == EdgeWeightType::Geo {
        coords
            .iter()
            .map(|&(x, y)| {
                let to_rad = |v: f64| {
                    let deg = v.trunc();
                    let min = v - deg;
                    std::f64::consts::PI * (deg + 5.0 * min / 3.0) / 180.0
                };
                (to_rad(x), to_rad(y))
            })
            .collect()
    } else {
        Vec::new()
    };
    for i in 0..n {
        for j in (i + 1)..n {
            let (xi, yi) = coords[i];
            let (xj, yj) = coords[j];
            let dx = xi - xj;
            let dy = yi - yj;
            let d = match ew {
                EdgeWeightType::Euc2d => nint((dx * dx + dy * dy).sqrt()),
                EdgeWeightType::Ceil2d => (dx * dx + dy * dy).sqrt().ceil(),
                EdgeWeightType::Man2d => nint(dx.abs() + dy.abs()),
                EdgeWeightType::Max2d => nint(dx.abs()).max(nint(dy.abs())),
                EdgeWeightType::Att => {
                    let r = ((dx * dx + dy * dy) / 10.0).sqrt();
                    let t = nint(r);
                    if t < r {
                        t + 1.0
                    } else {
                        t
                    }
                }
                EdgeWeightType::Geo => {
                    const RRR: f64 = 6378.388;
                    let (lat_i, lon_i) = geo[i];
                    let (lat_j, lon_j) = geo[j];
                    let q1 = (lon_i - lon_j).cos();
                    let q2 = (lat_i - lat_j).cos();
                    let q3 = (lat_i + lat_j).cos();
                    (RRR * (0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)).acos() + 1.0).floor()
                }
                EdgeWeightType::Explicit => unreachable!("handled separately"),
            };
            m[(i, j)] = d;
            m[(j, i)] = d;
        }
    }
    m
}

fn explicit_matrix(
    n: usize,
    fmt: EdgeWeightFormat,
    weights: &[f64],
) -> Result<Matrix, ProblemError> {
    let expected = match fmt {
        EdgeWeightFormat::FullMatrix => n * n,
        EdgeWeightFormat::UpperRow | EdgeWeightFormat::LowerRow => n * (n - 1) / 2,
        EdgeWeightFormat::UpperDiagRow | EdgeWeightFormat::LowerDiagRow => n * (n + 1) / 2,
    };
    if weights.len() != expected {
        return Err(ProblemError::InvalidInstance {
            message: format!(
                "edge weight count {} does not match format ({expected} expected for n={n})",
                weights.len()
            ),
        });
    }
    let mut m = Matrix::zeros(n, n);
    let mut it = weights.iter().copied();
    // Fallible pull: exhaustion reports a truncated section as a typed
    // error. The count pre-check above makes this unreachable *today*,
    // but a serving process feeding hostile uploads through this parser
    // must never be one refactor away from a panic — these five sites
    // used to be `expect("length checked")`.
    let next = |it: &mut dyn Iterator<Item = f64>| -> Result<f64, ProblemError> {
        it.next().ok_or_else(|| ProblemError::InvalidInstance {
            message: format!("truncated EDGE_WEIGHT_SECTION: expected {expected} weights"),
        })
    };
    match fmt {
        EdgeWeightFormat::FullMatrix => {
            for i in 0..n {
                for j in 0..n {
                    let w = next(&mut it)?;
                    if i != j {
                        m[(i, j)] = w;
                    }
                }
            }
            // Symmetrise defensively (TSPLIB symmetric instances repeat the
            // triangle; tolerate tiny asymmetries by averaging).
            for i in 0..n {
                for j in (i + 1)..n {
                    let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                    m[(i, j)] = avg;
                    m[(j, i)] = avg;
                }
            }
        }
        EdgeWeightFormat::UpperRow => {
            for i in 0..n {
                for j in (i + 1)..n {
                    let w = next(&mut it)?;
                    m[(i, j)] = w;
                    m[(j, i)] = w;
                }
            }
        }
        EdgeWeightFormat::LowerRow => {
            for i in 1..n {
                for j in 0..i {
                    let w = next(&mut it)?;
                    m[(i, j)] = w;
                    m[(j, i)] = w;
                }
            }
        }
        EdgeWeightFormat::UpperDiagRow => {
            for i in 0..n {
                for j in i..n {
                    let w = next(&mut it)?;
                    if i != j {
                        m[(i, j)] = w;
                        m[(j, i)] = w;
                    }
                }
            }
        }
        EdgeWeightFormat::LowerDiagRow => {
            for i in 0..n {
                for j in 0..=i {
                    let w = next(&mut it)?;
                    if i != j {
                        m[(i, j)] = w;
                        m[(j, i)] = w;
                    }
                }
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euc2d_rounding() {
        let text = "NAME: t\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 1.4 0\n3 0 1.6\nEOF\n";
        let inst = parse_tsplib(text).unwrap();
        // nint(1.4)=1, nint(1.6)=2, nint(sqrt(1.96+2.56)=2.126)=2
        assert_eq!(inst.distance(0, 1), 1.0);
        assert_eq!(inst.distance(0, 2), 2.0);
        assert_eq!(inst.distance(1, 2), 2.0);
    }

    #[test]
    fn ceil2d() {
        let text = "NAME: t\nTYPE: TSP\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: CEIL_2D\nNODE_COORD_SECTION\n1 0 0\n2 1.1 0\nEOF\n";
        let inst = parse_tsplib(text).unwrap();
        assert_eq!(inst.distance(0, 1), 2.0);
    }

    #[test]
    fn man2d_and_max2d() {
        let man = "NAME: t\nTYPE: TSP\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: MAN_2D\nNODE_COORD_SECTION\n1 0 0\n2 3 4\nEOF\n";
        assert_eq!(parse_tsplib(man).unwrap().distance(0, 1), 7.0);
        let max = "NAME: t\nTYPE: TSP\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: MAX_2D\nNODE_COORD_SECTION\n1 0 0\n2 3 4\nEOF\n";
        assert_eq!(parse_tsplib(max).unwrap().distance(0, 1), 4.0);
    }

    #[test]
    fn att_pseudo_euclidean() {
        // dx=10, dy=0: r = sqrt(100/10) = sqrt(10) ≈ 3.1623; t = 3 < r → 4.
        let text = "NAME: t\nTYPE: TSP\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: ATT\nNODE_COORD_SECTION\n1 0 0\n2 10 0\nEOF\n";
        assert_eq!(parse_tsplib(text).unwrap().distance(0, 1), 4.0);
    }

    #[test]
    fn geo_distance_spec() {
        // Two points one degree of latitude apart on the same meridian:
        // the TSPLIB geodesic is ~111 km.
        let text = "NAME: t\nTYPE: TSP\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: GEO\nNODE_COORD_SECTION\n1 10.0 20.0\n2 11.0 20.0\nEOF\n";
        let d = parse_tsplib(text).unwrap().distance(0, 1);
        assert!((d - 111.0).abs() <= 1.5, "geo distance {d}");
    }

    #[test]
    fn explicit_full_matrix() {
        let text = "NAME: t\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 1 2\n1 0 3\n2 3 0\nEOF\n";
        let inst = parse_tsplib(text).unwrap();
        assert_eq!(inst.distance(0, 1), 1.0);
        assert_eq!(inst.distance(0, 2), 2.0);
        assert_eq!(inst.distance(1, 2), 3.0);
    }

    #[test]
    fn explicit_triangles_agree() {
        // The same 4-city metric in all four triangle layouts.
        let upper_row = "NAME: t\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n1 2 3\n4 5\n6\nEOF\n";
        let lower_row = "NAME: t\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: LOWER_ROW\nEDGE_WEIGHT_SECTION\n1\n2 4\n3 5 6\nEOF\n";
        let upper_diag = "NAME: t\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: UPPER_DIAG_ROW\nEDGE_WEIGHT_SECTION\n0 1 2 3\n0 4 5\n0 6\n0\nEOF\n";
        let lower_diag = "NAME: t\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW\nEDGE_WEIGHT_SECTION\n0\n1 0\n2 4 0\n3 5 6 0\nEOF\n";
        let a = parse_tsplib(upper_row).unwrap();
        for text in [lower_row, upper_diag, lower_diag] {
            let b = parse_tsplib(text).unwrap();
            assert_eq!(a.matrix(), b.matrix());
        }
        assert_eq!(a.distance(1, 3), 5.0);
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            parse_tsplib("DIMENSION: x\n"),
            Err(ProblemError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_tsplib("NAME: t\n"),
            Err(ProblemError::InvalidInstance { .. })
        ));
        let missing_fmt = "NAME: t\nTYPE: TSP\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_SECTION\n0 1 1 0\nEOF\n";
        assert!(parse_tsplib(missing_fmt).is_err());
        let bad_count = "NAME: t\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n1 2\nEOF\n";
        assert!(parse_tsplib(bad_count).is_err());
        assert!(matches!(
            parse_tsplib("TYPE: ATSP\n"),
            Err(ProblemError::Parse { .. })
        ));
    }

    #[test]
    fn truncated_edge_weight_section_is_an_error() {
        // Every EXPLICIT layout, truncated mid-section: a serving process
        // must get a typed parse error, never a panic.
        let cases = [
            ("FULL_MATRIX", "0 1 2\n1 0 3\n"),        // 6 of 9
            ("UPPER_ROW", "1 2\n"),                   // 2 of 6
            ("LOWER_ROW", "1\n2\n"),                  // 2 of 6
            ("UPPER_DIAG_ROW", "0 1 2 3\n0 4\n"),     // 6 of 10
            ("LOWER_DIAG_ROW", "0\n1 0\n2 4 0\n3\n"), // 7 of 10
        ];
        for (fmt, body) in cases {
            let text = format!(
                "NAME: t\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EXPLICIT\n\
                 EDGE_WEIGHT_FORMAT: {fmt}\nEDGE_WEIGHT_SECTION\n{body}EOF\n"
            );
            let result = std::panic::catch_unwind(|| parse_tsplib(&text));
            let parsed = result.unwrap_or_else(|_| panic!("{fmt}: parser panicked"));
            assert!(
                matches!(parsed, Err(ProblemError::InvalidInstance { .. })),
                "{fmt}: expected InvalidInstance, got {parsed:?}"
            );
        }
        // An over-long section is rejected too (count mismatch).
        let extra = "NAME: t\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n\
                     EDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n1 2 3 4\nEOF\n";
        assert!(parse_tsplib(extra).is_err());
    }

    #[test]
    fn nan_coordinates_rejected_cleanly() {
        // Rust's f64 parser accepts a literal `NaN`; the resulting
        // non-finite distances must surface as a clean error from
        // instance validation, not crash downstream consumers.
        let text = "NAME: t\nTYPE: TSP\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: EUC_2D\n\
                    NODE_COORD_SECTION\n1 NaN 0\n2 1 1\nEOF\n";
        assert!(matches!(
            parse_tsplib(text),
            Err(ProblemError::InvalidInstance { .. })
        ));
    }

    #[test]
    fn header_whitespace_tolerated() {
        let text =
            "NAME : padded\nTYPE : TSP\nDIMENSION : 2\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 0 5\nEOF\n";
        let inst = parse_tsplib(text).unwrap();
        assert_eq!(inst.name(), "padded");
        assert_eq!(inst.distance(0, 1), 5.0);
    }
}
