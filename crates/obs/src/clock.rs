//! Cheap monotonic nanosecond clock for stage timing.
//!
//! `Instant::now()` costs a `clock_gettime` call per read (~50 ns in a
//! container without a fast vDSO path) — with four reads per request
//! that alone would blow the documented ≤3% instrumentation budget. On
//! x86_64 with an invariant TSC this module reads the time-stamp
//! counter instead (a few ns) and converts ticks to nanoseconds with a
//! scale calibrated once against the OS clock. Everywhere else — or
//! when CPUID does not advertise an invariant TSC — it falls back to
//! `Instant` transparently.
//!
//! The epoch is arbitrary (process start-ish); only differences of
//! [`now_ns`] readings are meaningful, which is all [`Stopwatch`]
//! needs. Readings are monotone per core and, with an invariant TSC,
//! synchronized across cores by the hardware; cross-core skew on
//! non-conforming parts is absorbed by the callers' saturating
//! subtraction (a migration mid-stage reads as 0 ns, never as garbage).
//!
//! [`Stopwatch`]: crate::Stopwatch

use std::sync::OnceLock;
use std::time::Instant;

enum Source {
    /// rdtsc with a calibrated ticks→ns scale, relative to `base` ticks.
    #[cfg(target_arch = "x86_64")]
    Tsc { base: u64, ns_per_tick: f64 },
    /// Portable fallback: the OS monotonic clock.
    Fallback { base: Instant },
}

static SOURCE: OnceLock<Source> = OnceLock::new();

/// Monotonic nanoseconds since an arbitrary process-local epoch.
#[inline]
pub fn now_ns() -> u64 {
    match SOURCE.get_or_init(calibrate) {
        #[cfg(target_arch = "x86_64")]
        Source::Tsc { base, ns_per_tick } => {
            let ticks = rdtsc().saturating_sub(*base);
            (ticks as f64 * ns_per_tick) as u64
        }
        Source::Fallback { base } => {
            let d = base.elapsed();
            d.as_secs()
                .saturating_mul(1_000_000_000)
                .saturating_add(u64::from(d.subsec_nanos()))
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn rdtsc() -> u64 {
    // Safe on every x86_64 CPU; the only question (answered by CPUID at
    // calibration) is whether the counter ticks at a constant rate.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(target_arch = "x86_64")]
fn tsc_is_invariant() -> bool {
    // CPUID.80000007H:EDX[8] — "Invariant TSC": constant rate across
    // P-/C-state transitions, the precondition for tick→ns conversion.
    let max_ext = core::arch::x86_64::__cpuid(0x8000_0000).eax;
    max_ext >= 0x8000_0007 && core::arch::x86_64::__cpuid(0x8000_0007).edx & (1 << 8) != 0
}

/// One-time: decide the source and, for TSC, measure ticks-per-ns over
/// a short OS-clock window. Runs once per process (first stopwatch).
fn calibrate() -> Source {
    #[cfg(target_arch = "x86_64")]
    if tsc_is_invariant() {
        let t0 = Instant::now();
        let c0 = rdtsc();
        // A couple of milliseconds bounds the scale error by the OS
        // clock's jitter (~100 ns) over the window: < 0.01%.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let c1 = rdtsc();
        let elapsed = t0.elapsed().as_nanos() as f64;
        if c1 > c0 && elapsed > 0.0 {
            return Source::Tsc {
                base: c0,
                ns_per_tick: elapsed / (c1 - c0) as f64,
            };
        }
    }
    Source::Fallback {
        base: Instant::now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotone() {
        let mut prev = now_ns();
        for _ in 0..10_000 {
            let cur = now_ns();
            assert!(cur >= prev, "clock went backwards: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn now_ns_tracks_the_os_clock() {
        let t = Instant::now();
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let measured = (now_ns() - a) as f64;
        let os = t.elapsed().as_nanos() as f64;
        // 5% agreement over 20 ms is far looser than calibration error;
        // this catches a badly-scaled TSC outright.
        let ratio = measured / os;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "fast clock disagrees with OS clock: ratio {ratio}"
        );
    }
}
