//! Out-of-distribution study: apply a surrogate trained on small synthetic
//! instances to the structurally different benchmark set (the paper's
//! Fig.-4 setting), and optionally to genuine TSPLIB files.
//!
//! ```text
//! cargo run --release --example tsplib_study [path/to/instance.tsp ...]
//! ```
//!
//! With file arguments, each file is parsed with the TSPLIB95 parser and
//! pushed through the same study; without arguments the built-in
//! out-of-distribution set is used.

use qross_repro::problems::tsp::heuristics;
use qross_repro::problems::{realworld, tsplib, TspEncoding};
use qross_repro::qross::collect::observe;
use qross_repro::qross::pipeline::{Pipeline, PipelineConfig, A_DOMAIN};
use qross_repro::qross::strategy::{ComposedStrategy, ProposalStrategy};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};

fn main() -> Result<(), qross_repro::qross::QrossError> {
    let files: Vec<String> = std::env::args().skip(1).collect();
    let instances = if files.is_empty() {
        println!(
            "using the built-in out-of-distribution set (pass .tsp paths to use TSPLIB files)"
        );
        realworld::benchmark_subset(30)
    } else {
        files
            .iter()
            .map(|f| {
                tsplib::load_tsplib_file(std::path::Path::new(f))
                    .unwrap_or_else(|e| panic!("cannot load {f}: {e}"))
            })
            .collect()
    };

    let solver = SimulatedAnnealer::new(SaConfig {
        sweeps: 128,
        ..Default::default()
    });
    println!("training surrogate on the synthetic distribution (8–12 cities)…");
    let trained = Pipeline::new(PipelineConfig::quick()).try_run(&solver)?;
    let batch = 24;
    let trials = 5;

    println!(
        "\n{:<14} {:>6} {:>10} {:>12} {:>9}",
        "instance", "cities", "reference", "best found", "gap"
    );
    for instance in instances {
        let encoding = TspEncoding::preprocessed(instance);
        let features = trained.featurizer.extract(encoding.qubo_instance());
        let (_, reference) = heuristics::reference_tour(encoding.fitness_instance(), 8);
        let mut strategy = ComposedStrategy::new(&trained.surrogate, features, A_DOMAIN, batch, 3);
        let mut best = f64::INFINITY;
        for t in 0..trials {
            let a = strategy.propose(t);
            let outcome = observe(&encoding, &solver, a, batch, 700 + t as u64);
            strategy.observe(a, &outcome);
            if let Some(f) = outcome.best_fitness {
                best = best.min(f);
            }
        }
        let (best_str, gap_str) = if best.is_finite() {
            (
                format!("{best:.1}"),
                format!("{:+.1}%", (best / reference - 1.0) * 100.0),
            )
        } else {
            ("—".to_string(), "n/a".to_string())
        };
        println!(
            "{:<14} {:>6} {:>10.1} {:>12} {:>9}",
            encoding.fitness_instance().name(),
            encoding.num_cities(),
            reference,
            best_str,
            gap_str
        );
    }
    println!(
        "\n(sizes well outside the 8–12-city training range still get usable\n\
         parameters — the out-of-distribution generalisation of paper §5.2)"
    );
    Ok(())
}
