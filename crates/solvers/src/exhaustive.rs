//! Exact enumeration solver for small models.
//!
//! Enumerates all `2^n` assignments; the ground-truth oracle used by tests
//! and by the tiny end-to-end experiment configurations. Refuses models
//! beyond [`ExhaustiveSolver::MAX_VARS`] variables.

use qubo::QuboModel;

use crate::sample::{Sample, SampleSet};
use crate::Solver;

/// Exact brute-force solver (≤ 24 variables).
///
/// `sample` returns the `batch` *lowest-energy distinct assignments* in
/// ascending order, so `best()` is the exact ground state and the "batch"
/// mimics a perfectly-converged stochastic solver.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{exhaustive::ExhaustiveSolver, Solver};
/// let mut b = QuboBuilder::new(2);
/// b.add_linear(0, -1.0);
/// b.add_linear(1, 2.0);
/// let model = b.build();
/// let set = ExhaustiveSolver::new().sample(&model, 4, 0);
/// assert_eq!(set.best().unwrap().energy, -1.0);
/// assert_eq!(set.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSolver;

impl ExhaustiveSolver {
    /// Largest model size the solver will enumerate.
    pub const MAX_VARS: usize = 24;

    /// Creates the solver.
    pub fn new() -> Self {
        ExhaustiveSolver
    }

    /// Exact ground state of `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model exceeds [`ExhaustiveSolver::MAX_VARS`] variables.
    pub fn ground_state(&self, model: &QuboModel) -> Sample {
        let n = model.num_vars();
        assert!(
            n <= Self::MAX_VARS,
            "exhaustive enumeration limited to {} variables, got {n}",
            Self::MAX_VARS
        );
        let mut best_bits = 0u32;
        let mut best_e = f64::INFINITY;
        for bits in 0..(1u64 << n) as u32 {
            let x: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            let e = model.energy(&x);
            if e < best_e {
                best_e = e;
                best_bits = bits;
            }
        }
        Sample {
            assignment: (0..n).map(|k| ((best_bits >> k) & 1) as u8).collect(),
            energy: best_e,
        }
    }
}

impl Solver for ExhaustiveSolver {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn sample(&self, model: &QuboModel, batch: usize, _seed: u64) -> SampleSet {
        let n = model.num_vars();
        assert!(
            n <= Self::MAX_VARS,
            "exhaustive enumeration limited to {} variables, got {n}",
            Self::MAX_VARS
        );
        if batch == 0 {
            return SampleSet::new();
        }
        // Keep the `batch` lowest-energy assignments via a bounded
        // worst-first comparison (n is tiny, so a simple Vec is fine).
        let mut keep: Vec<(f64, u32)> = Vec::with_capacity(batch + 1);
        for bits in 0..(1u64 << n) as u32 {
            let x: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            let e = model.energy(&x);
            if keep.len() < batch {
                keep.push((e, bits));
                keep.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            } else if e < keep[batch - 1].0 {
                keep[batch - 1] = (e, bits);
                keep.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            }
        }
        SampleSet::from_samples(
            keep.into_iter()
                .map(|(e, bits)| Sample {
                    assignment: (0..n).map(|k| ((bits >> k) & 1) as u8).collect(),
                    energy: e,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::QuboBuilder;

    #[test]
    fn ground_state_known() {
        // E = -x0 + x1 - 2 x0 x1 → min at [1,1] = -1 + 1 - 2 = -2
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, -1.0);
        b.add_linear(1, 1.0);
        b.add_quadratic(0, 1, -2.0);
        let m = b.build();
        let g = ExhaustiveSolver::new().ground_state(&m);
        assert_eq!(g.assignment, vec![1, 1]);
        assert_eq!(g.energy, -2.0);
    }

    #[test]
    fn batch_is_k_lowest() {
        let mut b = QuboBuilder::new(3);
        b.add_linear(0, 1.0);
        b.add_linear(1, 2.0);
        b.add_linear(2, 4.0);
        let m = b.build();
        let set = ExhaustiveSolver::new().sample(&m, 3, 0);
        assert_eq!(set.energies(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn batch_larger_than_space() {
        let m = QuboBuilder::new(1).build();
        let set = ExhaustiveSolver::new().sample(&m, 10, 0);
        assert_eq!(set.len(), 2); // only two assignments exist
    }

    #[test]
    fn zero_batch() {
        let m = QuboBuilder::new(2).build();
        assert!(ExhaustiveSolver::new().sample(&m, 0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn too_large_model_rejected() {
        let m = QuboBuilder::new(25).build();
        let _ = ExhaustiveSolver::new().ground_state(&m);
    }
}
