//! Surrogate training dataset: (instance features, A) → (Pf, Eavg, Estd).
//!
//! Implements the normalisation guidance of §3.3 ("pre-processing
//! techniques, e.g. shifting or scaling, move A of different problems to
//! the same order of magnitude... Normalisation helps the convergence of
//! the training curve"): features are z-scored per column, the relaxation
//! parameter enters as `ln A` (the collection schedule is log-spaced) and
//! is z-scored, and both energy targets are z-scored with scalers that are
//! stored alongside the model so predictions can be mapped back to energy
//! units.

use mathkit::stats::ZScore;
use mathkit::Matrix;
use serde::{Deserialize, Serialize};

use crate::collect::SolverObservation;
use crate::QrossError;

/// One training row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRow {
    /// instance feature vector
    pub features: Vec<f64>,
    /// relaxation parameter (raw, not logged)
    pub a: f64,
    /// observed probability of feasibility
    pub pf: f64,
    /// observed batch mean energy
    pub e_avg: f64,
    /// observed batch energy standard deviation
    pub e_std: f64,
}

/// A collection of training rows with a fixed feature width.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SurrogateDataset {
    rows: Vec<DatasetRow>,
    feat_dim: usize,
}

impl SurrogateDataset {
    /// Creates an empty dataset for `feat_dim`-wide features.
    pub fn new(feat_dim: usize) -> Self {
        SurrogateDataset {
            rows: Vec::new(),
            feat_dim,
        }
    }

    /// Feature width.
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows view.
    pub fn rows(&self) -> &[DatasetRow] {
        &self.rows
    }

    /// Adds one row.
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from the dataset's or any value
    /// is non-finite.
    pub fn push(&mut self, row: DatasetRow) {
        assert_eq!(row.features.len(), self.feat_dim, "feature width mismatch");
        assert!(
            row.features.iter().all(|v| v.is_finite())
                && row.a.is_finite()
                && row.a > 0.0
                && row.pf.is_finite()
                && row.e_avg.is_finite()
                && row.e_std.is_finite(),
            "non-finite or non-positive dataset entry"
        );
        self.rows.push(row);
    }

    /// Builds a dataset from pre-assembled rows, validating every entry.
    ///
    /// The fallible sibling of repeated [`SurrogateDataset::push`] calls,
    /// used by decoders that must reject malformed input with a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::BadDataset`] for a feature-width mismatch or
    /// any non-finite value (or non-positive `a`).
    pub fn try_from_rows(feat_dim: usize, rows: Vec<DatasetRow>) -> Result<Self, QrossError> {
        for (i, row) in rows.iter().enumerate() {
            if row.features.len() != feat_dim {
                return Err(QrossError::BadDataset {
                    message: format!(
                        "row {i}: {} features, expected {feat_dim}",
                        row.features.len()
                    ),
                });
            }
            let finite = row.features.iter().all(|v| v.is_finite())
                && row.a.is_finite()
                && row.a > 0.0
                && row.pf.is_finite()
                && row.e_avg.is_finite()
                && row.e_std.is_finite();
            if !finite {
                return Err(QrossError::BadDataset {
                    message: format!("row {i}: non-finite or non-positive entry"),
                });
            }
        }
        Ok(SurrogateDataset { rows, feat_dim })
    }

    /// Adds a whole instance profile (shared features, many observations).
    pub fn push_profile(&mut self, features: &[f64], profile: &[SolverObservation]) {
        for obs in profile {
            self.push(DatasetRow {
                features: features.to_vec(),
                a: obs.a,
                pf: obs.pf,
                e_avg: obs.e_avg,
                e_std: obs.e_std,
            });
        }
    }

    /// Deterministic train/validation split: every `k`-th row (by a seeded
    /// shuffle) goes to validation.
    ///
    /// # Panics
    ///
    /// Panics if `val_fraction` is outside `[0, 1)`.
    pub fn split(&self, val_fraction: f64, seed: u64) -> (SurrogateDataset, SurrogateDataset) {
        assert!(
            (0.0..1.0).contains(&val_fraction),
            "validation fraction must be in [0, 1)"
        );
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        let mut rng = mathkit::rng::derive_rng(seed, 0x5F17);
        order.shuffle(&mut rng);
        let n_val = (self.rows.len() as f64 * val_fraction).round() as usize;
        let mut train = SurrogateDataset::new(self.feat_dim);
        let mut val = SurrogateDataset::new(self.feat_dim);
        for (k, &idx) in order.iter().enumerate() {
            if k < n_val {
                val.rows.push(self.rows[idx].clone());
            } else {
                train.rows.push(self.rows[idx].clone());
            }
        }
        (train, val)
    }
}

/// Normalisation parameters fitted on a training dataset and stored with
/// the surrogate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scalers {
    /// per-feature-column z-scores
    pub features: Vec<ZScore>,
    /// z-score of `ln A`
    pub log_a: ZScore,
    /// z-score of the mean-energy target
    pub e_avg: ZScore,
    /// z-score of the energy-std target
    pub e_std: ZScore,
}

impl Scalers {
    /// Fits scalers on a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::BadDataset`] for an empty dataset.
    pub fn fit(dataset: &SurrogateDataset) -> Result<Self, QrossError> {
        if dataset.is_empty() {
            return Err(QrossError::BadDataset {
                message: "cannot fit scalers on an empty dataset".to_string(),
            });
        }
        let d = dataset.feat_dim();
        let mut features = Vec::with_capacity(d);
        for c in 0..d {
            let col: Vec<f64> = dataset.rows().iter().map(|r| r.features[c]).collect();
            features.push(ZScore::fit(&col));
        }
        let log_a: Vec<f64> = dataset.rows().iter().map(|r| r.a.ln()).collect();
        let e_avg: Vec<f64> = dataset.rows().iter().map(|r| r.e_avg).collect();
        let e_std: Vec<f64> = dataset.rows().iter().map(|r| r.e_std).collect();
        Ok(Scalers {
            features,
            log_a: ZScore::fit(&log_a),
            e_avg: ZScore::fit(&e_avg),
            e_std: ZScore::fit(&e_std),
        })
    }

    /// Builds the normalised network input `[z(features)…, z(ln a)]`.
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from the fitted width or
    /// `a <= 0`.
    pub fn input_row(&self, features: &[f64], a: f64) -> Vec<f64> {
        assert_eq!(
            features.len(),
            self.features.len(),
            "feature width mismatch"
        );
        assert!(a > 0.0, "relaxation parameter must be positive");
        let mut row: Vec<f64> = features
            .iter()
            .zip(self.features.iter())
            .map(|(v, z)| z.transform(*v))
            .collect();
        row.push(self.log_a.transform(a.ln()));
        row
    }

    /// Network input width (features + 1 for the parameter).
    pub fn input_dim(&self) -> usize {
        self.features.len() + 1
    }
}

/// Matrices ready for the neural trainer.
#[derive(Debug, Clone)]
pub struct TrainingMatrices {
    /// normalised inputs, one row per dataset row
    pub x: Matrix,
    /// `Pf` targets (1 column)
    pub y_pf: Matrix,
    /// normalised `(Eavg, Estd)` targets (2 columns)
    pub y_energy: Matrix,
}

/// Converts a dataset into training matrices using fitted scalers.
///
/// # Errors
///
/// Returns [`QrossError::BadDataset`] for an empty dataset.
pub fn to_matrices(
    dataset: &SurrogateDataset,
    scalers: &Scalers,
) -> Result<TrainingMatrices, QrossError> {
    if dataset.is_empty() {
        return Err(QrossError::BadDataset {
            message: "no rows to convert".to_string(),
        });
    }
    let n = dataset.len();
    let d = scalers.input_dim();
    let mut x = Matrix::zeros(n, d);
    let mut y_pf = Matrix::zeros(n, 1);
    let mut y_energy = Matrix::zeros(n, 2);
    for (r, row) in dataset.rows().iter().enumerate() {
        let input = scalers.input_row(&row.features, row.a);
        x.row_slice_mut(r).copy_from_slice(&input);
        y_pf[(r, 0)] = row.pf;
        y_energy[(r, 0)] = scalers.e_avg.transform(row.e_avg);
        y_energy[(r, 1)] = scalers.e_std.transform(row.e_std);
    }
    Ok(TrainingMatrices { x, y_pf, y_energy })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> SurrogateDataset {
        let mut ds = SurrogateDataset::new(2);
        for i in 0..20 {
            let a = 0.5 + i as f64 * 0.25;
            ds.push(DatasetRow {
                features: vec![i as f64, 10.0 - i as f64],
                a,
                pf: (i as f64 / 19.0).clamp(0.0, 1.0),
                e_avg: 100.0 - i as f64,
                e_std: 5.0 + (i % 3) as f64,
            });
        }
        ds
    }

    #[test]
    fn push_validates() {
        let mut ds = SurrogateDataset::new(2);
        ds.push(DatasetRow {
            features: vec![1.0, 2.0],
            a: 1.0,
            pf: 0.5,
            e_avg: 0.0,
            e_std: 1.0,
        });
        assert_eq!(ds.len(), 1);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn push_rejects_wrong_width() {
        let mut ds = SurrogateDataset::new(2);
        ds.push(DatasetRow {
            features: vec![1.0],
            a: 1.0,
            pf: 0.5,
            e_avg: 0.0,
            e_std: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn push_rejects_nan() {
        let mut ds = SurrogateDataset::new(1);
        ds.push(DatasetRow {
            features: vec![f64::NAN],
            a: 1.0,
            pf: 0.5,
            e_avg: 0.0,
            e_std: 1.0,
        });
    }

    #[test]
    fn split_partitions() {
        let ds = toy_dataset();
        let (train, val) = ds.split(0.25, 3);
        assert_eq!(train.len() + val.len(), ds.len());
        assert_eq!(val.len(), 5);
        // Deterministic.
        let (t2, v2) = ds.split(0.25, 3);
        assert_eq!(train, t2);
        assert_eq!(val, v2);
        // Different seed → different split.
        let (t3, _) = ds.split(0.25, 4);
        assert_ne!(train, t3);
    }

    #[test]
    fn scalers_standardise() {
        let ds = toy_dataset();
        let sc = Scalers::fit(&ds).unwrap();
        let m = to_matrices(&ds, &sc).unwrap();
        assert_eq!(m.x.shape(), (20, 3));
        assert_eq!(m.y_pf.shape(), (20, 1));
        assert_eq!(m.y_energy.shape(), (20, 2));
        // Column means ≈ 0 for standardised inputs.
        let sums = m.x.sum_rows();
        for c in 0..3 {
            assert!(sums[(0, c)].abs() / 20.0 < 1e-9, "column {c} not centred");
        }
        // Pf targets are untouched probabilities.
        assert!(m.y_pf.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn input_row_roundtrips_scaling() {
        let ds = toy_dataset();
        let sc = Scalers::fit(&ds).unwrap();
        let row = &ds.rows()[7];
        let input = sc.input_row(&row.features, row.a);
        assert_eq!(input.len(), sc.input_dim());
        // Energy scalers invert correctly.
        let z = sc.e_avg.transform(row.e_avg);
        assert!((sc.e_avg.inverse(z) - row.e_avg).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_errors() {
        let ds = SurrogateDataset::new(3);
        assert!(matches!(
            Scalers::fit(&ds),
            Err(QrossError::BadDataset { .. })
        ));
    }

    #[test]
    fn push_profile_replicates_features() {
        let mut ds = SurrogateDataset::new(1);
        let profile = vec![
            crate::collect::SolverObservation {
                a: 1.0,
                pf: 0.0,
                e_avg: 2.0,
                e_std: 0.5,
                best_fitness: None,
                min_energy: 1.0,
            },
            crate::collect::SolverObservation {
                a: 2.0,
                pf: 1.0,
                e_avg: 3.0,
                e_std: 0.25,
                best_fitness: Some(3.0),
                min_energy: 2.5,
            },
        ];
        ds.push_profile(&[9.0], &profile);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.rows()[0].features, vec![9.0]);
        assert_eq!(ds.rows()[1].a, 2.0);
    }
}
