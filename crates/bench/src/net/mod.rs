//! Nonblocking multiplexed serving — the network layer of `qross-serve
//! --listen`.
//!
//! One thread runs an event loop ([`serve_event_loop`]) multiplexing
//! every connection over the shared [`ServeEngine`] worker pool:
//!
//! * [`sys::Poller`] — epoll via a minimal FFI shim (`poll(2)` fallback),
//!   no tokio, no new dependencies;
//! * per-connection sans-IO state — a [`SessionCodec`] fed by
//!   nonblocking reads (sniffing NDJSON vs QBIN from the connection's
//!   first bytes, so both protocols share one listen port), a
//!   [`ResponseEmitter`] holding staged responses in request order, and
//!   a write buffer flushed as the socket drains;
//! * a [`sys::WakePipe`] self-pipe: engine workers complete a prediction
//!   and wake the poller through the job's completion hook, so the loop
//!   never spins and never parks a thread per request;
//! * backpressure end to end: a connection stops being read the moment
//!   its staged-response window ([`EventLoopConfig::pipeline_depth`]) or
//!   write buffer ([`EventLoopConfig::write_buf_bytes`]) fills, accepts
//!   pause at the connection cap ([`EventLoopConfig::max_conns`]), and
//!   persistent `accept` failures back off exponentially
//!   ([`AcceptBackoff`]) instead of spinning hot;
//! * observability: the loop registers its own counters on the engine's
//!   metrics registry — readiness events dispatched, backpressure read
//!   pauses, accepts and accept backoffs — all no-ops under `obs-off`;
//! * graceful drain: a shutdown flag stops accepting, finishes every
//!   in-flight response, then closes.
//!
//! Determinism contract: scheduling here chooses *when* bytes move,
//! never *what* they are — each connection's responses stay in request
//! order (the emitter), and prediction bytes are bit-identical to a
//! sequential stdio replay of the same per-connection log (the engine's
//! batching contract). CI enforces both.

pub mod sys;

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use qross::serve::{CompletionNotify, ServeEngine};

use crate::protocol::{
    stage_item, ResponseEmitter, SessionCodec, WireFormat, WireItem, PIPELINE_DEPTH,
};
use sys::{Interest, PollEvent, Poller, WakePipe};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_CONN_BASE: u64 = 2;

/// First retry delay after a failed `accept`.
pub const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Ceiling for the accept retry delay.
pub const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Bounded exponential backoff for `accept` failures. A persistent
/// error (EMFILE being the classic) used to spin the accept loop at
/// 100% CPU printing warnings; with this, retries double from
/// [`ACCEPT_BACKOFF_MIN`] to [`ACCEPT_BACKOFF_MAX`] and reset on the
/// next successful accept. Shared by the event loop (as a poll
/// deadline) and the threaded oracle path (as a sleep).
#[derive(Debug)]
pub struct AcceptBackoff {
    next: Duration,
}

impl Default for AcceptBackoff {
    fn default() -> Self {
        Self::new()
    }
}

impl AcceptBackoff {
    pub fn new() -> Self {
        AcceptBackoff {
            next: ACCEPT_BACKOFF_MIN,
        }
    }

    /// Call on a successful accept: the next failure starts small again.
    pub fn reset(&mut self) {
        self.next = ACCEPT_BACKOFF_MIN;
    }

    /// Call on a failed accept: returns how long to wait before
    /// retrying, doubling up to the ceiling.
    pub fn failure(&mut self) -> Duration {
        let delay = self.next;
        self.next = (self.next * 2).min(ACCEPT_BACKOFF_MAX);
        delay
    }
}

/// Event-loop tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct EventLoopConfig {
    /// accept cap: connections beyond this wait in the kernel backlog
    /// (0 = default 1024)
    pub max_conns: usize,
    /// staged-but-unwritten responses per connection before its reads
    /// pause (0 = [`PIPELINE_DEPTH`])
    pub pipeline_depth: usize,
    /// buffered unwritten response bytes per connection before its
    /// reads pause (0 = 256 KiB)
    pub write_buf_bytes: usize,
    /// cooperative shutdown: set the flag and the loop stops accepting,
    /// drains every in-flight response, closes every connection, and
    /// returns
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl EventLoopConfig {
    fn max_conns(&self) -> usize {
        if self.max_conns == 0 {
            1024
        } else {
            self.max_conns
        }
    }

    fn pipeline_depth(&self) -> usize {
        if self.pipeline_depth == 0 {
            PIPELINE_DEPTH
        } else {
            self.pipeline_depth
        }
    }

    fn write_buf_bytes(&self) -> usize {
        if self.write_buf_bytes == 0 {
            256 * 1024
        } else {
            self.write_buf_bytes
        }
    }
}

/// The event loop's own counters, registered on the engine's metrics
/// registry so one scrape covers the serving pipeline end to end.
/// Recording is a relaxed atomic add (nothing at all under `obs-off`);
/// registration happens once, at loop start.
struct NetObs {
    /// poller readiness events dispatched (listener + wake + sockets)
    readiness_events: Arc<obs::Counter>,
    /// connections whose reads were paused by backpressure (staged
    /// window or write buffer full) — transitions, not poll turns
    backpressure_pauses: Arc<obs::Counter>,
    /// connections accepted
    accepted: Arc<obs::Counter>,
    /// accept failures that parked the listener with a backoff delay
    accept_backoffs: Arc<obs::Counter>,
}

impl NetObs {
    fn new(registry: &obs::Registry) -> NetObs {
        NetObs {
            readiness_events: registry.counter(
                "qross_net_readiness_events_total",
                "poller readiness events dispatched by the serving event loop",
            ),
            backpressure_pauses: registry.counter(
                "qross_net_backpressure_pauses_total",
                "connection reads paused because the staged-response window or write buffer filled",
            ),
            accepted: registry.counter(
                "qross_net_accepted_total",
                "connections accepted by the serving event loop",
            ),
            accept_backoffs: registry.counter(
                "qross_net_accept_backoffs_total",
                "accept failures that parked the listener with an exponential backoff",
            ),
        }
    }
}

/// Minimal blocking HTTP/1.1 endpoint for `qross-serve
/// --metrics-listen`: `GET /metrics` answers the Prometheus text
/// exposition (format 0.0.4) covering the engine's registry (serve
/// pipeline, online trainer, event loop) plus the process-global one
/// (solver sweeps, per-family request counters). One connection at a
/// time — scrapes are rare and tiny, and keeping this loop trivial
/// means it cannot perturb the serving path it observes. Each scrape
/// calls [`ServeEngine::metrics`] first so sampled gauges (queue depth,
/// generation, replay depth) are fresh at render time.
pub fn serve_metrics_http(engine: &ServeEngine, listener: TcpListener) {
    let mut backoff = AcceptBackoff::new();
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _peer)) => {
                backoff.reset();
                stream
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                let delay = backoff.failure();
                eprintln!("warning: metrics accept failed: {e} (retrying in {delay:?})");
                std::thread::sleep(delay);
                continue;
            }
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        // Read the request head (scrapes are a handful of lines).
        let mut head = Vec::new();
        let mut buf = [0u8; 1024];
        while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => head.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        let request_line = head
            .split(|&b| b == b'\r' || b == b'\n')
            .next()
            .unwrap_or_default();
        let mut parts = request_line.split(|&b| b == b' ');
        let method = parts.next().unwrap_or_default();
        let path = parts.next().unwrap_or_default();
        let (status, body) = if method != b"GET" {
            ("405 Method Not Allowed", "method not allowed\n".to_string())
        } else if path == b"/metrics" || path == b"/" {
            // Refresh sampled gauges, then render both registries.
            let _ = engine.metrics();
            (
                "200 OK",
                obs::prom::render(&[engine.obs().registry(), obs::global()]),
            )
        } else {
            ("404 Not Found", "try /metrics\n".to_string())
        };
        let response = format!(
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        );
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.flush();
    }
}

/// One multiplexed connection's state.
struct Conn {
    stream: TcpStream,
    codec: SessionCodec,
    emitter: ResponseEmitter,
    /// completion hook attached to this connection's staged requests
    notify: CompletionNotify,
    /// serialized response bytes not yet accepted by the socket
    out: Vec<u8>,
    /// prefix of `out` already written
    written: usize,
    /// read side reached EOF (or shutdown drain forced it)
    eof: bool,
    /// EOF fully processed: the codec's final unterminated line (if
    /// any) has been staged
    input_done: bool,
    /// interest currently registered with the poller
    registered: Interest,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.out.len() - self.written
    }

    /// Whether reads are paused by backpressure: the client must drain
    /// responses before we accept more of its requests.
    fn read_paused(&self, cfg: &EventLoopConfig) -> bool {
        self.emitter.in_flight() >= cfg.pipeline_depth()
            || self.unflushed() >= cfg.write_buf_bytes()
    }

    fn desired_interest(&self, cfg: &EventLoopConfig) -> Interest {
        Interest {
            readable: !self.eof && !self.read_paused(cfg),
            writable: self.unflushed() > 0,
        }
    }

    fn finished(&self) -> bool {
        self.input_done && self.emitter.is_idle() && self.unflushed() == 0
    }
}

/// What [`EventLoop::drive`] decided about a connection.
enum Fate {
    Keep,
    Close,
}

/// Runs the nonblocking serving loop until shutdown (forever, without a
/// shutdown flag). See the module docs for the architecture.
///
/// # Errors
///
/// Fatal loop errors only: poller or wake-pipe construction/wait
/// failures. Per-connection I/O errors close that connection and keep
/// serving.
pub fn serve_event_loop(
    engine: &ServeEngine,
    listener: TcpListener,
    config: EventLoopConfig,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    let wake = WakePipe::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(wake.read_fd(), TOKEN_WAKE, Interest::READ)?;
    let mut el = EventLoop {
        engine,
        config,
        poller,
        wake,
        completed: Arc::new(Mutex::new(Vec::new())),
        conns: Vec::new(),
        live: 0,
        listener,
        listener_active: true,
        backoff: AcceptBackoff::new(),
        backoff_until: None,
        draining: false,
        obs: NetObs::new(engine.obs().registry()),
    };
    el.run()
}

struct EventLoop<'a> {
    engine: &'a ServeEngine,
    config: EventLoopConfig,
    poller: Poller,
    wake: WakePipe,
    /// tokens of connections whose engine jobs completed; pushed by
    /// worker threads through each request's completion hook, drained
    /// by the loop after a wake
    completed: Arc<Mutex<Vec<u64>>>,
    conns: Vec<Option<Conn>>,
    live: usize,
    listener: TcpListener,
    listener_active: bool,
    backoff: AcceptBackoff,
    backoff_until: Option<Instant>,
    draining: bool,
    obs: NetObs,
}

fn lock_completed(completed: &Mutex<Vec<u64>>) -> MutexGuard<'_, Vec<u64>> {
    match completed.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl EventLoop<'_> {
    fn run(&mut self) -> std::io::Result<()> {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            // Cooperative shutdown: stop accepting, force-drain every
            // connection (no new reads; in-flight responses complete).
            if !self.draining
                && self
                    .config
                    .shutdown
                    .as_ref()
                    .is_some_and(|flag| flag.load(Ordering::SeqCst))
            {
                self.draining = true;
                self.park_listener();
                for idx in 0..self.conns.len() {
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.eof = true;
                    }
                    self.step(idx);
                }
            }
            if self.draining && self.live == 0 {
                return Ok(());
            }

            // Re-arm the listener once an accept backoff expires or
            // capacity frees up.
            if !self.listener_active && !self.draining && self.live < self.config.max_conns() {
                let expired = self.backoff_until.is_none_or(|t| Instant::now() >= t);
                if expired {
                    self.backoff_until = None;
                    self.poller.register(
                        self.listener.as_raw_fd(),
                        TOKEN_LISTENER,
                        Interest::READ,
                    )?;
                    self.listener_active = true;
                }
            }

            let timeout_ms: i32 = if let Some(deadline) = self.backoff_until {
                deadline
                    .saturating_duration_since(Instant::now())
                    .as_millis()
                    .min(1000) as i32
                    + 1
            } else if self.config.shutdown.is_some() {
                // Bounded sleep so a shutdown request is noticed
                // promptly even with zero traffic.
                25
            } else {
                -1
            };
            self.poller.wait(&mut events, timeout_ms)?;
            self.obs.readiness_events.add(events.len() as u64);

            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        self.wake.drain();
                        let mut ready = std::mem::take(&mut *lock_completed(&self.completed));
                        ready.sort_unstable();
                        ready.dedup();
                        for token in ready {
                            self.step((token - TOKEN_CONN_BASE) as usize);
                        }
                    }
                    token => self.step((token - TOKEN_CONN_BASE) as usize),
                }
            }
        }
    }

    fn park_listener(&mut self) {
        if self.listener_active {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_active = false;
        }
    }

    /// Accepts every pending connection up to the cap; parks the
    /// listener (with backoff) on persistent accept errors instead of
    /// spinning.
    fn accept_ready(&mut self) {
        loop {
            if self.live >= self.config.max_conns() {
                // At capacity: park the listener (level-triggered
                // polling would otherwise spin); re-armed when a
                // connection closes.
                self.park_listener();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.backoff.reset();
                    if stream.set_nonblocking(true).is_err() {
                        continue; // drop this connection, keep accepting
                    }
                    let idx = match self.conns.iter().position(Option::is_none) {
                        Some(idx) => idx,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    let token = TOKEN_CONN_BASE + idx as u64;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue; // drop this connection, keep accepting
                    }
                    self.conns[idx] = Some(Conn {
                        stream,
                        codec: SessionCodec::new(),
                        emitter: ResponseEmitter::new(),
                        notify: self.conn_notify(token),
                        out: Vec::new(),
                        written: 0,
                        eof: false,
                        input_done: false,
                        registered: Interest::READ,
                    });
                    self.live += 1;
                    self.obs.accepted.inc();
                    // The client may have sent requests before we
                    // registered; serving them now saves a loop turn.
                    self.step(idx);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Regression note: this arm used to loop straight
                    // back into accept — a persistent failure (EMFILE
                    // et al.) spun at 100% CPU printing warnings. Now
                    // the listener parks for a bounded, exponentially
                    // growing delay.
                    let delay = self.backoff.failure();
                    self.obs.accept_backoffs.inc();
                    eprintln!("warning: accept failed: {e} (retrying in {delay:?})");
                    self.park_listener();
                    self.backoff_until = Some(Instant::now() + delay);
                    return;
                }
            }
        }
    }

    /// The completion hook this connection's staged requests carry:
    /// records the connection as pumpable and wakes the poller.
    fn conn_notify(&self, token: u64) -> CompletionNotify {
        let completed = Arc::clone(&self.completed);
        let wake = self.wake.clone();
        Arc::new(move || {
            lock_completed(&completed).push(token);
            wake.wake();
        })
    }

    /// Runs one connection's state machine to quiescence and applies
    /// the outcome (interest update or close). Safe to call with a
    /// stale index — a recycled or empty slot is a no-op (a spurious
    /// pump on a recycled slot can only emit responses that were
    /// genuinely ready).
    fn step(&mut self, idx: usize) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        match self.drive(&mut conn) {
            Fate::Close => {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
                self.live -= 1;
                if self.live < self.config.max_conns()
                    && !self.listener_active
                    && !self.draining
                    && self.backoff_until.is_none()
                {
                    // Capacity freed: resume accepting.
                    if self
                        .poller
                        .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                        .is_ok()
                    {
                        self.listener_active = true;
                    }
                }
            }
            Fate::Keep => {
                let want = conn.desired_interest(&self.config);
                if want != conn.registered {
                    if conn.registered.readable && !want.readable && !conn.eof {
                        // Pause *transition* (not per poll turn): the
                        // staged window or write buffer just filled.
                        self.obs.backpressure_pauses.inc();
                    }
                    let fd = conn.stream.as_raw_fd();
                    if self
                        .poller
                        .modify(fd, TOKEN_CONN_BASE + idx as u64, want)
                        .is_err()
                    {
                        self.live -= 1;
                        return;
                    }
                    conn.registered = want;
                }
                self.conns[idx] = Some(conn);
            }
        }
    }

    /// The per-connection state machine: one bounded pass of read →
    /// decode → stage → pump → flush. Deliberately NOT a
    /// loop-until-quiescent: a pipelining client whose jobs complete as
    /// fast as the workers drain them would otherwise make "progress"
    /// indefinitely and pin the loop thread on one connection, starving
    /// every other socket. Whatever this pass leaves undone re-arms
    /// through level-triggered readiness or a completion wake. Work per
    /// pass is bounded by the pipelining window. `Close` means the
    /// stream should be dropped.
    fn drive(&mut self, conn: &mut Conn) -> Fate {
        let mut buf = [0u8; 16 * 1024];
        // Read while the socket has bytes and backpressure allows —
        // bounded: each staged request fills the pipelining window.
        while !conn.eof && !conn.read_paused(&self.config) {
            match conn.stream.read(&mut buf) {
                Ok(0) => conn.eof = true,
                Ok(n) => {
                    conn.codec.feed(&buf[..n]);
                    // Stage eagerly: staging is what advances the
                    // `read_paused` window.
                    self.stage_ready(conn);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        self.stage_ready(conn);
        // Serialize every head-of-line-complete response in the
        // connection's sniffed wire format (while undecided the emitter
        // is necessarily empty, so the default is never observable).
        let wire = conn.codec.wire().unwrap_or(WireFormat::Ndjson);
        if conn
            .emitter
            .pump(self.engine.obs(), wire, &mut conn.out)
            .is_err()
        {
            return Fate::Close;
        }
        // Flush as much as the socket will take.
        while conn.unflushed() > 0 {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => return Fate::Close,
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        if conn.written == conn.out.len() {
            conn.out.clear();
            conn.written = 0;
        } else if conn.written > 64 * 1024 {
            conn.out.drain(..conn.written);
            conn.written = 0;
        }
        // Flushing may have freed window space for lines still buffered
        // in the codec: stage (and serialize) them before recomputing
        // interest, so a fully-buffered session keeps moving even if
        // the socket never becomes readable again.
        self.stage_ready(conn);
        let wire = conn.codec.wire().unwrap_or(WireFormat::Ndjson);
        if conn
            .emitter
            .pump(self.engine.obs(), wire, &mut conn.out)
            .is_err()
        {
            return Fate::Close;
        }
        if conn.finished() {
            Fate::Close
        } else {
            Fate::Keep
        }
    }

    /// Stages decoded items (either wire format) while the pipelining
    /// window has room; processes the codec's EOF tail exactly once.
    fn stage_ready(&mut self, conn: &mut Conn) {
        while !conn.read_paused(&self.config) {
            if let Some(item) = conn.codec.next_item() {
                let fatal = matches!(&item, WireItem::FrameError(e) if e.is_fatal());
                if let Some(staged) = stage_item(self.engine, item, Some(Arc::clone(&conn.notify)))
                {
                    conn.emitter.push(staged);
                }
                if fatal {
                    // Framing is lost (bad magic / unknown version): the
                    // reject is staged; stop reading and close once it —
                    // and everything before it — has flushed.
                    conn.eof = true;
                    conn.input_done = true;
                    return;
                }
                continue;
            }
            if conn.eof && !conn.input_done {
                conn.input_done = true;
                if let Some(item) = conn.codec.finish() {
                    if let Some(staged) =
                        stage_item(self.engine, item, Some(Arc::clone(&conn.notify)))
                    {
                        conn.emitter.push(staged);
                    }
                }
            }
            return;
        }
    }
}
