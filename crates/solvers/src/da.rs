//! Digital Annealer simulator.
//!
//! Implements the algorithm of Aramon et al., *Physics-inspired optimization
//! for QUBO problems using a digital annealer* (Frontiers in Physics 2019) —
//! the published algorithm behind the Fujitsu Digital Annealer the paper
//! uses as its primary solver. Two features distinguish it from plain SA:
//!
//! 1. **Parallel trial.** At every Monte-Carlo step *all* `n` single-bit
//!    flips are evaluated concurrently; one of the accepted flips is applied
//!    uniformly at random. Because the acceptance test runs on every
//!    neighbour, the effective acceptance probability per step is much
//!    higher than SA's single-candidate test.
//! 2. **Dynamic offset.** When no flip is accepted, an escape offset
//!    `E_off` is increased by `offset_step` and is subtracted from the
//!    energy deltas of the next step, letting the chain climb out of deep
//!    local minima; any accepted move resets `E_off` to zero.
//!
//! The hardware runs each replica on dedicated silicon; here replicas map
//! onto CPU threads.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::{derive_rng, derive_seed};
use qubo::{QuboModel, QuboState, ReplicaBatch};

use crate::parallel::parallel_map_with;
use crate::sample::{Sample, SampleSet};
use crate::schedule::BetaSchedule;
use crate::Solver;

/// Per-worker scratch for the lane-batched replica loop.
struct DaScratch<'m> {
    replicas: ReplicaBatch<'m>,
    rngs: Vec<StdRng>,
    e_off: Vec<f64>,
    accepted: Vec<Vec<usize>>,
    best_e: Vec<f64>,
    best_x: Vec<Vec<u8>>,
}

/// Configuration for [`DigitalAnnealer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaConfig {
    /// number of Monte-Carlo steps per replica (each step evaluates all
    /// `n` candidate flips)
    pub steps: usize,
    /// optional explicit β range; `None` auto-scales from the model
    pub beta_range: Option<(f64, f64)>,
    /// escape-offset increment applied when a step accepts no flip, as a
    /// fraction of the model's maximum absolute coefficient
    pub offset_step_fraction: f64,
}

impl Default for DaConfig {
    fn default() -> Self {
        DaConfig {
            steps: 2000,
            beta_range: None,
            offset_step_fraction: 0.1,
        }
    }
}

/// CPU simulator of the Fujitsu Digital Annealer algorithm.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{da::DigitalAnnealer, Solver};
/// let mut b = QuboBuilder::new(3);
/// b.add_linear(0, -2.0);
/// b.add_quadratic(0, 1, 1.0);
/// let model = b.build();
/// let set = DigitalAnnealer::default().sample(&model, 4, 7);
/// assert_eq!(set.best().unwrap().energy, -2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DigitalAnnealer {
    config: DaConfig,
}

impl DigitalAnnealer {
    /// Creates a solver with the given configuration.
    pub fn new(config: DaConfig) -> Self {
        DigitalAnnealer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DaConfig {
        &self.config
    }

    /// Runs one replica in a reused scratch. The parallel-trial loop reads
    /// the maintained flip-delta vector (O(1) per candidate); the one
    /// committed flip is O(degree); incumbent tracking uses the cached
    /// energy — no full `model.energy()` call inside the step loop.
    ///
    /// This is the reference trajectory [`DigitalAnnealer::run_chunk`]
    /// reproduces bit-for-bit, lane by lane.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn run_replica(
        &self,
        state: &mut QuboState<'_>,
        best_x: &mut Vec<u8>,
        accepted: &mut Vec<usize>,
        schedule: &BetaSchedule,
        seed: u64,
    ) -> Sample {
        let mut rng = derive_rng(seed, 0xDA);
        let model = state.model();
        let n = model.num_vars();
        state.randomize(&mut rng);
        best_x.clear();
        best_x.extend_from_slice(state.assignment());
        let mut best_e = state.energy();
        let offset_step = self.config.offset_step_fraction * model.max_abs_coefficient().max(1e-12);
        let mut e_off = 0.0_f64;
        for beta in schedule.iter() {
            accepted.clear();
            // Parallel trial: every candidate flip is tested against the
            // offset-shifted Metropolis criterion.
            for i in 0..n {
                let delta = state.flip_delta(i) - e_off;
                let ok = if delta <= 0.0 {
                    true
                } else {
                    let exponent = delta * beta;
                    exponent < 40.0 && rng.gen::<f64>() < (-exponent).exp()
                };
                if ok {
                    accepted.push(i);
                }
            }
            if accepted.is_empty() {
                // Dynamic offset: lower the barrier for the next step.
                e_off += offset_step;
                continue;
            }
            e_off = 0.0;
            let pick = accepted[rng.gen_range(0..accepted.len())];
            state.flip(pick);
            if state.energy() < best_e {
                best_e = state.energy();
                best_x.copy_from_slice(state.assignment());
            }
        }
        Sample {
            assignment: best_x.clone(),
            energy: best_e,
        }
    }

    /// Runs replicas `first .. first + count` in lockstep lanes of one
    /// [`ReplicaBatch`], returning their samples in replica order.
    ///
    /// Each lane consumes its own RNG stream in exactly
    /// [`DigitalAnnealer::run_replica`]'s order (candidate draws in
    /// ascending `i`, then the pick draw), so every sample is
    /// bit-identical to the sequential path at any lane width. The DA
    /// parallel trial is the natural lockstep shape: the per-step scan of
    /// all `n` candidates walks variable-major SoA rows
    /// (`flip_deltas_at(i)` is `lanes` contiguous f64), turning `count`
    /// separate delta sweeps into one unit-stride pass that serves every
    /// replica in the chunk, on top of the shared-CSR cache rebuild.
    fn run_chunk(
        &self,
        scratch: &mut DaScratch<'_>,
        first: usize,
        count: usize,
        schedule: &BetaSchedule,
        seed: u64,
    ) -> Vec<Sample> {
        let rb = &mut scratch.replicas;
        let model = rb.model();
        let n = rb.num_vars();
        scratch.rngs.clear();
        for r in 0..count {
            let rs = derive_seed(seed, (first + r) as u64);
            scratch.rngs.push(derive_rng(rs, 0xDA));
        }
        for (r, rng) in scratch.rngs.iter_mut().enumerate() {
            rb.randomize_lane(r, rng);
        }
        // One shared CSR traversal rebuilds all lanes' caches.
        rb.rebuild_all();
        debug_assert!(count <= scratch.best_x.len());
        scratch.best_e.clear();
        for r in 0..count {
            scratch.best_e.push(rb.energy(r));
            rb.copy_assignment(r, &mut scratch.best_x[r]);
        }
        let offset_step = self.config.offset_step_fraction * model.max_abs_coefficient().max(1e-12);
        scratch.e_off.clear();
        scratch.e_off.resize(count, 0.0);
        for beta in schedule.iter() {
            for acc in &mut scratch.accepted[..count] {
                acc.clear();
            }
            // Parallel trial, lockstep across lanes: variable-major scan
            // over contiguous lane rows; per lane the candidate order (and
            // hence RNG consumption) is ascending `i`, as in run_replica.
            for i in 0..n {
                let row = rb.flip_deltas_at(i);
                for (r, &lane_delta) in row.iter().enumerate().take(count) {
                    let delta = lane_delta - scratch.e_off[r];
                    let ok = if delta <= 0.0 {
                        true
                    } else {
                        let exponent = delta * beta;
                        exponent < 40.0 && scratch.rngs[r].gen::<f64>() < (-exponent).exp()
                    };
                    if ok {
                        scratch.accepted[r].push(i);
                    }
                }
            }
            for r in 0..count {
                let accepted = &scratch.accepted[r];
                if accepted.is_empty() {
                    // Dynamic offset: lower the barrier for the next step.
                    scratch.e_off[r] += offset_step;
                    continue;
                }
                scratch.e_off[r] = 0.0;
                let pick = accepted[scratch.rngs[r].gen_range(0..accepted.len())];
                rb.flip(r, pick);
                if rb.energy(r) < scratch.best_e[r] {
                    scratch.best_e[r] = rb.energy(r);
                    rb.copy_assignment(r, &mut scratch.best_x[r]);
                }
            }
        }
        (0..count)
            .map(|r| Sample {
                assignment: scratch.best_x[r].clone(),
                energy: scratch.best_e[r],
            })
            .collect()
    }
}

impl Solver for DigitalAnnealer {
    fn name(&self) -> &str {
        "da"
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        let sw = obs::Stopwatch::start();
        if model.num_vars() == 0 {
            return SampleSet::from_samples(
                (0..batch)
                    .map(|_| Sample {
                        assignment: Vec::new(),
                        energy: model.offset(),
                    })
                    .collect(),
            );
        }
        let schedule = match self.config.beta_range {
            Some((hot, cold)) => BetaSchedule::geometric(hot, cold, self.config.steps.max(1)),
            None => BetaSchedule::auto(model, self.config.steps.max(1)),
        };
        // Replicas advance in lockstep lanes (bit-identical to sequential
        // replicas at any width — see `run_chunk`); chunks of `lanes`
        // replicas fan out across workers.
        let lanes = crate::replica_lanes();
        let chunks = batch.div_ceil(lanes.max(1));
        let nested = parallel_map_with(
            chunks,
            || DaScratch {
                replicas: ReplicaBatch::new(model, lanes),
                rngs: Vec::with_capacity(lanes),
                e_off: Vec::with_capacity(lanes),
                accepted: vec![Vec::with_capacity(model.num_vars()); lanes],
                best_e: Vec::with_capacity(lanes),
                best_x: vec![Vec::new(); lanes],
            },
            |scratch, chunk| {
                let first = chunk * lanes;
                let count = lanes.min(batch - first);
                self.run_chunk(scratch, first, count, &schedule, seed)
            },
        );
        let set = SampleSet::from_samples(nested.into_iter().flatten().collect());
        // Parallel trial: every Monte-Carlo step evaluates all `n`
        // candidate flips, so one step is one full sweep of deltas.
        let steps = schedule.steps() as u64;
        crate::metrics::record_sample(
            "da",
            sw.elapsed_ns(),
            steps * batch as u64,
            steps * model.num_vars() as u64 * batch as u64,
        );
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::QuboBuilder;

    fn frustrated8() -> QuboModel {
        // Ring of 8 with alternating couplings plus fields: multiple local
        // minima, good escape-offset exercise.
        let mut b = QuboBuilder::new(8);
        for i in 0..8 {
            b.add_linear(i, if i % 2 == 0 { 0.5 } else { -0.5 });
            let j = (i + 1) % 8;
            b.add_quadratic(i, j, if i % 2 == 0 { 1.0 } else { -1.2 });
        }
        b.build()
    }

    fn exact_minimum(model: &QuboModel) -> f64 {
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        for bits in 0..(1u32 << n) {
            let x: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            best = best.min(model.energy(&x));
        }
        best
    }

    #[test]
    fn finds_ground_state() {
        let m = frustrated8();
        let truth = exact_minimum(&m);
        let set = DigitalAnnealer::default().sample(&m, 8, 11);
        assert!((set.best().unwrap().energy - truth).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = frustrated8();
        let solver = DigitalAnnealer::default();
        assert_eq!(solver.sample(&m, 4, 9), solver.sample(&m, 4, 9));
    }

    #[test]
    fn energies_consistent() {
        let m = frustrated8();
        for s in DigitalAnnealer::default().sample(&m, 6, 2).iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn escape_offset_escapes_local_minimum() {
        // Deep double well: x=[0,0] is local (energy 0 barriers around),
        // global is x=[1,1] at -1 but the path through [1,0]/[0,1] costs +5.
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, 5.0);
        b.add_linear(1, 5.0);
        b.add_quadratic(0, 1, -11.0);
        let m = b.build();
        // Cold start config: very few steps at high β would trap plain SA
        // starting at [0,0]; the dynamic offset must still escape.
        let solver = DigitalAnnealer::new(DaConfig {
            steps: 400,
            beta_range: Some((5.0, 50.0)),
            offset_step_fraction: 0.2,
        });
        let set = solver.sample(&m, 8, 3);
        assert_eq!(set.best().unwrap().energy, -1.0);
    }

    /// Lane width is a pure performance knob: any width produces the
    /// sample set bit-identically, and each sample equals a sequential
    /// `run_replica` with the same per-replica seed.
    #[test]
    fn lane_width_invariant_and_matches_run_replica() {
        let m = frustrated8();
        let solver = DigitalAnnealer::new(DaConfig {
            steps: 200,
            ..Default::default()
        });
        let baseline = solver.sample(&m, 11, 42);
        for width in [1usize, 3, 8, 16] {
            crate::set_replica_lanes(width);
            let got = solver.sample(&m, 11, 42);
            crate::set_replica_lanes(0);
            assert_eq!(got, baseline, "width {width} diverged");
        }
        let schedule = BetaSchedule::auto(&m, 200);
        for (replica, sample) in baseline.iter().enumerate() {
            let mut state = QuboState::new(&m, vec![0; 8]);
            let mut best_x = Vec::new();
            let mut accepted = Vec::new();
            let want = solver.run_replica(
                &mut state,
                &mut best_x,
                &mut accepted,
                &schedule,
                mathkit::rng::derive_seed(42, replica as u64),
            );
            assert_eq!(sample.assignment, want.assignment, "replica {replica}");
            assert_eq!(
                sample.energy.to_bits(),
                want.energy.to_bits(),
                "replica {replica}"
            );
        }
    }

    #[test]
    fn zero_steps_returns_initial_states() {
        let m = frustrated8();
        let solver = DigitalAnnealer::new(DaConfig {
            steps: 0,
            ..Default::default()
        });
        let set = solver.sample(&m, 4, 1);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn empty_model() {
        let m = QuboBuilder::new(0).build();
        let set = DigitalAnnealer::default().sample(&m, 2, 1);
        assert_eq!(set.len(), 2);
    }
}
