//! Distance-matrix pre-processing (paper §3.3 and appendix E).
//!
//! Two transformations are applied before building the QUBO:
//!
//! 1. **Scaling** ([`normalize_mean_distance`]): divides all distances by
//!    the mean off-diagonal distance, so the relaxation parameter `A` of
//!    every instance lives on the same order of magnitude — "shifting or
//!    scaling moves A of different problems to the same order of magnitude
//!    so that learning and prediction become easier".
//!
//! 2. **MVODM** ([`Mvodm`]): *Minimizing the Variance Of the Distance
//!    Matrix* (Wang, Rao & Hong 2018). Following Held–Karp, replacing
//!    `d'_ij = d_ij − π_i − π_j` changes every tour's length by the same
//!    constant `−2·Σ π_i`, so the optimal tour is unchanged, while choosing
//!    `π` to minimise the variance of the transformed matrix flattens the
//!    landscape for greedy-style search. The optimal `π` solves the
//!    two-way additive-effects least-squares problem
//!    `d_ij ≈ μ + π_i + π_j`, fitted here by coordinate descent.

use serde::{Deserialize, Serialize};

use mathkit::Matrix;

use super::TspInstance;

/// Scales an instance so its mean off-diagonal distance is 1.
///
/// Returns the scaled instance and the factor `f` applied (so original
/// distances are `scaled / f`). A degenerate all-zero instance is returned
/// unchanged with factor 1.
pub fn normalize_mean_distance(instance: &TspInstance) -> (TspInstance, f64) {
    let mean = instance.mean_distance();
    if mean <= 0.0 {
        return (instance.clone(), 1.0);
    }
    let factor = 1.0 / mean;
    (instance.scaled(factor), factor)
}

/// Fitted MVODM potentials.
///
/// # Examples
///
/// ```
/// use problems::tsp::preprocess::Mvodm;
/// use problems::TspInstance;
/// let inst = TspInstance::from_coords("t", &[(0.0, 0.0), (1.0, 0.0), (0.5, 2.0), (3.0, 1.0)]);
/// let mv = Mvodm::fit(&inst);
/// let flat = mv.transform(&inst);
/// // Every tour shifts by the same constant: optimal tour preserved.
/// let shift = 2.0 * mv.potentials().iter().sum::<f64>();
/// let tour = [0, 2, 1, 3];
/// assert!((flat.tour_length(&tour) - (inst.tour_length(&tour) - shift)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mvodm {
    potentials: Vec<f64>,
}

impl Mvodm {
    /// Fits the variance-minimising potentials by coordinate descent on
    /// the least-squares objective `Σ_{i≠j} (d_ij − μ − π_i − π_j)²`.
    pub fn fit(instance: &TspInstance) -> Self {
        let n = instance.num_cities();
        if n < 3 {
            return Mvodm {
                potentials: vec![0.0; n],
            };
        }
        let d = instance.matrix();
        let mut pi = vec![0.0_f64; n];
        let denom = (n - 1) as f64;
        for _sweep in 0..200 {
            // μ given π.
            let mut mu = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        mu += d[(i, j)] - pi[i] - pi[j];
                    }
                }
            }
            mu /= (n * (n - 1)) as f64;
            // π_i given μ and the other π (Gauss–Seidel update).
            let mut max_change = 0.0_f64;
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    if j != i {
                        acc += d[(i, j)] - mu - pi[j];
                    }
                }
                let new = acc / denom;
                max_change = max_change.max((new - pi[i]).abs());
                pi[i] = new;
            }
            if max_change < 1e-12 {
                break;
            }
        }
        Mvodm { potentials: pi }
    }

    /// The fitted per-city potentials `π`.
    pub fn potentials(&self) -> &[f64] {
        &self.potentials
    }

    /// Applies `d'_ij = d_ij − π_i − π_j` (diagonal left at zero).
    ///
    /// # Panics
    ///
    /// Panics if the instance size differs from the fitted size.
    pub fn transform(&self, instance: &TspInstance) -> TspInstance {
        let n = instance.num_cities();
        assert_eq!(
            n,
            self.potentials.len(),
            "MVODM fitted on a different instance size"
        );
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    out[(i, j)] = instance.distance(i, j) - self.potentials[i] - self.potentials[j];
                }
            }
        }
        TspInstance::from_matrix(&format!("{}_mvodm", instance.name()), out)
            .expect("MVODM transform preserves symmetry")
    }
}

/// Off-diagonal variance of a distance matrix — the quantity MVODM
/// minimises; exposed for tests and diagnostics.
pub fn off_diagonal_variance(instance: &TspInstance) -> f64 {
    let n = instance.num_cities();
    if n < 2 {
        return 0.0;
    }
    let mut values = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                values.push(instance.distance(i, j));
            }
        }
    }
    mathkit::stats::variance_population(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::rng::seeded_rng;
    use rand::Rng;

    fn random_instance(n: usize, seed: u64) -> TspInstance {
        let mut rng = seeded_rng(seed);
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        TspInstance::from_coords("rand", &coords)
    }

    #[test]
    fn normalization_sets_mean_to_one() {
        let inst = random_instance(12, 3);
        let (norm, factor) = normalize_mean_distance(&inst);
        assert!((norm.mean_distance() - 1.0).abs() < 1e-9);
        assert!((factor * inst.mean_distance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_degenerate_instance() {
        let inst = TspInstance::from_coords("same", &[(1.0, 1.0), (1.0, 1.0)]);
        let (norm, factor) = normalize_mean_distance(&inst);
        assert_eq!(factor, 1.0);
        assert_eq!(norm, inst);
    }

    #[test]
    fn mvodm_reduces_variance() {
        for seed in 0..5 {
            let inst = random_instance(15, seed);
            let before = off_diagonal_variance(&inst);
            let flat = Mvodm::fit(&inst).transform(&inst);
            let after = off_diagonal_variance(&flat);
            assert!(
                after <= before + 1e-9,
                "seed {seed}: variance rose {before} -> {after}"
            );
            // On generic Euclidean instances the reduction is strict.
            assert!(after < before, "seed {seed}: no strict reduction");
        }
    }

    #[test]
    fn mvodm_shifts_every_tour_by_same_constant() {
        let inst = random_instance(8, 7);
        let mv = Mvodm::fit(&inst);
        let flat = mv.transform(&inst);
        let shift = 2.0 * mv.potentials().iter().sum::<f64>();
        let tours = [
            vec![0usize, 1, 2, 3, 4, 5, 6, 7],
            vec![3, 1, 4, 0, 7, 5, 2, 6],
            vec![7, 6, 5, 4, 3, 2, 1, 0],
        ];
        for t in &tours {
            let orig = inst.tour_length(t);
            let new = flat.tour_length(t);
            assert!((orig - new - shift).abs() < 1e-9, "tour {t:?}");
        }
    }

    #[test]
    fn mvodm_preserves_optimal_tour_exhaustively() {
        // 6 cities: enumerate all tours and confirm the argmin is fixed.
        let inst = random_instance(6, 11);
        let flat = Mvodm::fit(&inst).transform(&inst);
        let mut best_orig = (f64::INFINITY, Vec::new());
        let mut best_flat = (f64::INFINITY, Vec::new());
        let mut perm = vec![0usize, 1, 2, 3, 4, 5];
        // Heap's algorithm over the 5! permutations fixing city 0 first.
        fn visit(
            k: usize,
            perm: &mut Vec<usize>,
            inst: &TspInstance,
            flat: &TspInstance,
            best_orig: &mut (f64, Vec<usize>),
            best_flat: &mut (f64, Vec<usize>),
        ) {
            if k == 1 {
                let lo = inst.tour_length(perm);
                if lo < best_orig.0 {
                    *best_orig = (lo, perm.clone());
                }
                let lf = flat.tour_length(perm);
                if lf < best_flat.0 {
                    *best_flat = (lf, perm.clone());
                }
                return;
            }
            for i in 1..k {
                visit(k - 1, perm, inst, flat, best_orig, best_flat);
                if k.is_multiple_of(2) {
                    perm.swap(i, k - 1);
                } else {
                    perm.swap(1, k - 1);
                }
            }
            visit(k - 1, perm, inst, flat, best_orig, best_flat);
        }
        visit(6, &mut perm, &inst, &flat, &mut best_orig, &mut best_flat);
        // Same optimal tour up to rotation/reflection: compare canonical
        // tour length instead of the permutation itself.
        assert!((inst.tour_length(&best_flat.1) - best_orig.0).abs() < 1e-9);
    }

    #[test]
    fn mvodm_tiny_instances_are_noops() {
        let two = TspInstance::from_coords("two", &[(0.0, 0.0), (1.0, 0.0)]);
        let mv = Mvodm::fit(&two);
        assert_eq!(mv.potentials(), &[0.0, 0.0]);
        assert_eq!(mv.transform(&two).matrix(), two.matrix());
    }

    #[test]
    #[should_panic(expected = "different instance size")]
    fn mvodm_size_mismatch_panics() {
        let a = random_instance(5, 1);
        let b = random_instance(6, 2);
        let _ = Mvodm::fit(&a).transform(&b);
    }
}
