//! Bounded keep-the-slowest event log: the serving engine records every
//! completed request's span here, and the log retains the N with the
//! largest total duration. The `trace` op dumps it.
//!
//! Admission is guarded by a lock-free floor (the smallest total
//! currently retained once the log is full): the common case — a request
//! faster than everything already logged — is one relaxed load and no
//! lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span::{Span, STAGES};
use crate::ENABLED;

/// One retained slow request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// the request's trace ID (minted at decode)
    pub trace_id: u64,
    /// request op (`"predict"`, `"instance"`, …)
    pub op: &'static str,
    /// tenant the request was admitted under (empty = default tenant)
    pub tenant: String,
    /// sum of the per-stage durations below
    pub total_ns: u64,
    /// nanoseconds per stage, [`crate::Stage::ALL`] order
    pub stage_ns: [u64; STAGES],
}

/// Bounded log of the slowest requests seen so far.
pub struct TraceLog {
    cap: usize,
    /// smallest retained total once full; 0 while the log has room
    floor: AtomicU64,
    entries: Mutex<Vec<TraceEntry>>,
}

impl TraceLog {
    /// A log retaining the `cap` slowest requests (`cap` 0 disables it).
    pub fn new(cap: usize) -> Self {
        TraceLog {
            cap,
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(cap.min(256))),
        }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Offers a completed span; it is retained iff it is among the `cap`
    /// slowest observed. `op` names the request kind, `tenant` the
    /// admitting tenant.
    pub fn observe(&self, span: &Span, op: &'static str, tenant: &str) {
        if !ENABLED || self.cap == 0 {
            return;
        }
        let total = span.total_ns();
        // Fast path: full log and this request is faster than the
        // slowest retained set — no lock, no allocation.
        if total < self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if entries.len() == self.cap {
            // Evict the current minimum if this one is slower.
            let (min_idx, min_total) = entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.total_ns))
                .min_by_key(|&(_, t)| t)
                .expect("cap > 0 and full");
            if total <= min_total {
                self.floor
                    .store(min_total.saturating_add(1), Ordering::Relaxed);
                return;
            }
            entries.swap_remove(min_idx);
        }
        entries.push(TraceEntry {
            trace_id: span.trace_id(),
            op,
            tenant: tenant.to_string(),
            total_ns: total,
            stage_ns: span.stages(),
        });
        if entries.len() == self.cap {
            let new_floor = entries.iter().map(|e| e.total_ns).min().unwrap_or(0);
            self.floor
                .store(new_floor.saturating_add(1), Ordering::Relaxed);
        }
    }

    /// The retained entries, slowest first (ties broken by trace ID so
    /// dumps are stable).
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let mut out = entries.clone();
        out.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.trace_id.cmp(&b.trace_id))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;

    fn span_with_total(ns: u64) -> Span {
        let mut s = Span::begin();
        s.record(Stage::Forward, ns);
        s
    }

    #[test]
    fn keeps_the_n_slowest() {
        if !ENABLED {
            return;
        }
        let log = TraceLog::new(3);
        for ns in [10, 50, 30, 90, 20, 70, 40] {
            log.observe(&span_with_total(ns), "predict", "");
        }
        let totals: Vec<u64> = log.snapshot().iter().map(|e| e.total_ns).collect();
        assert_eq!(totals, vec![90, 70, 50]);
    }

    #[test]
    fn zero_capacity_disables() {
        let log = TraceLog::new(0);
        log.observe(&span_with_total(100), "predict", "");
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_carries_stages() {
        if !ENABLED {
            return;
        }
        let log = TraceLog::new(8);
        let mut s = Span::begin();
        s.record(Stage::Decode, 1);
        s.record(Stage::Encode, 2);
        log.observe(&s, "metrics", "acme");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].op, "metrics");
        assert_eq!(snap[0].tenant, "acme");
        assert_eq!(snap[0].stage_ns[Stage::Decode as usize], 1);
        assert_eq!(snap[0].stage_ns[Stage::Encode as usize], 2);
        assert_eq!(snap[0].total_ns, 3);
    }

    #[test]
    fn floor_rejects_fast_requests_once_full() {
        if !ENABLED {
            return;
        }
        let log = TraceLog::new(2);
        log.observe(&span_with_total(100), "predict", "");
        log.observe(&span_with_total(200), "predict", "");
        log.observe(&span_with_total(5), "predict", "");
        let totals: Vec<u64> = log.snapshot().iter().map(|e| e.total_ns).collect();
        assert_eq!(totals, vec![200, 100]);
    }
}
