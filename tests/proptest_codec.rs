//! Property tests for the sans-IO session codec: the request-line
//! sequence a byte stream decodes to — and the response bytes a full
//! session produces — are invariant under how the stream is chunked.
//! One-byte reads, jumbo frames, splits inside a CRLF or a UTF-8
//! sequence: the codec must see through all of them, because the
//! nonblocking event loop feeds it whatever the kernel hands a read.

use std::io::{BufRead, Cursor, Read};
use std::sync::Arc;

use proptest::prelude::*;

use bench::protocol::{bin, serve_connection, CodecLine, SessionCodec, WireFormat, WireItem};
use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::pipeline::{PipelineConfig, TrainedQross};
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross_repro::qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross_repro::qross::StatisticalFeaturizer;

/// Feature width of [`StatisticalFeaturizer`].
const FEAT_DIM: usize = 24;

/// Seed-derived surrogate over the statistical featurizer's 24 features
/// (same shape as the serving integration suite: real code paths, no
/// training time).
fn test_engine(config: ServeConfig) -> ServeEngine {
    let zscore = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    let surrogate = Surrogate::from_state(state).expect("consistent state");
    let bundle = Arc::new(TrainedQross {
        surrogate,
        featurizer: Box::new(StatisticalFeaturizer::new()),
        train_encodings: Vec::new(),
        test_encodings: Vec::new(),
        dataset_len: 0,
        report: TrainReport::default(),
        config: PipelineConfig::micro(),
    });
    ServeEngine::new(ServeModel::Bundle(bundle), config)
}

/// Decodes `bytes` split at the given cut points, returning every item
/// including the EOF tail.
fn decode_chunked(bytes: &[u8], cuts: &[usize], limit: usize) -> Vec<CodecLine> {
    let mut codec = SessionCodec::with_limit(limit);
    let mut items = Vec::new();
    let mut start = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&bytes.len())) {
        let cut = cut.min(bytes.len());
        if cut <= start {
            continue;
        }
        codec.feed(&bytes[start..cut]);
        while let Some(item) = codec.next_item() {
            items.push(expect_line(item));
        }
        start = cut;
    }
    if let Some(item) = codec.finish() {
        items.push(expect_line(item));
    }
    items
}

/// These streams never start with the QBIN magic, so every decoded item
/// must come out of the NDJSON half of the sniffing codec.
fn expect_line(item: WireItem<'_>) -> CodecLine {
    match item {
        WireItem::Line(line) => line,
        other => panic!("NDJSON stream decoded a non-line item: {other:?}"),
    }
}

/// A `BufRead` whose `fill_buf` hands out the stream in preset chunks —
/// the blocking driver then feeds the codec exactly those splits.
struct ChunkedReader {
    data: Vec<u8>,
    /// sorted chunk boundaries (positions in `data`)
    cuts: Vec<usize>,
    pos: usize,
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let chunk = self.fill_buf()?;
        let n = chunk.len().min(buf.len());
        buf[..n].copy_from_slice(&chunk[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for ChunkedReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let end = self
            .cuts
            .iter()
            .copied()
            .find(|&c| c > self.pos && c < self.data.len())
            .unwrap_or(self.data.len());
        Ok(&self.data[self.pos..end])
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

/// Byte-stream fragments covering every decoding hazard: plain lines,
/// CRLF, blank lines, multi-byte UTF-8 (splittable mid-character),
/// invalid UTF-8, and lines longer than the test cap.
fn fragment_strategy() -> impl Strategy<Value = Vec<u8>> {
    (0u8..7, 0usize..40).prop_map(|(kind, len)| match kind {
        0 => format!("{{\"id\": {len}, \"op\": \"info\"}}\n").into_bytes(),
        1 => format!("line-{len}\r\n").into_bytes(),
        2 => b"\n".to_vec(),
        3 => format!("caf\u{e9}-{len}\u{2603}\n").into_bytes(),
        4 => {
            let mut v = vec![b'x'; len];
            v.extend_from_slice(&[0xFF, 0xFE, b'\n']);
            v
        }
        5 => {
            let mut v = vec![b'y'; 97 + len]; // over the 64-byte test cap
            v.push(b'\n');
            v
        }
        _ => format!("tail-{len}").into_bytes(), // unterminated (EOF tail)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunking of any hazard mix decodes to the all-at-once item
    /// sequence — including oversized-line discards and invalid UTF-8.
    #[test]
    fn codec_items_are_invariant_under_chunking(
        fragments in proptest::collection::vec(fragment_strategy(), 1..12),
        raw_cuts in proptest::collection::vec(0usize..600, 0..40),
    ) {
        let bytes: Vec<u8> = fragments.concat();
        let baseline = decode_chunked(&bytes, &[], 64);
        let mut cuts = raw_cuts;
        cuts.sort_unstable();
        cuts.dedup();
        let chunked = decode_chunked(&bytes, &cuts, 64);
        prop_assert_eq!(&baseline, &chunked);
        let byte_by_byte: Vec<usize> = (1..bytes.len()).collect();
        let trickled = decode_chunked(&bytes, &byte_by_byte, 64);
        prop_assert_eq!(&baseline, &trickled);
    }

    /// Replaying the committed serving fixture through the blocking
    /// driver yields byte-identical responses no matter how the reader
    /// chunks the request stream.
    #[test]
    fn fixture_replay_bytes_are_invariant_under_chunking(
        raw_cuts in proptest::collection::vec(1usize..4096, 0..64),
    ) {
        let fixture = std::fs::read("tests/fixtures/serve_smoke_requests.ndjson")
            .expect("committed fixture");
        let engine = test_engine(ServeConfig::default());
        let mut baseline: Vec<u8> = Vec::new();
        serve_connection(&engine, Cursor::new(fixture.clone()), &mut baseline)
            .expect("baseline session");
        let mut cuts = raw_cuts;
        cuts.sort_unstable();
        cuts.dedup();
        let reader = ChunkedReader { data: fixture, cuts, pos: 0 };
        let mut chunked: Vec<u8> = Vec::new();
        serve_connection(&engine, reader, &mut chunked).expect("chunked session");
        prop_assert_eq!(&baseline, &chunked);
    }
}

/// The degenerate chunking — every read returns one byte — replays the
/// fixture byte-identically (deterministic companion to the property).
#[test]
fn fixture_replay_survives_one_byte_reads() {
    let fixture =
        std::fs::read("tests/fixtures/serve_smoke_requests.ndjson").expect("committed fixture");
    let engine = test_engine(ServeConfig::default());
    let mut baseline: Vec<u8> = Vec::new();
    serve_connection(&engine, Cursor::new(fixture.clone()), &mut baseline)
        .expect("baseline session");
    let cuts: Vec<usize> = (1..fixture.len()).collect();
    let reader = ChunkedReader {
        data: fixture,
        cuts,
        pos: 0,
    };
    let mut trickled: Vec<u8> = Vec::new();
    serve_connection(&engine, reader, &mut trickled).expect("one-byte session");
    assert_eq!(baseline, trickled);
}

/// One QBIN info-request frame (the smallest request that decodes).
fn qbin_info_frame() -> Vec<u8> {
    let mut bytes = Vec::new();
    bin::encode_info(&mut bytes, Some(7));
    bytes
}

/// Asserts the codec currently holds exactly one decodable info frame.
fn expect_info_frame(codec: &mut SessionCodec) {
    let item = codec.next_item().expect("a complete frame is buffered");
    let WireItem::Frame(frame) = item else {
        panic!("expected a QBIN frame, got {item:?}");
    };
    let request = bin::decode_request(&frame).expect("well-formed info frame");
    assert_eq!(
        request,
        bin::BinRequest::Info { id: Some(7) },
        "the trickled frame decodes to the original request"
    );
}

/// Sniffing survives the most adversarial chunking: every read hands the
/// codec a single byte, including through the 4-byte magic.
#[test]
fn sniff_survives_one_byte_reads() {
    let bytes = qbin_info_frame();
    let mut codec = SessionCodec::new();
    for (i, b) in bytes.iter().enumerate() {
        if i < bin::QBIN_MAGIC.len() {
            assert_eq!(codec.wire(), None, "undecided before the magic completes");
        }
        codec.feed(std::slice::from_ref(b));
    }
    assert_eq!(codec.wire(), Some(WireFormat::Qbin));
    expect_info_frame(&mut codec);
    assert!(codec.finish().is_none(), "no partial frame left behind");
}

/// The magic split across two chunks (every split point) still sniffs
/// binary, and the frame decodes intact.
#[test]
fn sniff_survives_magic_split_across_two_chunks() {
    let bytes = qbin_info_frame();
    for split in 1..bin::QBIN_MAGIC.len() {
        let mut codec = SessionCodec::new();
        codec.feed(&bytes[..split]);
        assert_eq!(codec.wire(), None, "split at {split}: still sniffing");
        assert!(codec.next_item().is_none());
        codec.feed(&bytes[split..]);
        assert_eq!(codec.wire(), Some(WireFormat::Qbin), "split at {split}");
        expect_info_frame(&mut codec);
    }
}

/// A client that sends only the magic and stalls: the protocol is
/// decided, no item is produced, and the session completes normally once
/// the rest of the frame arrives.
#[test]
fn sniff_magic_then_stall_waits_without_items() {
    let bytes = qbin_info_frame();
    let mut codec = SessionCodec::new();
    codec.feed(&bytes[..bin::QBIN_MAGIC.len()]);
    assert_eq!(codec.wire(), Some(WireFormat::Qbin));
    assert!(codec.next_item().is_none(), "no frame yet — keep waiting");
    assert_eq!(codec.buffered(), bin::QBIN_MAGIC.len());
    codec.feed(&bytes[bin::QBIN_MAGIC.len()..]);
    expect_info_frame(&mut codec);
}

/// EOF while stalled mid-frame is a typed truncation, not a hang or a
/// misclassification.
#[test]
fn sniff_magic_then_eof_is_typed_truncation() {
    let bytes = qbin_info_frame();
    let mut codec = SessionCodec::new();
    codec.feed(&bytes[..bin::QBIN_MAGIC.len()]);
    match codec.finish() {
        Some(WireItem::FrameError(bin::BinError::Truncated { .. })) => {}
        other => panic!("expected a truncation error at EOF, got {other:?}"),
    }
}

/// A prefix that diverges from the magic — even sharing its first bytes —
/// routes to NDJSON, and the sniffed bytes are preserved as the first
/// line's prefix.
#[test]
fn sniff_divergence_mid_magic_routes_to_ndjson() {
    let mut codec = SessionCodec::new();
    codec.feed(b"QB");
    assert_eq!(codec.wire(), None, "still a strict prefix of the magic");
    codec.feed(b"X rest of line\nsecond\n");
    assert_eq!(codec.wire(), Some(WireFormat::Ndjson));
    let mut lines = Vec::new();
    while let Some(item) = codec.next_item() {
        lines.push(expect_line(item));
    }
    assert_eq!(
        lines,
        vec![
            CodecLine::Line("QBX rest of line".to_string()),
            CodecLine::Line("second".to_string()),
        ],
        "no sniffed byte is lost on the NDJSON path"
    );
}

/// An EOF before the magic resolves (stream shorter than 4 bytes) is an
/// NDJSON tail line, mirroring `BufRead::lines` on a short stream.
#[test]
fn sniff_short_stream_is_ndjson_tail() {
    let mut codec = SessionCodec::new();
    codec.feed(b"QBI");
    let item = codec.finish().expect("the tail is an item");
    assert_eq!(expect_line(item), CodecLine::Line("QBI".to_string()));
}
