//! Integration tests for the nonblocking event-loop transport
//! (`bench::net`): many simultaneous multiplexed connections over one
//! shared engine must be byte-identical, per connection, to a
//! sequential stdio replay of the same request log — and weighted fair
//! queueing must keep a polite tenant served while a flooder saturates.

use std::io::{Cursor, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bench::net::{serve_event_loop, EventLoopConfig};
use bench::protocol::{serve_connection, MetricsResponse, Response, MAX_LINE_BYTES};
use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::pipeline::{PipelineConfig, TrainedQross};
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel, TenantClass, TenantPolicy};
use qross_repro::qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross_repro::qross::StatisticalFeaturizer;

/// Feature width of [`StatisticalFeaturizer`].
const FEAT_DIM: usize = 24;

/// Seed-derived serve-ready bundle (same shape as the serving
/// integration suite: real code paths, no training time).
fn test_model() -> ServeModel {
    let zscore = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    let surrogate = Surrogate::from_state(state).expect("consistent state");
    ServeModel::Bundle(Arc::new(TrainedQross {
        surrogate,
        featurizer: Box::new(StatisticalFeaturizer::new()),
        train_encodings: Vec::new(),
        test_encodings: Vec::new(),
        dataset_len: 0,
        report: TrainReport::default(),
        config: PipelineConfig::micro(),
    }))
}

/// Deterministic query `k`: 24 features plus a positive `A`.
fn query(k: usize) -> (String, f64) {
    let features: Vec<String> = (0..FEAT_DIM)
        .map(|c| format!("{:.6}", ((k * 13 + c * 7) % 29) as f64 / 7.0 - 2.0))
        .collect();
    let a = 0.1 + (k % 11) as f64 * 0.45;
    (format!("[{}]", features.join(", ")), a)
}

fn predict_line(id: u64, k: usize, tenant: Option<&str>) -> String {
    let (features, a) = query(k);
    match tenant {
        Some(t) => format!(
            "{{\"id\": {id}, \"op\": \"predict\", \"tenant\": \"{t}\", \
             \"features\": {features}, \"a\": {a}}}\n"
        ),
        None => {
            format!("{{\"id\": {id}, \"op\": \"predict\", \"features\": {features}, \"a\": {a}}}\n")
        }
    }
}

/// A running event loop on an ephemeral port; shuts down and joins on
/// drop so failed tests don't leak the loop thread.
struct LoopHarness {
    engine: Arc<ServeEngine>,
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl LoopHarness {
    fn start(engine: ServeEngine, mut config: EventLoopConfig) -> LoopHarness {
        let engine = Arc::new(engine);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        config.shutdown = Some(Arc::clone(&shutdown));
        let thread = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || serve_event_loop(&engine, listener, config))
        };
        LoopHarness {
            engine,
            addr,
            shutdown,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(self.addr).expect("connect")
    }
}

impl Drop for LoopHarness {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("loop thread").expect("loop result");
        }
    }
}

/// Writes `requests`, half-closes, and reads the whole response stream.
fn replay_over_tcp(mut stream: TcpStream, requests: &[u8]) -> Vec<u8> {
    stream.write_all(requests).expect("send requests");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read responses");
    out
}

/// The sequential oracle: the same request log through the blocking
/// stdio driver on a fresh engine with batching and caching off.
fn stdio_oracle(requests: &[u8]) -> Vec<u8> {
    let engine = ServeEngine::new(
        test_model(),
        ServeConfig {
            workers: 1,
            max_batch_rows: 1,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let mut out = Vec::new();
    serve_connection(&engine, Cursor::new(requests.to_vec()), &mut out).expect("oracle session");
    out
}

#[test]
fn concurrent_fixture_replays_match_stdio_oracle_bytewise() {
    let fixture =
        std::fs::read("tests/fixtures/serve_smoke_requests.ndjson").expect("committed fixture");
    let expected = stdio_oracle(&fixture);
    let harness = LoopHarness::start(
        ServeEngine::new(
            test_model(),
            ServeConfig {
                workers: 2,
                max_batch_rows: 16,
                ..Default::default()
            },
        ),
        EventLoopConfig::default(),
    );
    std::thread::scope(|scope| {
        for client in 0..32usize {
            let stream = harness.connect();
            let (fixture, expected) = (&fixture, &expected);
            scope.spawn(move || {
                let got = replay_over_tcp(stream, fixture);
                assert_eq!(
                    got, *expected,
                    "client {client}: event-loop bytes diverged from stdio oracle"
                );
            });
        }
    });
    let stats = harness.engine.stats();
    assert_eq!(stats.rejected, 0, "spurious backpressure: {stats:?}");
}

#[test]
fn five_hundred_twelve_simultaneous_connections_stay_ordered_and_exact() {
    const CONNS: usize = 512;
    const REQS_PER_CONN: u64 = 3;
    let harness = LoopHarness::start(
        ServeEngine::new(
            test_model(),
            ServeConfig {
                workers: 2,
                max_batch_rows: 32,
                // Room for every connection's rows at once: admission
                // control must not depend on client count here, or the
                // sequential oracle would diverge.
                queue_capacity: 65_536,
                ..Default::default()
            },
        ),
        EventLoopConfig {
            max_conns: CONNS + 8,
            ..Default::default()
        },
    );

    // Connect everyone before anyone sends: all 512 sessions are live in
    // the loop simultaneously.
    let mut streams: Vec<TcpStream> = (0..CONNS).map(|_| harness.connect()).collect();
    let requests: Vec<Vec<u8>> = (0..CONNS)
        .map(|c| {
            (0..REQS_PER_CONN)
                .map(|r| predict_line(r, c * 7 + r as usize, None))
                .collect::<String>()
                .into_bytes()
        })
        .collect();
    for (stream, reqs) in streams.iter_mut().zip(&requests) {
        stream.write_all(reqs).expect("send");
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    for (c, (mut stream, reqs)) in streams.into_iter().zip(&requests).enumerate() {
        let mut got = Vec::new();
        stream.read_to_end(&mut got).expect("read responses");
        let expected = stdio_oracle(reqs);
        assert_eq!(got, expected, "connection {c} diverged from stdio oracle");
        let ids: Vec<Option<u64>> = String::from_utf8(got)
            .expect("utf-8")
            .lines()
            .map(|l| serde_json::from_str::<Response>(l).expect("response").id)
            .collect();
        let wanted: Vec<Option<u64>> = (0..REQS_PER_CONN).map(Some).collect();
        assert_eq!(ids, wanted, "connection {c} dropped or reordered responses");
    }
    let stats = harness.engine.stats();
    assert_eq!(stats.requests, CONNS * REQS_PER_CONN as usize);
    assert_eq!(stats.rejected, 0, "spurious backpressure: {stats:?}");
}

#[test]
fn flooding_tenant_cannot_starve_a_polite_tenant() {
    // 800 five-row grids: a 4000-row backlog against the polite
    // tenant's 200 single rows — the 10x flooder of the acceptance bar.
    const FLOOD_REQS: u64 = 800;
    const FLOOD_ROWS_PER_REQ: u64 = 5;
    const POLITE_REQS: u64 = 200;
    let policy = TenantPolicy {
        classes: vec![
            ("flood".to_string(), TenantClass::default()),
            ("polite".to_string(), TenantClass::default()),
        ],
        ..Default::default()
    };
    let harness = LoopHarness::start(
        ServeEngine::with_tenants(
            test_model(),
            ServeConfig {
                workers: 1,
                max_batch_rows: 8,
                queue_capacity: 65_536,
                cache_capacity: 0, // every row must be served, not memoised
            },
            policy,
        ),
        EventLoopConfig::default(),
    );

    let engine = Arc::clone(&harness.engine);
    let flood_rows_served = |m: &qross_repro::qross::serve::EngineMetrics| {
        m.tenants
            .iter()
            .find(|t| t.tenant == "flood")
            .map_or(0, |t| t.rows)
    };
    let flood_stream = harness.connect();
    let polite_stream = harness.connect();
    let flood: Vec<u8> = (0..FLOOD_REQS)
        .map(|r| {
            let (features, _) = query((r as usize) % 97);
            format!(
                "{{\"id\": {r}, \"op\": \"predict\", \"tenant\": \"flood\", \
                 \"features\": {features}, \"a_values\": [0.5, 1.0, 1.5, 2.0, 2.5]}}\n"
            )
        })
        .collect::<String>()
        .into_bytes();
    let polite: Vec<u8> = (0..POLITE_REQS)
        .map(|r| predict_line(r, (r as usize) % 89, Some("polite")))
        .collect::<String>()
        .into_bytes();
    std::thread::scope(|scope| {
        let flood_client = scope.spawn(move || replay_over_tcp(flood_stream, &flood));
        let polite_engine = Arc::clone(&engine);
        let polite_done = scope.spawn(move || {
            // Bracket the contested window with service snapshots taken
            // at the polite tenant's FIRST and last responses — from the
            // first response on, its backlog is provably queued, so
            // every flood row in between was won against live polite
            // demand. (Rows the flooder burns before polite's jobs
            // reach the queue, or after they drain, are legal.)
            let mut polite_stream = polite_stream;
            polite_stream.write_all(&polite).expect("send polite load");
            polite_stream
                .shutdown(Shutdown::Write)
                .expect("polite half-close");
            let mut reader = std::io::BufReader::new(polite_stream);
            let mut first = String::new();
            std::io::BufRead::read_line(&mut reader, &mut first).expect("first polite response");
            let before = flood_rows_served(&polite_engine.metrics());
            let mut rest = String::new();
            reader
                .read_to_string(&mut rest)
                .expect("remaining responses");
            let after = flood_rows_served(&polite_engine.metrics());
            let lines = (!first.is_empty()) as u64 + rest.lines().count() as u64;
            (lines, after - before)
        });
        let (polite_lines, contested_flood_rows) = polite_done.join().expect("polite client");
        assert_eq!(polite_lines, POLITE_REQS, "polite tenant lost responses");
        // Equal weights mean the polite tenant's fair share of the
        // contested window is half the rows; the acceptance floor is a
        // quarter of that share, i.e. the flooder may win at most 7x
        // the polite tenant's rows while both are active. (DWRR's
        // actual split here is ~1:1.)
        assert!(
            contested_flood_rows <= POLITE_REQS * 7,
            "polite tenant starved: flood won {contested_flood_rows} rows \
             during the polite tenant's {POLITE_REQS}-row session"
        );
        let flood_out = flood_client.join().expect("flood client");
        let flood_lines = flood_out.iter().filter(|&&b| b == b'\n').count() as u64;
        assert_eq!(flood_lines, FLOOD_REQS, "flooder lost responses");
        let total = engine.metrics();
        assert_eq!(
            flood_rows_served(&total),
            FLOOD_REQS * FLOOD_ROWS_PER_REQ,
            "flooder rows went unserved"
        );
    });
}

#[test]
fn oversized_request_line_gets_typed_rejection_and_session_survives() {
    let harness = LoopHarness::start(
        ServeEngine::new(test_model(), ServeConfig::default()),
        EventLoopConfig::default(),
    );
    let mut stream = harness.connect();
    let mut giant = vec![b'z'; MAX_LINE_BYTES + 2];
    giant.push(b'\n');
    stream.write_all(&giant).expect("send giant line");
    stream
        .write_all(predict_line(7, 3, None).as_bytes())
        .expect("send valid request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read responses");
    let responses: Vec<Response> = out
        .lines()
        .map(|l| serde_json::from_str(l).expect("response"))
        .collect();
    assert_eq!(responses.len(), 2, "expected rejection + answer: {out}");
    assert!(!responses[0].ok);
    let error = responses[0].error.as_ref().expect("error message");
    assert!(
        error.contains(&format!("{MAX_LINE_BYTES}-byte limit")),
        "untyped oversized-line error: {error}"
    );
    assert_eq!(responses[1].id, Some(7));
    assert!(responses[1].ok, "session died after oversized line: {out}");
}

#[test]
fn max_conns_cap_defers_extra_connections_until_capacity_frees() {
    let harness = LoopHarness::start(
        ServeEngine::new(test_model(), ServeConfig::default()),
        EventLoopConfig {
            max_conns: 2,
            ..Default::default()
        },
    );
    // Two occupants hold the only slots (sessions stay open: no EOF).
    let mut first = harness.connect();
    let mut second = harness.connect();
    for (id, occupant) in [(1u64, &mut first), (2, &mut second)] {
        occupant
            .write_all(predict_line(id, id as usize, None).as_bytes())
            .expect("occupant request");
        let mut buf = vec![0u8; 4096];
        let n = occupant.read(&mut buf).expect("occupant response");
        assert!(n > 0);
    }
    // The third connection sits in the backlog: its request gets no
    // answer while the cap is reached.
    let mut third = harness.connect();
    third
        .write_all(predict_line(3, 3, None).as_bytes())
        .expect("queued request");
    third
        .set_read_timeout(Some(Duration::from_millis(300)))
        .expect("timeout");
    let mut buf = vec![0u8; 4096];
    match third.read(&mut buf) {
        Ok(n) => panic!("over-cap connection was served {n} bytes while both slots were held"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected read error: {e}"
        ),
    }
    // Freeing one slot lets the loop accept and serve the queued session.
    first.shutdown(Shutdown::Both).expect("free a slot");
    third
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let n = third.read(&mut buf).expect("deferred response");
    let line = std::str::from_utf8(&buf[..n]).expect("utf-8");
    let response: Response =
        serde_json::from_str(line.lines().next().expect("line")).expect("parseable response");
    assert_eq!(response.id, Some(3));
    assert!(response.ok);
    drop(second);
}

#[test]
fn metrics_op_reports_engine_counters_over_tcp() {
    let harness = LoopHarness::start(
        ServeEngine::with_tenants(
            test_model(),
            ServeConfig::default(),
            TenantPolicy {
                classes: vec![(
                    "capped".to_string(),
                    TenantClass {
                        weight: 2,
                        quota_rows: 1,
                    },
                )],
                ..Default::default()
            },
        ),
        EventLoopConfig::default(),
    );
    let mut stream = harness.connect();
    // One full round trip first: the repeats below are then guaranteed
    // cache hits rather than in-flight duplicates.
    stream
        .write_all(predict_line(0, 2, None).as_bytes())
        .expect("warm-up request");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut first = String::new();
    std::io::BufRead::read_line(&mut reader, &mut first).expect("warm-up response");
    let mut requests = String::new();
    for id in 1..6u64 {
        requests.push_str(&predict_line(id, 2, None)); // same key: cache hits
    }
    // A 3-row grid against a 1-row quota: a per-tenant rejection.
    let (features, _) = query(2);
    requests.push_str(&format!(
        "{{\"id\": 6, \"op\": \"predict\", \"tenant\": \"capped\", \
         \"features\": {features}, \"a_values\": [0.5, 1.0, 2.0]}}\n"
    ));
    requests.push_str("{\"id\": 7, \"op\": \"metrics\"}\n");
    stream.write_all(requests.as_bytes()).expect("send batch");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read responses");
    let text = format!("{first}{rest}");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 8, "unexpected session: {text}");
    let rejected: Response = serde_json::from_str(lines[6]).expect("rejection");
    assert!(!rejected.ok, "quota should reject the capped tenant");
    let metrics: MetricsResponse = serde_json::from_str(lines[7]).expect("metrics schema");
    assert!(metrics.ok);
    assert_eq!(metrics.id, Some(7));
    let m = &metrics.metrics;
    assert!(m.uptime_secs > 0.0);
    assert!(m.qps > 0.0);
    assert!(m.latency_p50_us.expect("p50 after traffic") > 0.0);
    assert!(m.latency_p99_us.expect("p99 after traffic") > 0.0);
    assert!(m.batch_occupancy >= 1.0);
    assert!(
        m.cache_hit_rate > 0.0 && m.cache_hit_rate < 1.0,
        "six identical predicts must mix hits and misses: {}",
        m.cache_hit_rate
    );
    assert_eq!(m.generation, harness.engine.generation());
    assert_eq!(m.rejected, 1);
    let capped = m
        .tenants
        .iter()
        .find(|t| t.tenant == "capped")
        .expect("capped tenant row");
    assert_eq!(capped.rejected, 1);
    assert_eq!(capped.weight, 2);
    assert_eq!(capped.quota_rows, 1);
    let default = m
        .tenants
        .iter()
        .find(|t| t.tenant == "default")
        .expect("default tenant row");
    assert_eq!(default.requests, 6);
}
