//! Regenerates paper Fig. 6 (appendix B): weighted-MVC penalty-weight
//! sweep showing solution-quality degradation as the penalty dominates,
//! with the analog-control-error quantum-annealer model degrading faster
//! than plain SA.

use bench::experiments::fig6;
use bench::{row, run_experiment};

fn main() {
    run_experiment(
        "fig6",
        |s, seed| Ok(fig6(s, seed)),
        |result| {
            println!(
            "Fig. 6 — MVC penalty weight vs normalised energy (G({}, 0.5), U[0,1) weights, 4 seeds)",
            result.vertices
        );
            let widths = [12, 14, 14];
            println!(
                "{}",
                row(&["penalty".into(), "sa".into(), "qa".into()], &widths)
            );
            let sa = &result.series[0];
            let qa = &result.series[1];
            for k in 0..sa.penalty.len() {
                println!(
                    "{}",
                    row(
                        &[
                            format!("{:.1}", sa.penalty[k]),
                            format!("{:.4}", sa.energy_normalized[k]),
                            format!("{:.4}", qa.energy_normalized[k]),
                        ],
                        &widths
                    )
                );
            }
            let sa_rise =
                sa.energy_normalized.last().unwrap() - sa.energy_normalized.first().unwrap();
            let qa_rise =
                qa.energy_normalized.last().unwrap() - qa.energy_normalized.first().unwrap();
            println!("\nenergy rise across the sweep: sa {sa_rise:+.4}, qa {qa_rise:+.4}");
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let sa_mean = mean(&sa.energy_normalized);
            let qa_mean = mean(&qa.energy_normalized);
            println!(
                "mean normalised energy: sa {:.4}, qa {:.4} ({})",
                sa_mean,
                qa_mean,
                if qa_mean > sa_mean && sa_rise > 0.0 && qa_rise > 0.0 {
                    "both degrade with penalty weight and the analog-error model sits higher — the paper's shape"
                } else if sa_rise > 0.0 && qa_rise > 0.0 {
                    "both degrade with penalty weight (orderings within noise at this scale)"
                } else {
                    "unexpected shape at this scale"
                }
            );
        },
    );
}
