//! Offline, API-compatible subset of the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of `rand` APIs the workspace uses are reimplemented here on a
//! deterministic xoshiro256++ core. The subset covers:
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive, ints and
//!   floats), `gen_bool`, `gen_ratio`, `fill`;
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`;
//! * [`rngs::StdRng`] — the workspace's only generator type;
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! Streams are **not** bit-compatible with upstream `rand`; everything in
//! the workspace derives its expectations from seeds at runtime, so only
//! determinism (same seed ⇒ same stream) matters, and that is guaranteed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (span ≤ 2^64).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift; bias is < 2^-64 per draw, far below any
    // statistical effect the workspace could observe.
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = self.gen();
        u < p
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        self.gen_range(0..denominator) < numerator
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64. Deterministic, `Clone`, and fast; **not**
    /// stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                s = [1, 2, 3, 4]; // xoshiro must not start at the all-zero state
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_interval_floats() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&w));
            let u: u8 = r.gen_range(0..2);
            assert!(u < 2);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut r = StdRng::seed_from_u64(6);
        assert!(!(0..100).any(|_| r.gen_ratio(0, 5)));
        assert!((0..100).all(|_| r.gen_ratio(5, 5)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(8);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_slice() {
        let mut r = StdRng::seed_from_u64(9);
        let xs = [10, 20, 30];
        assert!(xs.contains(xs.as_slice().choose(&mut r).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5..5usize);
    }
}
