//! Sparse symmetric QUBO models in CSR form.
//!
//! A QUBO is `E(x) = offset + Σ_i l_i x_i + Σ_{i<j} w_ij x_i x_j` over
//! `x ∈ {0,1}^n`. Models store the *symmetric* coupling view (each `w_ij`
//! appears in the rows of both `i` and `j`) as flat CSR arrays:
//!
//! * `row_offsets[i]..row_offsets[i + 1]` delimits row `i`,
//! * `col_indices[k]` is the neighbour index,
//! * `values[k]` the coupling weight,
//! * `mirror[k]` the position of the twin entry `(j, i)` of entry `(i, j)`,
//!   so symmetric updates touch both copies without searching.
//!
//! Compared with the previous per-variable `Vec<Vec<(u32, f64)>>` layout
//! this keeps every neighbour scan on two contiguous arrays (no
//! pointer-chasing, half the memory traffic since columns and weights pack
//! separately), which is what the annealers' O(degree) flip updates spend
//! all their time on — essential for TSP QUBOs where `n` reaches
//! `90² = 8100` variables but each variable couples with only `O(cities)`
//! others.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::QuboError;

/// Incremental builder for [`QuboModel`].
///
/// Repeated contributions to the same linear or quadratic coefficient are
/// accumulated; `(i, j)` and `(j, i)` refer to the same coupling, and
/// `(i, i)` folds into the linear term (since `x² = x` for binaries).
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// let mut b = QuboBuilder::new(2);
/// b.add_quadratic(0, 1, 1.0);
/// b.add_quadratic(1, 0, 2.0); // accumulates onto the same coupling
/// let m = b.build();
/// assert_eq!(m.energy(&[1, 1]), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct QuboBuilder {
    num_vars: usize,
    offset: f64,
    linear: Vec<f64>,
    quadratic: HashMap<(u32, u32), f64>,
}

impl QuboBuilder {
    /// Creates a builder for `num_vars` binary variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds `u32::MAX` (indices are stored as
    /// `u32`).
    pub fn new(num_vars: usize) -> Self {
        assert!(num_vars <= u32::MAX as usize, "too many variables");
        QuboBuilder {
            num_vars,
            offset: 0.0,
            linear: vec![0.0; num_vars],
            quadratic: HashMap::new(),
        }
    }

    /// Number of variables of the model under construction.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a constant to the energy offset.
    pub fn add_offset(&mut self, value: f64) -> &mut Self {
        self.offset += value;
        self
    }

    /// Adds `value` to the linear coefficient of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_linear(&mut self, i: usize, value: f64) -> &mut Self {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.linear[i] += value;
        self
    }

    /// Adds `value` to the coupling between `i` and `j`.
    ///
    /// `i == j` folds into the linear term (binary idempotence).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_quadratic(&mut self, i: usize, j: usize, value: f64) -> &mut Self {
        assert!(i < self.num_vars, "variable {i} out of range");
        assert!(j < self.num_vars, "variable {j} out of range");
        if i == j {
            self.linear[i] += value;
        } else {
            let key = if i < j {
                (i as u32, j as u32)
            } else {
                (j as u32, i as u32)
            };
            *self.quadratic.entry(key).or_insert(0.0) += value;
        }
        self
    }

    /// Checked variant of [`QuboBuilder::add_quadratic`].
    ///
    /// # Errors
    ///
    /// * [`QuboError::VariableOutOfRange`] for an out-of-range index.
    /// * [`QuboError::NonFiniteCoefficient`] for NaN/infinite `value`.
    pub fn try_add_quadratic(&mut self, i: usize, j: usize, value: f64) -> Result<(), QuboError> {
        if i >= self.num_vars {
            return Err(QuboError::VariableOutOfRange {
                index: i,
                num_vars: self.num_vars,
            });
        }
        if j >= self.num_vars {
            return Err(QuboError::VariableOutOfRange {
                index: j,
                num_vars: self.num_vars,
            });
        }
        if !value.is_finite() {
            return Err(QuboError::NonFiniteCoefficient);
        }
        self.add_quadratic(i, j, value);
        Ok(())
    }

    /// Finalises the model, dropping exact-zero couplings.
    pub fn build(self) -> QuboModel {
        let n = self.num_vars;
        let mut entries: Vec<((u32, u32), f64)> = self
            .quadratic
            .into_iter()
            .filter(|&(_, w)| w != 0.0)
            .collect();
        // Deterministic ordering regardless of HashMap iteration order.
        entries.sort_by_key(|&(k, _)| k);
        // Each coupling occupies two CSR entries; the offsets/cursors/mirror
        // arrays index entries as u32, so guard against silent wrapping on
        // astronomically dense models instead of corrupting the layout.
        assert!(
            entries.len() <= (u32::MAX / 2) as usize,
            "too many couplings for u32 CSR indexing"
        );

        // CSR assembly: count degrees, prefix-sum into row offsets, then
        // place each coupling into both endpoint rows. Because entries are
        // sorted by (min, max), every row's column list comes out sorted.
        let mut row_offsets = vec![0u32; n + 1];
        for &((i, j), _) in &entries {
            row_offsets[i as usize + 1] += 1;
            row_offsets[j as usize + 1] += 1;
        }
        for i in 0..n {
            row_offsets[i + 1] += row_offsets[i];
        }
        let nnz = row_offsets[n] as usize;
        let mut col_indices = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut mirror = vec![0u32; nnz];
        let mut cursor: Vec<u32> = row_offsets[..n].to_vec();
        for &((i, j), w) in &entries {
            let a = cursor[i as usize] as usize;
            let b = cursor[j as usize] as usize;
            cursor[i as usize] += 1;
            cursor[j as usize] += 1;
            col_indices[a] = j;
            col_indices[b] = i;
            values[a] = w;
            values[b] = w;
            mirror[a] = b as u32;
            mirror[b] = a as u32;
        }
        QuboModel {
            offset: self.offset,
            linear: self.linear,
            row_offsets,
            col_indices,
            values,
            mirror,
        }
    }
}

/// An immutable sparse QUBO model.
///
/// See the [module documentation](self) for the CSR storage layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuboModel {
    offset: f64,
    linear: Vec<f64>,
    /// CSR row boundaries; row `i` is `row_offsets[i]..row_offsets[i+1]`
    row_offsets: Vec<u32>,
    /// neighbour index per CSR entry (symmetric: both `(i,j)` and `(j,i)`)
    col_indices: Vec<u32>,
    /// coupling weight per CSR entry
    values: Vec<f64>,
    /// position of each entry's symmetric twin
    mirror: Vec<u32>,
}

impl QuboModel {
    /// Number of binary variables.
    pub fn num_vars(&self) -> usize {
        self.linear.len()
    }

    /// Constant energy offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Linear coefficient of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// All linear coefficients.
    pub fn linear_terms(&self) -> &[f64] {
        &self.linear
    }

    /// CSR range of row `i`.
    #[inline]
    fn row(&self, i: usize) -> std::ops::Range<usize> {
        self.row_offsets[i] as usize..self.row_offsets[i + 1] as usize
    }

    /// Neighbour indices of variable `i` (sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn neighbor_cols(&self, i: usize) -> &[u32] {
        &self.col_indices[self.row(i)]
    }

    /// Coupling weights of variable `i`, aligned with
    /// [`QuboModel::neighbor_cols`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn neighbor_weights(&self, i: usize) -> &[f64] {
        &self.values[self.row(i)]
    }

    /// The `(j, w_ij)` adjacency of variable `i`, sorted by `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.row(i);
        self.col_indices[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&j, &w)| (j, w))
    }

    /// Coupling degree of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn degree(&self, i: usize) -> usize {
        self.row(i).len()
    }

    /// Coupling between `i` and `j` (`0.0` when absent).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        assert!(j < self.num_vars(), "variable {j} out of range");
        if i == j {
            return 0.0;
        }
        let cols = self.neighbor_cols(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => self.neighbor_weights(i)[pos],
            Err(_) => 0.0,
        }
    }

    /// Number of distinct non-zero couplings.
    pub fn num_couplings(&self) -> usize {
        self.col_indices.len() / 2
    }

    /// Largest absolute coefficient (linear or quadratic); `0.0` for an
    /// all-zero model.
    pub fn max_abs_coefficient(&self) -> f64 {
        let lin = self.linear.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        let quad = self.values.iter().fold(0.0_f64, |m, &w| m.max(w.abs()));
        lin.max(quad)
    }

    /// Full energy `E(x)` of a binary assignment (entries must be 0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn energy(&self, x: &[u8]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "state length mismatch");
        let mut e = self.offset;
        for i in 0..x.len() {
            if x[i] == 0 {
                continue;
            }
            e += self.linear[i];
            // Each coupling counted once via the i < j half.
            let cols = self.neighbor_cols(i);
            let weights = self.neighbor_weights(i);
            // Columns are sorted, so the j > i half is the row's tail.
            let start = cols.partition_point(|&j| (j as usize) <= i);
            for (&j, &w) in cols[start..].iter().zip(&weights[start..]) {
                if x[j as usize] != 0 {
                    e += w;
                }
            }
        }
        e
    }

    /// Checked energy evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::StateLengthMismatch`] when the slice length is
    /// wrong.
    pub fn try_energy(&self, x: &[u8]) -> Result<f64, QuboError> {
        if x.len() != self.num_vars() {
            return Err(QuboError::StateLengthMismatch {
                expected: self.num_vars(),
                found: x.len(),
            });
        }
        Ok(self.energy(x))
    }

    /// Returns a new model with every coefficient (linear, quadratic and
    /// offset) passed through `f`.
    ///
    /// The CSR skeleton (`row_offsets`, `col_indices`, `mirror`) is shared
    /// structure and is **reused by clone**, not rebuilt: only the value
    /// arrays are transformed, so the cost is O(n + nnz) with no sorting or
    /// adjacency reconstruction. `f` is applied exactly once per distinct
    /// coupling (the `i < j` copy, ascending), mirroring the result into
    /// the twin entry — stateful closures see each coefficient once, in the
    /// same deterministic order as the previous adjacency-list layout.
    ///
    /// This is how the precision/noise solver wrappers inject coefficient
    /// quantisation and analog control error (paper appendix B) without the
    /// solvers knowing about the degradation model.
    pub fn map_coefficients<F: FnMut(f64) -> f64>(&self, mut f: F) -> QuboModel {
        let linear: Vec<f64> = self.linear.iter().map(|&v| f(v)).collect();
        let mut values = vec![0.0f64; self.values.len()];
        for i in 0..self.num_vars() {
            for idx in self.row(i) {
                if (self.col_indices[idx] as usize) > i {
                    let w = f(self.values[idx]);
                    values[idx] = w;
                    values[self.mirror[idx] as usize] = w;
                }
            }
        }
        QuboModel {
            offset: f(self.offset),
            linear,
            row_offsets: self.row_offsets.clone(),
            col_indices: self.col_indices.clone(),
            values,
            mirror: self.mirror.clone(),
        }
    }

    /// Iterates over all couplings as `(i, j, w)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.num_vars()).flat_map(move |i| {
            self.neighbors(i).filter_map(move |(j, w)| {
                let j = j as usize;
                if j > i {
                    Some((i, j, w))
                } else {
                    None
                }
            })
        })
    }
}

impl std::fmt::Display for QuboModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QuboModel({} vars, {} couplings, offset {:.3})",
            self.num_vars(),
            self.num_couplings(),
            self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> QuboModel {
        // E = 1 + x0 - 2 x1 + 3 x0 x1 - x1 x2
        let mut b = QuboBuilder::new(3);
        b.add_offset(1.0);
        b.add_linear(0, 1.0);
        b.add_linear(1, -2.0);
        b.add_quadratic(0, 1, 3.0);
        b.add_quadratic(2, 1, -1.0);
        b.build()
    }

    #[test]
    fn energy_enumeration() {
        let m = toy();
        let want = |x0: f64, x1: f64, x2: f64| 1.0 + x0 - 2.0 * x1 + 3.0 * x0 * x1 - x1 * x2;
        for bits in 0..8u8 {
            let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            let e = m.energy(&x);
            let w = want(x[0] as f64, x[1] as f64, x[2] as f64);
            assert!((e - w).abs() < 1e-12, "x={x:?}");
        }
    }

    #[test]
    fn diagonal_folds_to_linear() {
        let mut b = QuboBuilder::new(1);
        b.add_quadratic(0, 0, 5.0);
        let m = b.build();
        assert_eq!(m.linear(0), 5.0);
        assert_eq!(m.energy(&[1]), 5.0);
    }

    #[test]
    fn symmetric_accumulation() {
        let mut b = QuboBuilder::new(2);
        b.add_quadratic(0, 1, 1.5);
        b.add_quadratic(1, 0, 0.5);
        let m = b.build();
        assert_eq!(m.quadratic(0, 1), 2.0);
        assert_eq!(m.quadratic(1, 0), 2.0);
        assert_eq!(m.num_couplings(), 1);
    }

    #[test]
    fn zero_couplings_dropped() {
        let mut b = QuboBuilder::new(2);
        b.add_quadratic(0, 1, 1.0);
        b.add_quadratic(0, 1, -1.0);
        let m = b.build();
        assert_eq!(m.num_couplings(), 0);
        assert_eq!(m.quadratic(0, 1), 0.0);
    }

    #[test]
    fn csr_rows_sorted_and_mirrored() {
        let mut b = QuboBuilder::new(5);
        for &(i, j, w) in &[
            (3usize, 1usize, 0.5),
            (0, 4, -1.0),
            (2, 0, 2.0),
            (4, 1, 1.5),
            (2, 3, -0.5),
        ] {
            b.add_quadratic(i, j, w);
        }
        let m = b.build();
        for i in 0..5 {
            let cols = m.neighbor_cols(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
            for (j, w) in m.neighbors(i) {
                // Symmetric view: the twin entry carries the same weight.
                assert_eq!(m.quadratic(j as usize, i), w);
            }
        }
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.num_couplings(), 5);
    }

    #[test]
    fn max_abs_coefficient() {
        let m = toy();
        assert_eq!(m.max_abs_coefficient(), 3.0);
        let empty = QuboBuilder::new(2).build();
        assert_eq!(empty.max_abs_coefficient(), 0.0);
    }

    #[test]
    fn map_coefficients_scales_energy() {
        let m = toy();
        let doubled = m.map_coefficients(|w| 2.0 * w);
        for bits in 0..8u8 {
            let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            assert!((doubled.energy(&x) - 2.0 * m.energy(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn map_coefficients_visits_each_coupling_once() {
        let m = toy();
        let mut calls = 0usize;
        let mapped = m.map_coefficients(|w| {
            calls += 1;
            w
        });
        // 3 linear + 2 couplings + 1 offset.
        assert_eq!(calls, 6);
        assert_eq!(mapped, m);
    }

    #[test]
    fn try_energy_length_check() {
        let m = toy();
        assert!(matches!(
            m.try_energy(&[0, 1]),
            Err(QuboError::StateLengthMismatch { .. })
        ));
        assert!(m.try_energy(&[0, 1, 0]).is_ok());
    }

    #[test]
    fn try_add_quadratic_checks() {
        let mut b = QuboBuilder::new(2);
        assert!(matches!(
            b.try_add_quadratic(0, 2, 1.0),
            Err(QuboError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            b.try_add_quadratic(0, 1, f64::NAN),
            Err(QuboError::NonFiniteCoefficient)
        ));
        assert!(b.try_add_quadratic(0, 1, 1.0).is_ok());
    }

    #[test]
    fn couplings_iterator_half_view() {
        let m = toy();
        let cs: Vec<(usize, usize, f64)> = m.couplings().collect();
        assert_eq!(cs.len(), 2);
        assert!(cs.contains(&(0, 1, 3.0)));
        assert!(cs.contains(&(1, 2, -1.0)));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", toy()).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let m = toy();
        let json = serde_json::to_string(&m).unwrap();
        let back: QuboModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
