//! Penalty-weight sensitivity on Minimum Vertex Cover (the paper's
//! appendix-B experiment, Fig. 6): why "just set the penalty huge" fails
//! on real hardware.
//!
//! Sweeps the MVC penalty weight over four orders of magnitude on a random
//! `G(n, 0.5)` graph and reports the best cover weight found by
//!
//! * plain simulated annealing, and
//! * the same solver behind an *analog control error* model (a quantum
//!   annealer whose implemented Hamiltonian coefficients differ slightly
//!   from the intended ones).
//!
//! ```text
//! cargo run --release --example mvc_penalty
//! ```

use qross_repro::problems::{MvcInstance, RelaxableProblem};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_repro::solvers::{AnalogNoise, Solver};

fn main() {
    let n = 40;
    let graph = MvcInstance::random_gnp("demo", n, 0.5, 99);
    println!(
        "weighted MVC on G({n}, 0.5): {} edges, greedy cover weight {:.3}",
        graph.edges().len(),
        graph.cover_weight(&graph.greedy_cover())
    );

    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 256,
        ..Default::default()
    });
    let qa = AnalogNoise::new(
        SimulatedAnnealer::new(SaConfig {
            sweeps: 256,
            ..Default::default()
        }),
        0.03, // 3% coefficient error, the hardware ballpark of appendix B
    );

    println!(
        "\n{:>10} {:>14} {:>14}",
        "penalty", "SA cover", "QA-sim cover"
    );
    let mut rows = Vec::new();
    for k in 0..9 {
        let sigma = 10f64.powf(4.0 * k as f64 / 8.0);
        let mut line = vec![format!("{sigma:>10.1}")];
        let mut values = Vec::new();
        for solver in [&sa as &dyn Solver, &qa as &dyn Solver] {
            let qubo = graph.to_qubo(sigma);
            let set = solver.sample(&qubo, 16, 1234 + k as u64);
            let best = set
                .best_feasible(|x| graph.is_feasible(x))
                .and_then(|s| graph.fitness(&s.assignment));
            match best {
                Some(w) => {
                    line.push(format!("{w:>14.3}"));
                    values.push(w);
                }
                None => {
                    line.push(format!("{:>14}", "infeasible"));
                    values.push(f64::NAN);
                }
            }
        }
        println!("{}", line.join(" "));
        rows.push(values);
    }
    println!(
        "\nBoth solvers degrade as the penalty dominates the Hamiltonian, and\n\
         the analog-error model degrades faster — the appendix-B argument for\n\
         *tuning* the relaxation parameter instead of setting it conservatively\n\
         large. That tuning problem is exactly what QROSS automates."
    );
}
