//! The solver surrogate (paper §3.2, appendix G).
//!
//! Two fully-connected heads over the shared input `[features ‖ z(ln A)]`:
//!
//! * the **Pf net** ends in a sigmoid and is trained with binary
//!   cross-entropy against the (soft) feasibility fractions;
//! * the **energy net** has two linear outputs — normalised `Eavg` and
//!   `Estd` — trained with Huber loss ("we are expecting many outliers...
//!   due to the stochastic nature of a QUBO solver").
//!
//! The paper trains the heads separately (appendix G: "Since the nature of
//! Pf is different from that of Eavg and Estd, we train these targets
//! separately"); so does [`Surrogate::train`].

use serde::{Deserialize, Serialize};

use mathkit::Matrix;
use neural::loss::Loss;
use neural::network::{Mlp, MlpBuilder, MlpState};
use neural::optimizer::OptimizerConfig;
use neural::trainer::{train_with_validation, TrainConfig, TrainHistory};

use crate::dataset::{to_matrices, Scalers, SurrogateDataset};
use crate::QrossError;

/// Surrogate architecture and training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// hidden width of both heads
    pub hidden: usize,
    /// training epochs per head
    pub epochs: usize,
    /// Adam learning rate
    pub learning_rate: f64,
    /// mini-batch size
    pub batch_size: usize,
    /// fraction of rows held out for validation tracking
    pub val_fraction: f64,
    /// weight-init / shuffling seed
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            hidden: 64,
            epochs: 300,
            learning_rate: 3e-3,
            batch_size: 64,
            val_fraction: 0.1,
            seed: 0,
        }
    }
}

/// Hyper-parameters for [`Surrogate::fine_tune`] — one continual-learning
/// refresh, as opposed to the from-scratch [`SurrogateConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// gradient epochs over the merged dataset
    pub epochs: usize,
    /// Adam learning rate (typically well below the offline rate — the
    /// heads start from trained weights)
    pub learning_rate: f64,
    /// mini-batch size
    pub batch_size: usize,
    /// shuffling seed — fine-tuning is bit-reproducible given it
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 60,
            learning_rate: 5e-4,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Prediction triple for one `(instance, A)` query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogatePrediction {
    /// predicted probability of feasibility, in `[0, 1]`
    pub pf: f64,
    /// predicted batch mean energy (original energy units)
    pub e_avg: f64,
    /// predicted batch energy standard deviation (original units, ≥ 0)
    pub e_std: f64,
}

/// Reusable input-staging buffer for the batched predict paths
/// ([`Surrogate::predict_many_with`] / [`Surrogate::predict_grid_with`]).
///
/// The batched paths stage query rows into an input matrix before the
/// forward pass; holding one scratch per worker keeps that staging
/// allocation out of the serve hot loop (the same pattern as solver
/// replica scratch reuse). Using a scratch never changes any output bit.
#[derive(Debug)]
pub struct PredictScratch {
    x: Matrix,
}

impl PredictScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        PredictScratch {
            x: Matrix::zeros(0, 0),
        }
    }
}

impl Default for PredictScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Training diagnostics returned alongside the surrogate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Pf-head loss history
    pub pf: TrainHistory,
    /// energy-head loss history
    pub energy: TrainHistory,
    /// rows used for training
    pub train_rows: usize,
    /// rows used for validation
    pub val_rows: usize,
}

/// The trained solver surrogate.
///
/// Thread-safe *without locks*: prediction runs the networks' immutable
/// inference path ([`neural::network::Mlp::infer`], which writes no
/// activation caches), so `&Surrogate` is `Sync` and any number of
/// strategy workers can query one surrogate concurrently — the predict
/// hot path acquires no mutex.
#[derive(Debug)]
pub struct Surrogate {
    pf_net: Mlp,
    e_net: Mlp,
    scalers: Scalers,
}

/// Serialisable snapshot of a [`Surrogate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurrogateState {
    /// Pf-head network
    pub pf_net: MlpState,
    /// energy-head network
    pub e_net: MlpState,
    /// input/target normalisation
    pub scalers: Scalers,
}

/// Output width of a network snapshot: the last dense layer's width
/// (activations preserve width), or `None` for a dense-free stack.
fn state_output_dim(state: &MlpState) -> Option<usize> {
    state.layers.iter().rev().find_map(|l| match l {
        neural::layers::LayerSpec::Dense { output, .. } => Some(*output),
        _ => None,
    })
}

impl SurrogateState {
    /// Checks the *cross-component* invariants [`Surrogate::predict`]
    /// relies on: both heads consume exactly the scalers' input width,
    /// the Pf head emits 1 output and the energy head 2. (Per-network
    /// internal consistency is checked by [`Mlp::from_state`].)
    ///
    /// Decoders run this so a crafted snapshot with mismatched sections
    /// surfaces as a typed error instead of a panic at predict time.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::Persistence`] describing the mismatch.
    pub fn validate(&self) -> Result<(), QrossError> {
        let expect = self.scalers.input_dim();
        let err = |message: String| Err(QrossError::Persistence { message });
        if self.pf_net.input_dim != expect {
            return err(format!(
                "pf net consumes {} inputs but the scalers produce {expect}",
                self.pf_net.input_dim
            ));
        }
        if self.e_net.input_dim != expect {
            return err(format!(
                "energy net consumes {} inputs but the scalers produce {expect}",
                self.e_net.input_dim
            ));
        }
        if state_output_dim(&self.pf_net) != Some(1) {
            return err(format!(
                "pf net emits {:?} outputs, expected 1",
                state_output_dim(&self.pf_net)
            ));
        }
        if state_output_dim(&self.e_net) != Some(2) {
            return err(format!(
                "energy net emits {:?} outputs, expected 2 (Eavg, Estd)",
                state_output_dim(&self.e_net)
            ));
        }
        Ok(())
    }
}

impl Surrogate {
    /// Trains a surrogate on `dataset`.
    ///
    /// # Errors
    ///
    /// * [`QrossError::BadDataset`] when the dataset is empty.
    /// * [`QrossError::TrainingDiverged`] when either head's loss becomes
    ///   non-finite.
    pub fn train(
        dataset: &SurrogateDataset,
        config: &SurrogateConfig,
    ) -> Result<(Self, TrainReport), QrossError> {
        let (train_set, val_set) = dataset.split(config.val_fraction, config.seed);
        if train_set.is_empty() {
            return Err(QrossError::BadDataset {
                message: "empty training split".to_string(),
            });
        }
        let scalers = Scalers::fit(&train_set)?;
        let tm = to_matrices(&train_set, &scalers)?;
        let vm = if val_set.is_empty() {
            None
        } else {
            Some(to_matrices(&val_set, &scalers)?)
        };
        let input_dim = scalers.input_dim();

        let mut pf_net = MlpBuilder::new(input_dim)
            .dense(config.hidden)
            .relu()
            .dense(config.hidden)
            .relu()
            .dense(1)
            .sigmoid()
            .build(mathkit::rng::derive_seed(config.seed, 1));
        let mut e_net = MlpBuilder::new(input_dim)
            .dense(config.hidden)
            .relu()
            .dense(config.hidden)
            .relu()
            .dense(2)
            .build(mathkit::rng::derive_seed(config.seed, 2));

        let tc = TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            optimizer: OptimizerConfig::adam(config.learning_rate),
            seed: config.seed,
            target_loss: None,
            // Surrogate training stays on the bit-exact tier so persisted
            // models reproduce across releases; opt into the fast-math
            // tier through `neural::trainer::TrainConfig` directly.
            fast_math: false,
        };
        let pf_hist = train_with_validation(
            &mut pf_net,
            &tm.x,
            &tm.y_pf,
            vm.as_ref().map(|v| (&v.x, &v.y_pf)),
            &Loss::Bce,
            &tc,
        );
        if pf_hist.diverged {
            return Err(QrossError::TrainingDiverged);
        }
        let e_hist = train_with_validation(
            &mut e_net,
            &tm.x,
            &tm.y_energy,
            vm.as_ref().map(|v| (&v.x, &v.y_energy)),
            &Loss::Huber { delta: 1.0 },
            &tc,
        );
        if e_hist.diverged {
            return Err(QrossError::TrainingDiverged);
        }
        let report = TrainReport {
            pf: pf_hist,
            energy: e_hist,
            train_rows: train_set.len(),
            val_rows: val_set.len(),
        };
        Ok((
            Surrogate {
                pf_net,
                e_net,
                scalers,
            },
            report,
        ))
    }

    /// Fine-tunes a copy of this surrogate on `dataset`, resuming from
    /// the current weights — the continual-learning counterpart of
    /// [`Surrogate::train`], used by the serving engine's retrain/swap
    /// loop.
    ///
    /// Two deliberate differences from a fresh train:
    ///
    /// * **weights resume** ([`neural::trainer::fine_tune`]): both heads
    ///   continue gradient descent from their trained state instead of
    ///   re-initialising, so a handful of epochs on a small feedback
    ///   merge adjusts the model rather than rebuilding it;
    /// * **scalers are frozen**: the input/target normalisation fitted at
    ///   offline training time is reused verbatim. Feature geometry must
    ///   stay fixed across generations for hot-swap to be transparent
    ///   (same `feature_dim`, same input transform), and refitting
    ///   scalers on a replay mix would silently re-scale the energy
    ///   heads' output units between generations.
    ///
    /// `self` is untouched — serving continues on it while the returned
    /// copy trains. Bit-reproducible given `(self, dataset, config)`.
    ///
    /// # Errors
    ///
    /// * [`QrossError::BadDataset`] — empty dataset or a feature width
    ///   differing from the trained one.
    /// * [`QrossError::TrainingDiverged`] — a head's loss became
    ///   non-finite during fine-tuning.
    /// * [`QrossError::Persistence`] — a head's snapshot failed to
    ///   rebuild for the resumed copy (unreachable for surrogates built
    ///   through the public API, which only hold valid networks).
    pub fn fine_tune(
        &self,
        dataset: &SurrogateDataset,
        config: &FineTuneConfig,
    ) -> Result<(Self, TrainReport), QrossError> {
        if dataset.feat_dim() + 1 != self.scalers.input_dim() {
            return Err(QrossError::BadDataset {
                message: format!(
                    "fine-tune dataset is {}-wide but the surrogate was trained on {} features",
                    dataset.feat_dim(),
                    self.scalers.input_dim() - 1
                ),
            });
        }
        let tm = to_matrices(dataset, &self.scalers)?;
        let tc = TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            optimizer: OptimizerConfig::adam(config.learning_rate),
            seed: config.seed,
            target_loss: None,
            // Surrogate training stays on the bit-exact tier so persisted
            // models reproduce across releases; opt into the fast-math
            // tier through `neural::trainer::TrainConfig` directly.
            fast_math: false,
        };
        let tune =
            |net: &Mlp, y: &Matrix, loss: &Loss| -> Result<(Mlp, TrainHistory), QrossError> {
                let (tuned, hist) = neural::trainer::fine_tune(net, &tm.x, y, None, loss, &tc)
                    .map_err(|e| QrossError::Persistence {
                        message: format!("resuming from trained weights: {e}"),
                    })?;
                if hist.diverged {
                    return Err(QrossError::TrainingDiverged);
                }
                Ok((tuned, hist))
            };
        let (pf_net, pf_hist) = tune(&self.pf_net, &tm.y_pf, &Loss::Bce)?;
        let (e_net, e_hist) = tune(&self.e_net, &tm.y_energy, &Loss::Huber { delta: 1.0 })?;
        let report = TrainReport {
            pf: pf_hist,
            energy: e_hist,
            train_rows: dataset.len(),
            val_rows: 0,
        };
        Ok((
            Surrogate {
                pf_net,
                e_net,
                scalers: self.scalers.clone(),
            },
            report,
        ))
    }

    /// Predicts `(Pf, Eavg, Estd)` for one query.
    ///
    /// Lock-free: runs the immutable inference path, so concurrent calls
    /// from many threads never contend.
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from training or `a <= 0`.
    pub fn predict(&self, features: &[f64], a: f64) -> SurrogatePrediction {
        let input = Matrix::row(&self.scalers.input_row(features, a));
        let pf = self.pf_net.infer(&input)[(0, 0)];
        let e_out = self.e_net.infer(&input);
        SurrogatePrediction {
            pf: pf.clamp(0.0, 1.0),
            e_avg: self.scalers.e_avg.inverse(e_out[(0, 0)]),
            e_std: self.scalers.e_std.inverse(e_out[(0, 1)]).max(1e-9),
        }
    }

    /// Predicts a whole candidate-`A` grid for one instance in a single
    /// batched matrix forward per head — the vectorised form of
    /// [`Surrogate::predict`] used by the MFS/PBS grid scans, where it
    /// replaces `a_values.len()` scalar forwards with one.
    ///
    /// Row `r` of the result equals `predict(features, a_values[r])`
    /// exactly (each matrix row is accumulated independently in the same
    /// order as a 1-row forward).
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch or a non-positive `a`.
    pub fn predict_grid(&self, features: &[f64], a_values: &[f64]) -> Vec<SurrogatePrediction> {
        self.predict_grid_with(&mut PredictScratch::new(), features, a_values)
    }

    /// [`Surrogate::predict_grid`] staging the input batch in a reusable
    /// per-worker [`PredictScratch`] instead of allocating a fresh input
    /// matrix per call. Output is identical (exact `f64` bits): the
    /// scratch only changes where the input rows are staged, never what
    /// they contain.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch or a non-positive `a`.
    pub fn predict_grid_with(
        &self,
        scratch: &mut PredictScratch,
        features: &[f64],
        a_values: &[f64],
    ) -> Vec<SurrogatePrediction> {
        if a_values.is_empty() {
            return Vec::new();
        }
        let d = self.scalers.input_dim();
        let x = &mut scratch.x;
        x.reset_zeroed(a_values.len(), d);
        for (r, &a) in a_values.iter().enumerate() {
            x.row_slice_mut(r)
                .copy_from_slice(&self.scalers.input_row(features, a));
        }
        let pf_out = self.pf_net.infer(x);
        let e_out = self.e_net.infer(x);
        (0..a_values.len())
            .map(|r| SurrogatePrediction {
                pf: pf_out[(r, 0)].clamp(0.0, 1.0),
                e_avg: self.scalers.e_avg.inverse(e_out[(r, 0)]),
                e_std: self.scalers.e_std.inverse(e_out[(r, 1)]).max(1e-9),
            })
            .collect()
    }

    /// Predicts many independent `(features, A)` queries in a single
    /// batched matrix forward per head — the serving engine's micro-batch
    /// primitive. Where [`Surrogate::predict_grid`] batches one instance
    /// over many `A` values, this batches arbitrary queries from
    /// *different* instances (and different `A`s) into one forward pass.
    ///
    /// **Bit-exactness contract**: entry `k` of the result equals
    /// `predict(queries[k].0, queries[k].1)` with exact `f64` equality.
    /// Every row of a matrix forward is accumulated independently, in the
    /// same operation order as a 1-row forward ([`mathkit::Matrix::matmul`]
    /// streams each output row on its own), so stacking rows cannot change
    /// any bit of any row — the property that lets the serving engine
    /// batch concurrent requests without changing their answers. The
    /// `proptest_serve` suite asserts this with exact equality.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch or a non-positive `a` (callers
    /// that face untrusted input — the serving engine — validate first).
    pub fn predict_many(&self, queries: &[(&[f64], f64)]) -> Vec<SurrogatePrediction> {
        self.predict_many_with(&mut PredictScratch::new(), queries)
    }

    /// [`Surrogate::predict_many`] staging the input batch in a reusable
    /// per-worker [`PredictScratch`] instead of allocating a fresh input
    /// matrix per call — the serving engine holds one scratch per worker
    /// thread. Output is identical (exact `f64` bits) and the
    /// bit-exactness contract of [`Surrogate::predict_many`] carries over
    /// unchanged: the scratch only changes where the input rows are
    /// staged, never what they contain.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch or a non-positive `a`.
    pub fn predict_many_with(
        &self,
        scratch: &mut PredictScratch,
        queries: &[(&[f64], f64)],
    ) -> Vec<SurrogatePrediction> {
        if queries.is_empty() {
            return Vec::new();
        }
        let d = self.scalers.input_dim();
        let x = &mut scratch.x;
        x.reset_zeroed(queries.len(), d);
        for (r, (features, a)) in queries.iter().enumerate() {
            x.row_slice_mut(r)
                .copy_from_slice(&self.scalers.input_row(features, *a));
        }
        let pf_out = self.pf_net.infer(x);
        let e_out = self.e_net.infer(x);
        (0..queries.len())
            .map(|r| SurrogatePrediction {
                pf: pf_out[(r, 0)].clamp(0.0, 1.0),
                e_avg: self.scalers.e_avg.inverse(e_out[(r, 0)]),
                e_std: self.scalers.e_std.inverse(e_out[(r, 1)]).max(1e-9),
            })
            .collect()
    }

    /// Predicts a whole `A` sweep for one instance (single forward pass).
    ///
    /// Alias of [`Surrogate::predict_grid`], kept for callers written
    /// against the original name.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch or a non-positive `a`.
    pub fn predict_sweep(&self, features: &[f64], a_values: &[f64]) -> Vec<SurrogatePrediction> {
        self.predict_grid(features, a_values)
    }

    /// The fitted normalisation parameters.
    pub fn scalers(&self) -> &Scalers {
        &self.scalers
    }

    /// The relaxation-parameter range covered by the training data:
    /// `exp(mean ± sigmas·std)` of the trained `ln A` distribution.
    ///
    /// Offline strategies clamp their search to this range — outside it
    /// the surrogate extrapolates, and extrapolated energy heads produce
    /// spurious minima at the domain edges (the classic surrogate-
    /// optimisation failure mode).
    pub fn trained_a_range(&self, sigmas: f64) -> (f64, f64) {
        let z = &self.scalers.log_a;
        (
            (z.mean - sigmas * z.std).exp(),
            (z.mean + sigmas * z.std).exp(),
        )
    }

    /// Serialisable snapshot.
    pub fn to_state(&self) -> SurrogateState {
        SurrogateState {
            pf_net: self.pf_net.to_state(),
            e_net: self.e_net.to_state(),
            scalers: self.scalers.clone(),
        }
    }

    /// Restores a surrogate from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::Persistence`] for inconsistent network
    /// shapes, within a head ([`Mlp::from_state`]) or across the
    /// snapshot's components ([`SurrogateState::validate`]).
    pub fn from_state(state: SurrogateState) -> Result<Self, QrossError> {
        state.validate()?;
        let pf_net = Mlp::from_state(&state.pf_net).map_err(|e| QrossError::Persistence {
            message: format!("pf net: {e}"),
        })?;
        let e_net = Mlp::from_state(&state.e_net).map_err(|e| QrossError::Persistence {
            message: format!("energy net: {e}"),
        })?;
        Ok(Surrogate {
            pf_net,
            e_net,
            scalers: state.scalers,
        })
    }

    /// Serialises to JSON.
    ///
    /// Prefer the artifact store for persistence — [`SurrogateState`]
    /// implements `qross_store::Artifact`, giving checksummed bit-exact
    /// binary `save`/`load` plus this JSON form as a debugging fallback.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::Persistence`] when serialisation fails
    /// (this used to be an `expect` panic path).
    pub fn to_json(&self) -> Result<String, QrossError> {
        serde_json::to_string(&self.to_state()).map_err(|e| QrossError::Persistence {
            message: format!("json: {e}"),
        })
    }

    /// Restores from [`Surrogate::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`QrossError::Persistence`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, QrossError> {
        let state: SurrogateState =
            serde_json::from_str(json).map_err(|e| QrossError::Persistence {
                message: format!("json: {e}"),
            })?;
        Self::from_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetRow;
    use mathkit::special::sigmoid;

    /// Synthetic "solver" ground truth: Pf follows a sigmoid in ln A whose
    /// midpoint shifts with the (single) feature; energies dip near the
    /// midpoint.
    fn synthetic_dataset(instances: usize, points: usize) -> SurrogateDataset {
        let mut ds = SurrogateDataset::new(1);
        for g in 0..instances {
            let feature = g as f64 / instances as f64; // in [0, 1)
            let midpoint = -0.5 + feature; // ln-A midpoint rises with feature
            for k in 0..points {
                let ln_a = -3.0 + 6.0 * k as f64 / (points - 1) as f64;
                let pf = sigmoid(4.0 * (ln_a - midpoint));
                let e_avg = 10.0 + 5.0 * (ln_a - midpoint).tanh() + feature;
                let e_std = 1.0 + 0.5 * (1.0 - pf);
                ds.push(DatasetRow {
                    features: vec![feature],
                    a: ln_a.exp(),
                    pf,
                    e_avg,
                    e_std,
                });
            }
        }
        ds
    }

    fn quick_config() -> SurrogateConfig {
        SurrogateConfig {
            hidden: 24,
            epochs: 250,
            learning_rate: 5e-3,
            batch_size: 32,
            val_fraction: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn learns_sigmoid_structure() {
        let ds = synthetic_dataset(12, 15);
        let (sur, report) = Surrogate::train(&ds, &quick_config()).unwrap();
        assert!(report.train_rows > 0 && report.val_rows > 0);
        // Pf must be low below the midpoint and high above, for a feature
        // in the training range.
        let f = [0.5];
        let low = sur.predict(&f, (-3.0f64).exp());
        let high = sur.predict(&f, (3.0f64).exp());
        assert!(low.pf < 0.25, "low-A Pf = {}", low.pf);
        assert!(high.pf > 0.75, "high-A Pf = {}", high.pf);
    }

    #[test]
    fn energy_predictions_in_plausible_range() {
        let ds = synthetic_dataset(10, 12);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let p = sur.predict(&[0.4], 1.0);
        assert!((4.0..=18.0).contains(&p.e_avg), "e_avg {}", p.e_avg);
        assert!(p.e_std > 0.0 && p.e_std < 4.0, "e_std {}", p.e_std);
    }

    #[test]
    fn feature_shifts_the_midpoint() {
        // The surrogate must use the *feature*, not just A: different
        // features → different Pf at the same A.
        let ds = synthetic_dataset(12, 15);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let a = 1.0; // ln A = 0: above the midpoint for small features,
                     // below for large ones
        let small = sur.predict(&[0.05], a);
        let large = sur.predict(&[0.95], a);
        assert!(
            small.pf > large.pf + 0.2,
            "feature ignored: {} vs {}",
            small.pf,
            large.pf
        );
    }

    #[test]
    fn grid_matches_pointwise() {
        let ds = synthetic_dataset(8, 10);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let f = [0.3];
        let a_values = [0.1, 0.5, 1.0, 5.0];
        let grid = sur.predict_grid(&f, &a_values);
        for (k, &a) in a_values.iter().enumerate() {
            let single = sur.predict(&f, a);
            assert!((grid[k].pf - single.pf).abs() < 1e-12);
            assert!((grid[k].e_avg - single.e_avg).abs() < 1e-12);
            assert!((grid[k].e_std - single.e_std).abs() < 1e-12);
        }
        assert!(sur.predict_grid(&f, &[]).is_empty());
        // The alias stays in lock-step.
        assert_eq!(sur.predict_sweep(&f, &a_values), grid);
    }

    #[test]
    fn predict_many_is_bit_identical_to_per_row_predict() {
        let ds = synthetic_dataset(8, 10);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let feats: Vec<Vec<f64>> = (0..7).map(|k| vec![k as f64 / 7.0]).collect();
        let queries: Vec<(&[f64], f64)> = feats
            .iter()
            .enumerate()
            .map(|(k, f)| (f.as_slice(), 0.1 + 0.7 * k as f64))
            .collect();
        let batched = sur.predict_many(&queries);
        assert_eq!(batched.len(), queries.len());
        for (k, &(f, a)) in queries.iter().enumerate() {
            let single = sur.predict(f, a);
            assert_eq!(batched[k].pf.to_bits(), single.pf.to_bits());
            assert_eq!(batched[k].e_avg.to_bits(), single.e_avg.to_bits());
            assert_eq!(batched[k].e_std.to_bits(), single.e_std.to_bits());
        }
        assert!(sur.predict_many(&[]).is_empty());
    }

    #[test]
    fn concurrent_prediction_is_consistent() {
        let ds = synthetic_dataset(8, 10);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let f = [0.4];
        let want = sur.predict(&f, 1.3);
        let sur = &sur;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(sur.predict(&f, 1.3), want);
                    }
                });
            }
        });
    }

    #[test]
    fn zero_epochs_trains_without_panic() {
        // epochs == 0 must produce an (untrained) surrogate and an empty
        // loss history, never a panic on first()/last() accesses.
        let ds = synthetic_dataset(6, 8);
        let cfg = SurrogateConfig {
            epochs: 0,
            ..quick_config()
        };
        let (sur, report) = Surrogate::train(&ds, &cfg).unwrap();
        assert!(report.pf.train_loss.is_empty());
        assert_eq!(report.pf.initial_train_loss(), None);
        assert_eq!(report.pf.final_train_loss(), None);
        let p = sur.predict(&[0.5], 1.0);
        assert!(p.pf.is_finite() && p.e_avg.is_finite() && p.e_std.is_finite());
    }

    #[test]
    fn fine_tune_is_deterministic_and_freezes_scalers() {
        let ds = synthetic_dataset(8, 10);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let cfg = FineTuneConfig {
            epochs: 20,
            seed: 11,
            ..Default::default()
        };
        let (a, report) = sur.fine_tune(&ds, &cfg).unwrap();
        let (b, _) = sur.fine_tune(&ds, &cfg).unwrap();
        // Bit-reproducible given (base, dataset, config).
        let p = |s: &Surrogate| s.predict(&[0.4], 1.2);
        assert_eq!(p(&a), p(&b));
        assert_eq!(report.val_rows, 0);
        assert_eq!(report.train_rows, ds.len());
        // Scalers are frozen: input/target normalisation is unchanged.
        assert_eq!(a.scalers(), sur.scalers());
        // The base surrogate is untouched by the tuning.
        let before = p(&sur);
        let _ = sur.fine_tune(&ds, &cfg).unwrap();
        assert_eq!(p(&sur), before);
    }

    #[test]
    fn fine_tune_improves_on_shifted_data() {
        // Train on one regime, fine-tune on a shifted one: the tuned
        // model must fit the new data better than the frozen base.
        let ds = synthetic_dataset(10, 12);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let mut shifted = SurrogateDataset::new(1);
        for row in ds.rows() {
            shifted.push(DatasetRow {
                e_avg: row.e_avg + 3.0,
                ..row.clone()
            });
        }
        let cfg = FineTuneConfig {
            epochs: 120,
            learning_rate: 2e-3,
            ..Default::default()
        };
        let (tuned, _) = sur.fine_tune(&shifted, &cfg).unwrap();
        let sse = |s: &Surrogate| -> f64 {
            shifted
                .rows()
                .iter()
                .map(|r| (s.predict(&r.features, r.a).e_avg - r.e_avg).powi(2))
                .sum()
        };
        assert!(
            sse(&tuned) < sse(&sur) * 0.6,
            "fine-tune did not adapt: {} vs base {}",
            sse(&tuned),
            sse(&sur)
        );
    }

    #[test]
    fn fine_tune_rejects_bad_datasets() {
        let ds = synthetic_dataset(6, 8);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let cfg = FineTuneConfig::default();
        assert!(matches!(
            sur.fine_tune(&SurrogateDataset::new(1), &cfg),
            Err(QrossError::BadDataset { .. })
        ));
        assert!(matches!(
            sur.fine_tune(&SurrogateDataset::new(3), &cfg),
            Err(QrossError::BadDataset { .. })
        ));
    }

    #[test]
    fn json_roundtrip() {
        let ds = synthetic_dataset(6, 8);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let json = sur.to_json().unwrap();
        let back = Surrogate::from_json(&json).unwrap();
        let p1 = sur.predict(&[0.2], 0.7);
        let p2 = back.predict(&[0.2], 0.7);
        assert_eq!(p1, p2);
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = SurrogateDataset::new(2);
        assert!(matches!(
            Surrogate::train(&ds, &quick_config()),
            Err(QrossError::BadDataset { .. })
        ));
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(matches!(
            Surrogate::from_json("{not json"),
            Err(QrossError::Persistence { .. })
        ));
    }

    /// Scratch-reusing entry points are an allocation optimisation only:
    /// they must return exactly the f64 bits of the allocating variants,
    /// including when the same scratch is reused across calls of
    /// different batch sizes (the serving worker's access pattern).
    #[test]
    fn scratch_variants_are_bit_identical() {
        let ds = synthetic_dataset(10, 12);
        let (sur, _) = Surrogate::train(&ds, &quick_config()).unwrap();
        let assert_same = |a: &[SurrogatePrediction], b: &[SurrogatePrediction]| {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.pf.to_bits(), y.pf.to_bits());
                assert_eq!(x.e_avg.to_bits(), y.e_avg.to_bits());
                assert_eq!(x.e_std.to_bits(), y.e_std.to_bits());
            }
        };

        let mut scratch = PredictScratch::new();
        // Shrinking, growing, and single-row batches through one scratch.
        for &rows in &[7usize, 2, 13, 1, 64] {
            let a_values: Vec<f64> = (0..rows).map(|k| 0.2 + 0.37 * k as f64).collect();
            let grid = sur.predict_grid(&[0.4], &a_values);
            let grid_scratch = sur.predict_grid_with(&mut scratch, &[0.4], &a_values);
            assert_same(&grid, &grid_scratch);

            let feats: Vec<[f64; 1]> = (0..rows).map(|k| [k as f64 / rows as f64]).collect();
            let queries: Vec<(&[f64], f64)> = feats
                .iter()
                .zip(&a_values)
                .map(|(f, &a)| (f.as_slice(), a))
                .collect();
            let many = sur.predict_many(&queries);
            let many_scratch = sur.predict_many_with(&mut scratch, &queries);
            assert_same(&many, &many_scratch);
        }
    }
}
