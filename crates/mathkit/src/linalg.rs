//! Symmetric positive-definite linear algebra: Cholesky factorisation and
//! triangular solves.
//!
//! These routines back the Gaussian-process regression used by the Bayesian
//! optimisation baseline tuner. Factorisation failures are reported through
//! [`MathError::NotPositiveDefinite`] so callers can retry with jitter.

use crate::{MathError, Matrix, Result};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
///
/// # Examples
///
/// ```
/// use mathkit::{Matrix, linalg::Cholesky};
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::factor(&a)?;
/// let x = ch.solve(&[2.0, 3.0])?;
/// // verify A x = b
/// assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-10);
/// assert!((2.0 * x[0] + 3.0 * x[1] - 3.0).abs() < 1e-10);
/// # Ok::<(), mathkit::MathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix `a` as `L L^T`.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed rather
    /// than checked.
    ///
    /// # Errors
    ///
    /// * [`MathError::DimensionMismatch`] if `a` is not square.
    /// * [`MathError::NotPositiveDefinite`] if a pivot is not strictly
    ///   positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(MathError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{n}x{m}"),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MathError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors `a + jitter * I`, increasing `jitter` geometrically (up to
    /// `max_tries` times) until the factorisation succeeds.
    ///
    /// This is the standard defensive pattern for Gram matrices built from
    /// kernels, which are positive semi-definite in exact arithmetic but can
    /// lose definiteness to rounding.
    ///
    /// # Errors
    ///
    /// Returns the final [`MathError::NotPositiveDefinite`] if every attempt
    /// fails, or [`MathError::DimensionMismatch`] for non-square input.
    pub fn factor_with_jitter(a: &Matrix, mut jitter: f64, max_tries: usize) -> Result<Self> {
        let n = a.rows();
        match Self::factor(a) {
            Ok(c) => return Ok(c),
            Err(MathError::NotPositiveDefinite) => {}
            Err(e) => return Err(e),
        }
        for _ in 0..max_tries {
            let mut aj = a.clone();
            for i in 0..n {
                aj[(i, i)] += jitter;
            }
            match Self::factor(&aj) {
                Ok(c) => return Ok(c),
                Err(MathError::NotPositiveDefinite) => jitter *= 10.0,
                Err(e) => return Err(e),
            }
        }
        Err(MathError::NotPositiveDefinite)
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.len()` differs from the
    /// factor dimension.
    #[allow(clippy::needless_range_loop)] // k indexes y and b in lockstep
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(MathError::DimensionMismatch {
                expected: format!("length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `L^T x = y` (backward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `y.len()` differs from the
    /// factor dimension.
    #[allow(clippy::needless_range_loop)] // k indexes x and y in lockstep
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if y.len() != n {
            return Err(MathError::DimensionMismatch {
                expected: format!("length {n}"),
                found: format!("length {}", y.len()),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves the full system `A x = b` where `A = L L^T`.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Log-determinant of `A = L L^T`, i.e. `2 * sum(log L_ii)`.
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        2.0 * (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M M^T + I for a fixed M, guaranteed SPD.
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 3.0], &[2.0, 0.0, 1.0]]);
        let mut a = m.matmul_t(&m);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul_t(ch.l());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = ch.solve(&b).unwrap();
        // verify A x == b
        for i in 0..3 {
            let mut acc = 0.0;
            for j in 0..3 {
                acc += a[(i, j)] * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            MathError::NotPositiveDefinite
        );
    }

    #[test]
    fn jitter_recovers_semidefinite() {
        // Rank-deficient Gram matrix: [1 1; 1 1].
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let ch = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(ch.l()[(0, 0)] > 0.0);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_diagonal() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = 4.0;
        a[(1, 1)] = 9.0;
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (4.0_f64 * 9.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn solve_dimension_mismatch() {
        let ch = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }
}
