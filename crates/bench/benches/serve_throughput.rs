//! Criterion bench for the serving path: batched `predict_many` (one
//! matrix forward per head, the serving engine's micro-batch primitive)
//! vs the same queries issued as per-request `predict` calls, at batch
//! sizes 1 / 16 / 64 / 256 — demonstrating that stacking concurrent
//! requests beats answering them one by one, which is the whole point of
//! the `qross-serve` micro-batcher. A full engine round-trip (submit +
//! queue + worker + channel) is timed too, to price the orchestration
//! overhead.
//!
//! The setup asserts batched output is **bit-identical** to per-row
//! `predict` before any timing runs, so a batching regression fails the
//! bench smoke step rather than producing fast-but-wrong numbers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use neural::network::MlpBuilder;
use qross::dataset::Scalers;
use qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross::surrogate::{Surrogate, SurrogateState};

/// Paper-architecture surrogate (24 features + ln A, 64-wide heads),
/// seed-built — no training needed to measure inference throughput.
fn sample_surrogate() -> Surrogate {
    let feat_dim = 24;
    let zscore = |m: f64, s: f64| mathkit::stats::ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(feat_dim + 1)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(1)
            .sigmoid()
            .build(7)
            .to_state(),
        e_net: MlpBuilder::new(feat_dim + 1)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(2)
            .build(8)
            .to_state(),
        scalers: Scalers {
            features: (0..feat_dim).map(|c| zscore(c as f64 * 0.1, 1.5)).collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(10.0, 4.0),
            e_std: zscore(1.0, 0.3),
        },
    };
    Surrogate::from_state(state).expect("consistent state")
}

/// `count` distinct deterministic queries (different features *and* A —
/// the mixed-instance traffic a serving process sees).
fn sample_queries(count: usize) -> Vec<(Vec<f64>, f64)> {
    (0..count)
        .map(|k| {
            let features: Vec<f64> = (0..24)
                .map(|c| ((k * 31 + c * 17) % 97) as f64 / 97.0 - 0.5)
                .collect();
            let a = 0.05 + (k % 13) as f64 * 0.4;
            (features, a)
        })
        .collect()
}

fn bench_serve_throughput(c: &mut Criterion) {
    let surrogate = sample_surrogate();
    let queries = sample_queries(256);

    // Determinism gate: batched must equal per-row bit for bit.
    {
        let refs: Vec<(&[f64], f64)> = queries.iter().map(|(f, a)| (f.as_slice(), *a)).collect();
        let batched = surrogate.predict_many(&refs);
        for (k, &(f, a)) in refs.iter().enumerate() {
            let single = surrogate.predict(f, a);
            assert_eq!(
                batched[k].pf.to_bits(),
                single.pf.to_bits(),
                "batched Pf diverged at row {k}"
            );
            assert_eq!(batched[k].e_avg.to_bits(), single.e_avg.to_bits());
            assert_eq!(batched[k].e_std.to_bits(), single.e_std.to_bits());
        }
    }

    let mut group = c.benchmark_group("serve_throughput");
    for &batch in &[1usize, 16, 64, 256] {
        let slice = &queries[..batch];
        let refs: Vec<(&[f64], f64)> = slice.iter().map(|(f, a)| (f.as_slice(), *a)).collect();
        group.bench_function(&format!("sequential_{batch}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(f, a) in &refs {
                    acc += surrogate.predict(f, a).pf;
                }
                acc
            })
        });
        group.bench_function(&format!("batched_{batch}"), |b| {
            b.iter(|| {
                surrogate
                    .predict_many(&refs)
                    .iter()
                    .map(|p| p.pf)
                    .sum::<f64>()
            })
        });
    }

    // Engine round-trip: queue + worker + channel on top of one forward.
    let engine = ServeEngine::new(
        ServeModel::Surrogate(Arc::new(sample_surrogate())),
        ServeConfig {
            workers: 1,
            cache_capacity: 0, // measure compute, not cache hits
            ..Default::default()
        },
    );
    let (f0, a0) = (&queries[0].0, queries[0].1);
    group.bench_function("engine_roundtrip_1", |b| {
        b.iter(|| engine.predict(f0, a0).expect("serve").pf)
    });
    group.bench_function("engine_pipelined_64", |b| {
        b.iter(|| {
            let pending: Vec<_> = queries[..64]
                .iter()
                .map(|(f, a)| engine.submit(f.clone(), vec![*a]).expect("submit"))
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().expect("wait")[0].pf)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
