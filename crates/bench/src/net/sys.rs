//! Minimal Linux readiness-notification FFI — `epoll(7)` with a
//! `poll(2)` fallback — plus a self-pipe waker.
//!
//! No `libc`, no `mio`, no tokio: the offline build bakes in nothing but
//! std, so the handful of syscalls the event loop needs are declared
//! here directly. Everything is wrapped immediately in safe types
//! ([`Poller`], [`WakePipe`]); no raw fd or `unsafe` leaks past this
//! module.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_short = i16;

// On x86_64 the kernel ABI packs epoll_event (no padding between the
// 32-bit mask and the 64-bit payload); other architectures use natural
// alignment. Getting this wrong corrupts every second event.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;

const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

/// What a registered fd is watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn epoll_mask(self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    fn poll_mask(self) -> c_short {
        let mut mask = 0;
        if self.readable {
            mask |= POLLIN;
        }
        if self.writable {
            mask |= POLLOUT;
        }
        mask
    }
}

/// One readiness event, keyed by the caller's token.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// error or hangup: the fd needs attention even if neither readable
    /// nor writable was requested (the caller's read/write will surface
    /// the actual error)
    pub closed: bool,
}

enum Backend {
    Epoll {
        epfd: RawFd,
    },
    Poll {
        interest: HashMap<RawFd, (u64, Interest)>,
    },
}

/// Readiness poller: epoll where available, `poll(2)` otherwise. The
/// fallback rebuilds its fd array per wait — O(n) per call, fine for the
/// connection counts a poll-only host would see.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd >= 0 {
            return Ok(Poller {
                backend: Backend::Epoll { epfd },
            });
        }
        let err = io::Error::last_os_error();
        match err.raw_os_error() {
            // ENOSYS(38)/EINVAL(22): no epoll on this kernel — fall back.
            Some(38) | Some(22) => Ok(Poller {
                backend: Backend::Poll {
                    interest: HashMap::new(),
                },
            }),
            _ => Err(err),
        }
    }

    /// Whether this poller runs on the `poll(2)` fallback.
    pub fn is_fallback(&self) -> bool {
        matches!(self.backend, Backend::Poll { .. })
    }

    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => epoll_op(*epfd, EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll { interest: map } => {
                map.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => epoll_op(*epfd, EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll { interest: map } => {
                map.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => epoll_op(*epfd, EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Backend::Poll { interest: map } => {
                map.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events` with
    /// ready fds. Spurious wakeups (empty `events`) are normal.
    pub fn wait(&mut self, events: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            Backend::Epoll { epfd } => {
                let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
                // SAFETY: `raw` outlives the call and maxevents matches
                // its length.
                let n = loop {
                    let n = unsafe {
                        epoll_wait(*epfd, raw.as_mut_ptr(), raw.len() as c_int, timeout_ms)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &raw[..n] {
                    // Copy out of the (possibly packed) struct before use.
                    let (mask, data) = (ev.events, ev.data);
                    events.push(PollEvent {
                        token: data,
                        readable: mask & EPOLLIN != 0,
                        writable: mask & EPOLLOUT != 0,
                        closed: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { interest } => {
                let mut fds: Vec<PollFd> = Vec::with_capacity(interest.len());
                let mut tokens: Vec<u64> = Vec::with_capacity(interest.len());
                for (&fd, &(token, want)) in interest.iter() {
                    fds.push(PollFd {
                        fd,
                        events: want.poll_mask(),
                        revents: 0,
                    });
                    tokens.push(token);
                }
                // SAFETY: `fds` outlives the call and nfds matches its
                // length.
                let n = loop {
                    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                    if n >= 0 {
                        break n;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (slot, token) in fds.iter().zip(tokens) {
                        if slot.revents != 0 {
                            events.push(PollEvent {
                                token,
                                readable: slot.revents & POLLIN != 0,
                                writable: slot.revents & POLLOUT != 0,
                                closed: slot.revents & (POLLERR | POLLHUP) != 0,
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Backend::Epoll { epfd } = self.backend {
            // SAFETY: we own the fd and drop it exactly once.
            unsafe { close(epfd) };
        }
    }
}

fn epoll_op(epfd: RawFd, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
    let mut ev = EpollEvent {
        events: interest.epoll_mask(),
        data: token,
    };
    // SAFETY: `ev` lives across the call; DEL ignores the event pointer
    // (non-null for pre-2.6.9 kernel compatibility).
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Self-pipe waker: the engine's worker threads write one byte to wake a
/// poller blocked in `wait`. Cloneable across threads; fds close when
/// the last clone drops — so completion hooks held by in-flight jobs can
/// never write into a recycled fd.
#[derive(Clone)]
pub struct WakePipe {
    inner: std::sync::Arc<PipeFds>,
}

struct PipeFds {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Drop for PipeFds {
    fn drop(&mut self) {
        // SAFETY: we own both fds and drop them exactly once.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid 2-slot out array.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            inner: std::sync::Arc::new(PipeFds {
                read_fd: fds[0],
                write_fd: fds[1],
            }),
        })
    }

    /// The fd to register readable with a [`Poller`].
    pub fn read_fd(&self) -> RawFd {
        self.inner.read_fd
    }

    /// Wakes the poller. A full pipe (`EAGAIN`) is fine — the poller is
    /// already pending a wake; any other failure is ignored too, since a
    /// missed wake degrades to the poller's next timeout, never to
    /// corruption.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write from a live stack buffer to an fd the
        // Arc keeps open.
        unsafe { write(self.inner.write_fd, &byte, 1) };
    }

    /// Drains every buffered wake (call once per poller wakeup).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reads into a live stack buffer of the stated size.
            let n = unsafe { read(self.inner.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return; // empty (EAGAIN) or closed — drained either way
            }
        }
    }
}
