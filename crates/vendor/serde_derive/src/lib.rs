//! Derive macros for the offline `serde` subset.
//!
//! `syn`/`quote` are unavailable offline, so the derive input is parsed
//! directly from `proc_macro::TokenStream`. Supported shapes — exactly what
//! the workspace uses:
//!
//! * named-field structs (`struct S { a: T, .. }`);
//! * unit structs (`struct S;`), serialised as `null`;
//! * enums whose variants are unit (`V`) or named-field (`V { a: T }`),
//!   serialised as `"V"` / `{"V": {..}}` (serde's externally-tagged
//!   default).
//!
//! Tuple structs, tuple variants, generics and `#[serde(...)]` attributes
//! are rejected with a compile-time panic rather than silently
//! mis-serialised.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    UnitStruct,
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Option<Vec<String>>, // None = unit variant
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (value-tree subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let name = &parsed.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {} }}\n\
         }}",
        parsed.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(value, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut code = String::new();
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "\"{0}\" => return ::std::result::Result::Ok({name}::{0}),",
                        v.name
                    )
                })
                .collect();
            if !unit_arms.is_empty() {
                code.push_str(&format!(
                    "if let ::serde::Value::Str(s) = value {{\n\
                     match s.as_str() {{ {} _ => {{}} }}\n\
                     }}\n",
                    unit_arms.join(" ")
                ));
            }
            for v in variants.iter() {
                if let Some(fields) = &v.fields {
                    let vname = &v.name;
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(inner, \"{f}\")?"))
                        .collect();
                    code.push_str(&format!(
                        "if let ::std::option::Option::Some(inner) = value.get(\"{vname}\") {{\n\
                         return ::std::result::Result::Ok({name}::{vname} {{ {} }});\n\
                         }}\n",
                        inits.join(", ")
                    ));
                }
            }
            code.push_str(&format!(
                "::std::result::Result::Err(::serde::DeError::new(\
                 \"no matching variant of `{name}`\"))"
            ));
            code
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kind = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(i)) if i.to_string() == "enum" => "enum",
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by the offline subset");
        }
    }
    let shape = if kind == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple structs are not supported by the offline subset")
            }
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        }
    };
    Input { name, shape }
}

/// Advances past outer attributes (`#[..]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(field)) = tokens.get(pos) else {
            break;
        };
        fields.push(field.to_string());
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde derive: expected `:` after field name, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Parses enum variants (unit or named-field).
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(vname)) = tokens.get(pos) else {
            break;
        };
        let name = vname.to_string();
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple enum variants are not supported by the offline subset")
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    variants
}
