//! Criterion bench for the serving *transports*: the nonblocking epoll
//! event loop (`bench::net::serve_event_loop`) vs the thread-per-connection
//! oracle, replaying the same pipelined NDJSON predict traffic over real
//! TCP sockets at a matrix of connection counts × pipeline depths.
//!
//! What this prices is multiplexing overhead, not inference: every
//! request is answered by the same seed-built surrogate, and a
//! correctness gate asserts each transport returns exactly one response
//! line per request before any timing runs.
//!
//! Representative medians from this machine (1 CPU, release build,
//! `cargo bench -p bench --bench serve_concurrency`), recorded when the
//! event loop landed:
//!
//! | scenario                | threaded oracle | event loop |
//! |-------------------------|-----------------|------------|
//! | 1 conn  × 16 pipelined  |        ~485 µs  |    ~232 µs |
//! | 8 conns × 16 pipelined  |        ~3.7 ms  |    ~1.7 ms |
//! | 32 conns × 8 pipelined  |       ~10.4 ms  |    ~4.3 ms |
//!
//! (Absolute numbers vary by host; the point is the event loop tracks or
//! beats thread-per-connection while holding one thread and bounded
//! memory per connection. Re-run after transport changes and update.)

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::net::{serve_event_loop, EventLoopConfig};
use bench::protocol::serve_connection;
use mathkit::stats::ZScore;
use neural::network::MlpBuilder;
use qross::dataset::Scalers;
use qross::pipeline::{PipelineConfig, TrainedQross};
use qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross::StatisticalFeaturizer;

/// Feature width of [`StatisticalFeaturizer`].
const FEAT_DIM: usize = 24;

/// Seed-derived bundle over the statistical featurizer (same shape as
/// the serving integration suites: real code paths, no training time).
fn test_engine() -> Arc<ServeEngine> {
    let zscore = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    let surrogate = Surrogate::from_state(state).expect("consistent state");
    let bundle = Arc::new(TrainedQross {
        surrogate,
        featurizer: Box::new(StatisticalFeaturizer::new()),
        train_encodings: Vec::new(),
        test_encodings: Vec::new(),
        dataset_len: 0,
        report: TrainReport::default(),
        config: PipelineConfig::micro(),
    });
    Arc::new(ServeEngine::new(
        ServeModel::Bundle(bundle),
        ServeConfig {
            workers: 2,
            max_batch_rows: 16,
            ..Default::default()
        },
    ))
}

/// One pipelined NDJSON predict request, deterministic per `k`.
fn predict_line(id: u64, k: usize) -> String {
    let features: Vec<String> = (0..FEAT_DIM)
        .map(|c| format!("{:.6}", ((k * 13 + c * 7) % 29) as f64 / 7.0 - 2.0))
        .collect();
    let a = 0.1 + (k % 11) as f64 * 0.45;
    format!(
        "{{\"id\": {id}, \"op\": \"predict\", \"features\": [{}], \"a\": {a}}}\n",
        features.join(", ")
    )
}

/// Starts the nonblocking event loop on an ephemeral port. The returned
/// flag shuts the loop down (it polls it every 25 ms when set).
fn spawn_event_loop(engine: Arc<ServeEngine>) -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    std::thread::spawn(move || {
        serve_event_loop(
            &engine,
            listener,
            EventLoopConfig {
                shutdown: Some(flag),
                ..Default::default()
            },
        )
        .expect("event loop");
    });
    (addr, shutdown)
}

/// Starts the thread-per-connection oracle on an ephemeral port. The
/// accept thread lives until the bench process exits (criterion runs all
/// groups in one process; two idle accept threads are harmless).
fn spawn_threaded(engine: Arc<ServeEngine>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let reader = BufReader::new(stream.try_clone().expect("clone"));
                let _ = serve_connection(&engine, reader, stream);
            });
        }
    });
    addr
}

/// Opens `conns` connections, pipelines `depth` requests down each,
/// half-closes, and drains every response. Returns total response lines.
fn replay(addr: SocketAddr, conns: usize, depth: usize) -> usize {
    let mut streams: Vec<TcpStream> = (0..conns)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    for (c, stream) in streams.iter_mut().enumerate() {
        let burst: String = (0..depth)
            .map(|r| predict_line(r as u64, c * depth + r))
            .collect();
        stream.write_all(burst.as_bytes()).expect("send");
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut lines = 0;
    for stream in &mut streams {
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("drain");
        lines += out.lines().count();
    }
    lines
}

fn bench_serve_concurrency(c: &mut Criterion) {
    let (loop_addr, loop_shutdown) = spawn_event_loop(test_engine());
    let threaded_addr = spawn_threaded(test_engine());

    // Correctness gate before any timing: both transports answer every
    // request exactly once.
    assert_eq!(replay(loop_addr, 4, 4), 16, "event loop dropped responses");
    assert_eq!(replay(threaded_addr, 4, 4), 16, "oracle dropped responses");

    let mut group = c.benchmark_group("serve_concurrency");
    group.sample_size(10);
    for &(conns, depth) in &[(1usize, 16usize), (8, 16), (32, 8)] {
        let requests = conns * depth;
        group.bench_function(&format!("threaded_{conns}x{depth}"), |b| {
            b.iter(|| assert_eq!(replay(threaded_addr, conns, depth), requests))
        });
        group.bench_function(&format!("event_loop_{conns}x{depth}"), |b| {
            b.iter(|| assert_eq!(replay(loop_addr, conns, depth), requests))
        });
    }
    group.finish();

    loop_shutdown.store(true, Ordering::SeqCst);
}

criterion_group!(benches, bench_serve_concurrency);
criterion_main!(benches);
