//! # qubo — QUBO models, energies and penalty relaxation
//!
//! The paper's problem-solving pipeline starts from a constrained binary
//! program `min x'Qx  s.t.  Cx = d` and relaxes it into an unconstrained
//! QUBO `min x'Qx + A·‖Cx − d‖²` (§1). This crate provides:
//!
//! * [`model`] — [`QuboModel`]: a sparse symmetric quadratic form over
//!   binary variables stored as flat **CSR arrays** (`row_offsets` /
//!   `col_indices` / `values`, plus a `mirror` permutation linking each
//!   entry to its symmetric twin), built through [`QuboBuilder`]; energy
//!   evaluation walks contiguous memory, and
//!   [`QuboModel::map_coefficients`] transforms coefficients while
//!   **reusing the CSR skeleton** instead of rebuilding adjacency (used by
//!   the noise/precision solver wrappers);
//! * [`state`] — [`QuboState`]: the single incremental flip engine shared
//!   by every solver — cached total energy, a maintained flip-delta vector
//!   (`flip_delta` is an O(1) read, `flip` an O(degree) update), and bulk
//!   `assign_all`/`randomize` resets that rebuild both caches in one CSR
//!   pass without reallocating. Incremental values agree with a full
//!   recomputation to ≤ 1e-9 over arbitrary flip sequences
//!   (property-tested);
//! * [`batch`] — [`ReplicaBatch`]: the lockstep multi-replica counterpart
//!   of [`QuboState`] — N replicas' assignments and flip-delta vectors
//!   stored structure-of-arrays and rebuilt in one shared CSR traversal,
//!   with every lane bit-identical to an independent state
//!   (property-tested); the SA/DA replica loops batch through it;
//! * [`program`] — [`ConstrainedBinaryProgram`]: linear-equality-constrained
//!   binary programs and their penalty relaxation parameterised by `A`;
//! * [`ising`] — conversion between QUBO and Ising forms.
//!
//! # Examples
//!
//! Build a tiny QUBO and evaluate its energy:
//!
//! ```
//! use qubo::QuboBuilder;
//! let mut b = QuboBuilder::new(3);
//! b.add_linear(0, -1.0);
//! b.add_quadratic(0, 1, 2.0);
//! let model = b.build();
//! // x = [1, 1, 0]: E = -1 + 2 = 1
//! assert_eq!(model.energy(&[1, 1, 0]), 1.0);
//! ```

pub mod batch;
pub mod ising;
pub mod model;
pub mod program;
pub mod state;

pub use batch::ReplicaBatch;
pub use ising::IsingModel;
pub use model::{QuboBuilder, QuboModel};
pub use program::{ConstrainedBinaryProgram, LinearConstraint};
pub use state::{LocalFieldState, QuboState};

/// Errors from QUBO construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuboError {
    /// A variable index was at least the declared number of variables.
    VariableOutOfRange {
        /// offending index
        index: usize,
        /// declared number of variables
        num_vars: usize,
    },
    /// An assignment slice had the wrong length.
    StateLengthMismatch {
        /// expected number of variables
        expected: usize,
        /// provided length
        found: usize,
    },
    /// A coefficient was NaN or infinite.
    NonFiniteCoefficient,
}

impl std::fmt::Display for QuboError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuboError::VariableOutOfRange { index, num_vars } => {
                write!(
                    f,
                    "variable index {index} out of range for {num_vars} variables"
                )
            }
            QuboError::StateLengthMismatch { expected, found } => {
                write!(
                    f,
                    "state length {found} does not match {expected} variables"
                )
            }
            QuboError::NonFiniteCoefficient => write!(f, "non-finite coefficient"),
        }
    }
}

impl std::error::Error for QuboError {}
