//! Offline, API-compatible subset of `serde`.
//!
//! The workspace only ever serialises plain data structs/enums to JSON and
//! back (`#[derive(Serialize, Deserialize)]` + `serde_json::to_string` /
//! `from_str`), so instead of vendoring the full serde data model this crate
//! implements a small value-tree design:
//!
//! * [`Value`] — a JSON-shaped tree (`Null`/`Bool`/`Int`/`UInt`/`Float`/
//!   `Str`/`Array`/`Object`);
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, DeError>`;
//! * derive macros (re-exported from `serde_derive`) that generate the two
//!   impls for named-field structs, unit structs and enums with unit /
//!   named-field variants — exactly the shapes the workspace uses.
//!
//! Representation choices mirror `serde_json`'s defaults so any JSON
//! artefacts written by earlier builds stay readable: enum unit variants
//! serialise as `"Name"`, struct variants as `{"Name": {..}}`, `Option` as
//! the value or `null`, tuples as arrays. Non-finite floats serialise as
//! `null` (and deserialise back to `NaN`) rather than erroring, because
//! solver observations can legitimately carry `NaN` sentinels.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the serialisation interchange format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`
    Null,
    /// JSON boolean
    Bool(bool),
    /// signed integer
    Int(i64),
    /// unsigned integer too large for `i64`
    UInt(u64),
    /// floating-point number
    Float(f64),
    /// string
    Str(String),
    /// array
    Array(Vec<Value>),
    /// object with insertion-ordered keys
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialisation error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// human-readable description
    pub message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the interchange tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Extracts and deserialises a struct field (derive-macro helper).
///
/// # Errors
///
/// Returns [`DeError`] when the key is missing (unless the target is an
/// `Option`, which treats a missing key as `None` via `Value::Null`) or its
/// value fails to deserialise.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    match value.get(name) {
        Some(v) => {
            T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {}", e.message)))
        }
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::new(format!("missing field `{name}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u128 = match value {
                    Value::Int(i) if *i >= 0 => *i as u128,
                    Value::UInt(u) => *u as u128,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u128,
                    other => return Err(DeError::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Float(*self as f64)
                } else {
                    Value::Null // JSON has no NaN/Inf; mirror serde_json's lossy escape hatch
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected char, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(value)?;
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {ARITY}-tuple array, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Deterministic output regardless of hasher iteration order.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some = Some(3.5f64);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u32, 2u32, -0.5f64);
        let v = t.to_value();
        assert_eq!(<(u32, u32, f64)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn nonfinite_floats_roundtrip_as_nan() {
        let v = f64::INFINITY.to_value();
        assert_eq!(v, Value::Null);
        assert!(f64::from_value(&v).unwrap().is_nan());
    }

    #[test]
    fn missing_field_is_error_unless_option() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(field::<i32>(&obj, "a").unwrap(), 1);
        assert!(field::<i32>(&obj, "b").is_err());
        assert_eq!(field::<Option<i32>>(&obj, "b").unwrap(), None);
    }

    #[test]
    fn u64_above_i64_range() {
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
