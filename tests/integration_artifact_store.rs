//! End-to-end artifact-store integration: the train-once / serve-many
//! contract.
//!
//! * A surrogate trained in one process and reloaded from a `.qross`
//!   bundle produces **bit-identical** `predict_grid` outputs and
//!   identical strategy proposals — at `workers = 1` (fully sequential)
//!   and `workers = 0` (one worker per core).
//! * The staged pipeline (collect → train) matches the one-shot
//!   [`Pipeline::try_run`] bit for bit, including after the corpus takes
//!   a round-trip through disk.
//! * The committed golden fixture from container-format v1 keeps
//!   decoding (forward-compatibility gate).

use bench::serve::proposal_trace;
use problems::TspInstance;
use qross_repro::neural::layers::LayerSpec;
use qross_repro::neural::network::MlpState;
use qross_repro::qross::dataset::{DatasetRow, Scalers, SurrogateDataset};
use qross_repro::qross::pipeline::{
    CollectedCorpus, Pipeline, PipelineConfig, QrossBundle, TrainedQross,
};
use qross_repro::qross::surrogate::{SurrogateState, TrainReport};
use qross_repro::qross::{FeaturizerSpec, Surrogate};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_store::Artifact;

fn solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 48,
        ..Default::default()
    })
}

fn micro_config(workers: usize) -> PipelineConfig {
    PipelineConfig {
        workers,
        ..PipelineConfig::micro()
    }
}

/// The manifest grid used for bit-exactness checks.
fn a_grid() -> Vec<f64> {
    (0..12)
        .map(|k| (0.02f64.ln() + (20.0f64.ln() - 0.02f64.ln()) * k as f64 / 11.0).exp())
        .collect()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("qross_artifact_store_it");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Train → save → load → compare, at the given worker count.
fn assert_serve_matches_train(workers: usize) {
    let trained = Pipeline::new(micro_config(workers))
        .try_run(&solver())
        .expect("micro pipeline trains");
    let path = temp_path(&format!("bundle_w{workers}.qross"));
    trained.save(&path).expect("save bundle");
    let reloaded = TrainedQross::load(&path).expect("load bundle");

    assert_eq!(reloaded.dataset_len, trained.dataset_len);
    assert_eq!(reloaded.config, trained.config);
    assert_eq!(reloaded.report, trained.report);
    assert_eq!(reloaded.test_encodings.len(), trained.test_encodings.len());

    let grid = a_grid();
    for (enc_t, enc_r) in trained.test_encodings.iter().zip(&reloaded.test_encodings) {
        // Featurisation must agree bit for bit...
        let feat_t = trained.features_for(enc_t);
        let feat_r = reloaded.features_for(enc_r);
        assert_eq!(feat_t, feat_r, "featurizer drifted through the bundle");
        // ...and so must every grid prediction.
        let preds_t = trained.surrogate.predict_grid(&feat_t, &grid);
        let preds_r = reloaded.surrogate.predict_grid(&feat_r, &grid);
        for (a, (pt, pr)) in grid.iter().zip(preds_t.iter().zip(&preds_r)) {
            assert_eq!(
                pt.pf.to_bits(),
                pr.pf.to_bits(),
                "Pf differs at A = {a} (workers = {workers})"
            );
            assert_eq!(pt.e_avg.to_bits(), pr.e_avg.to_bits());
            assert_eq!(pt.e_std.to_bits(), pr.e_std.to_bits());
        }
        // Strategy proposals — offline plan *and* the OFS refinement
        // driven by identical synthetic observations — must be identical.
        let mut strat_t = trained.strategy_for(enc_t, 24, 99);
        let mut strat_r = reloaded.strategy_for(enc_r, 24, 99);
        assert_eq!(
            strat_t.planned_offline(),
            strat_r.planned_offline(),
            "offline plan differs (workers = {workers})"
        );
        assert_eq!(
            proposal_trace(&mut strat_t, 8),
            proposal_trace(&mut strat_r, 8),
            "proposal sequence differs (workers = {workers})"
        );
    }
}

#[test]
fn reloaded_bundle_is_bit_identical_sequential() {
    assert_serve_matches_train(1);
}

#[test]
fn reloaded_bundle_is_bit_identical_parallel() {
    assert_serve_matches_train(0);
}

#[test]
fn staged_pipeline_matches_one_shot_run_through_disk() {
    let s = solver();
    let one_shot = Pipeline::new(micro_config(1))
        .try_run(&s)
        .expect("micro pipeline trains");

    // collect → (disk) → train must reproduce the one-shot run exactly.
    let corpus = Pipeline::new(micro_config(1))
        .collect_corpus(&s)
        .expect("collect stage");
    let path = temp_path("corpus.qross");
    corpus.save(&path).expect("save corpus");
    let reloaded_corpus = CollectedCorpus::load(&path).expect("load corpus");
    assert_eq!(reloaded_corpus, corpus);

    let staged = TrainedQross::train_on_corpus(&reloaded_corpus).expect("train stage");
    assert_eq!(staged.dataset_len, one_shot.dataset_len);
    assert_eq!(staged.report, one_shot.report);

    let grid = a_grid();
    for (enc_a, enc_b) in one_shot.test_encodings.iter().zip(&staged.test_encodings) {
        let pa = one_shot
            .surrogate
            .predict_grid(&one_shot.features_for(enc_a), &grid);
        let pb = staged
            .surrogate
            .predict_grid(&staged.features_for(enc_b), &grid);
        assert_eq!(pa, pb, "staged pipeline diverged from one-shot run");
    }
}

#[test]
fn bundle_bytes_are_worker_count_invariant() {
    // The dataset/surrogate are bit-identical across worker counts
    // (PR 2's contract), so — after normalising the `workers` throughput
    // knob, which is legitimately part of the stored config — the
    // serialized bundles must be byte-equal.
    let bundle_at = |workers: usize| {
        let mut bundle = Pipeline::new(micro_config(workers))
            .try_run(&solver())
            .expect("micro pipeline trains")
            .to_bundle()
            .expect("bundle");
        bundle.config.workers = 0;
        bundle.to_store_bytes()
    };
    assert_eq!(
        bundle_at(1),
        bundle_at(2),
        "bundle bytes differ between 1 and 2 workers"
    );
}

// ---------------------------------------------------------------------------
// Golden fixture (forward-compatibility gate)
// ---------------------------------------------------------------------------

/// The fixture's exact expected content, reconstructed from pure integer
/// arithmetic (no libm, no RNG) so it is identical on every platform.
fn golden_state() -> SurrogateState {
    // Tiny deterministic pseudo-random rationals: x_k = ((k*37+11) % 64 - 32) / 16.
    let val = |k: usize| (((k * 37 + 11) % 64) as f64 - 32.0) / 16.0;
    let dense = |input: usize, output: usize, salt: usize| LayerSpec::Dense {
        input,
        output,
        weights: (0..input * output).map(|k| val(k + salt)).collect(),
        bias: (0..output).map(|k| val(k + salt + 101)).collect(),
    };
    // Head shapes must satisfy the snapshot invariants the decoder
    // enforces: both consume the scalers' width (2 features + ln A = 3),
    // Pf emits 1 value, the energy head 2.
    let net = |salt: usize, out: usize| MlpState {
        input_dim: 3,
        layers: vec![dense(3, 4, salt), LayerSpec::Relu, dense(4, out, salt + 53)],
    };
    let z = |m: f64, s: f64| qross_repro::mathkit::stats::ZScore { mean: m, std: s };
    SurrogateState {
        pf_net: net(0, 1),
        e_net: net(211, 2),
        scalers: Scalers {
            features: vec![z(0.5, 2.0), z(-1.25, 0.5)],
            log_a: z(0.0, 1.0),
            e_avg: z(8.0, 4.0),
            e_std: z(1.0, 0.25),
        },
    }
}

const GOLDEN_PATH: &str = "tests/fixtures/golden_v1.qross";

/// Regenerate with `QROSS_WRITE_GOLDEN=1 cargo test golden -- --nocapture`
/// — only needed when the wire format version is bumped (and then the old
/// fixture should be *kept* and the new one added, so every historical
/// version stays covered).
#[test]
fn golden_fixture_still_decodes() {
    let expected = golden_state();
    if std::env::var("QROSS_WRITE_GOLDEN").is_ok() {
        expected.save(GOLDEN_PATH).expect("write golden fixture");
        println!("wrote {GOLDEN_PATH}");
    }
    let bytes = std::fs::read(GOLDEN_PATH).expect("golden fixture missing — see test doc");
    let decoded = SurrogateState::from_store_bytes(&bytes)
        .expect("golden v1 fixture no longer decodes: wire-format compatibility broken");
    assert_eq!(decoded.pf_net, expected.pf_net);
    assert_eq!(decoded.e_net, expected.e_net);
    assert_eq!(decoded.scalers, expected.scalers);
    // The decoded snapshot must restore to a working surrogate whose
    // output is finite and reproducible.
    let sur = Surrogate::from_state(decoded).expect("restore surrogate");
    let p = sur.predict(&[0.25, -0.5], 1.0);
    let q = sur.predict(&[0.25, -0.5], 1.0);
    assert_eq!(p, q);
    assert!(p.pf.is_finite() && p.e_avg.is_finite() && p.e_std.is_finite());
}

// ---------------------------------------------------------------------------
// Golden instance-section fixtures (payload v1 dense / v2 sparse)
// ---------------------------------------------------------------------------

const GOLDEN_CORPUS_V1_PATH: &str = "tests/fixtures/golden_corpus_v1.qross";
const GOLDEN_CORPUS_V2_PATH: &str = "tests/fixtures/golden_corpus_v2.qross";
const GOLDEN_BUNDLE_V1_PATH: &str = "tests/fixtures/golden_bundle_v1.qross";

/// Golden instances from pure integer arithmetic: quarter-unit
/// coordinates are exactly representable and `sqrt` is IEEE-correctly
/// rounded, so the derived distance matrices are identical on every
/// platform. One instance is pushed through `scaled` (coords dropped)
/// so the fixtures cover the upper-triangle storage path too.
fn golden_instances() -> Vec<TspInstance> {
    let coords_of = |salt: usize| -> Vec<(f64, f64)> {
        (0..6)
            .map(|i| {
                let x = ((i * 13 + salt * 7 + 5) % 40) as f64 * 0.25;
                let y = ((i * 29 + salt * 11 + 3) % 40) as f64 * 0.25;
                (x, y)
            })
            .collect()
    };
    let a = TspInstance::from_coords("golden-a", &coords_of(0));
    let b = TspInstance::from_coords("golden-b", &coords_of(1));
    let explicit = a.scaled(2.0);
    vec![a, b, explicit]
}

/// The golden corpus: coordinate + explicit instances, the RandomGcn
/// recipe (2·4 + 2 = 10 features) and a tiny matching dataset, all from
/// integer-derived rationals.
fn golden_corpus() -> CollectedCorpus {
    let val = |k: usize| (((k * 37 + 11) % 64) as f64 - 32.0) / 16.0;
    let mut dataset = SurrogateDataset::new(10);
    for r in 0..2 {
        dataset.push(DatasetRow {
            features: (0..10).map(|c| val(r * 10 + c)).collect(),
            a: 0.5 + r as f64,
            pf: 0.25 * (r + 1) as f64,
            e_avg: 4.0 - r as f64,
            e_std: 0.5,
        });
    }
    let instances = golden_instances();
    CollectedCorpus {
        config: PipelineConfig::micro(),
        featurizer: FeaturizerSpec::RandomGcn { hidden: 4, seed: 9 },
        train_instances: instances.clone(),
        test_instances: instances[..1].to_vec(),
        dataset,
    }
}

/// A golden serve bundle over the same instances: a pure-integer
/// surrogate snapshot sized to the RandomGcn recipe's 10 features.
fn golden_bundle() -> QrossBundle {
    let val = |k: usize| (((k * 37 + 11) % 64) as f64 - 32.0) / 16.0;
    let dense = |input: usize, output: usize, salt: usize| LayerSpec::Dense {
        input,
        output,
        weights: (0..input * output).map(|k| val(k + salt)).collect(),
        bias: (0..output).map(|k| val(k + salt + 101)).collect(),
    };
    let net = |salt: usize, out: usize| MlpState {
        input_dim: 11,
        layers: vec![
            dense(11, 4, salt),
            LayerSpec::Relu,
            dense(4, out, salt + 53),
        ],
    };
    let z = |m: f64, s: f64| qross_repro::mathkit::stats::ZScore { mean: m, std: s };
    let corpus = golden_corpus();
    QrossBundle {
        config: corpus.config,
        featurizer: corpus.featurizer,
        surrogate: SurrogateState {
            pf_net: net(0, 1),
            e_net: net(211, 2),
            scalers: Scalers {
                features: (0..10).map(|k| z(val(k), 2.0)).collect(),
                log_a: z(0.0, 1.0),
                e_avg: z(8.0, 4.0),
                e_std: z(1.0, 0.25),
            },
        },
        train_instances: corpus.train_instances,
        test_instances: corpus.test_instances,
        dataset_len: corpus.dataset.len(),
        report: TrainReport::default(),
    }
}

fn write_fixture(path: &str, bytes: &[u8]) {
    if std::env::var("QROSS_WRITE_GOLDEN").is_ok() {
        std::fs::write(path, bytes).expect("write golden fixture");
        println!("wrote {path}");
    }
}

/// The committed v1 (dense-matrix) and v2 (sparse coordinate) corpus
/// fixtures must both keep decoding, and must reconstruct bit-identical
/// distance matrices. The v2 fixture additionally restores coordinate
/// provenance; v1 cannot carry it. Regenerate (both at once) with
/// `QROSS_WRITE_GOLDEN=1 cargo test golden` — when the payload version
/// bumps again, keep these fixtures and add new ones.
#[test]
fn golden_corpus_fixtures_decode_with_bit_identical_instances() {
    let expected = golden_corpus();
    write_fixture(GOLDEN_CORPUS_V1_PATH, &expected.to_v1_bytes());
    write_fixture(GOLDEN_CORPUS_V2_PATH, &expected.to_store_bytes());

    let v1_bytes = std::fs::read(GOLDEN_CORPUS_V1_PATH).expect("v1 corpus fixture missing");
    let v1 = CollectedCorpus::from_store_bytes(&v1_bytes)
        .expect("golden v1 corpus no longer decodes: dense-instance compatibility broken");
    assert_eq!(v1.config, expected.config);
    assert_eq!(v1.featurizer, expected.featurizer);
    assert_eq!(v1.dataset, expected.dataset);
    for (got, want) in v1.train_instances.iter().chain(&v1.test_instances).zip(
        expected
            .train_instances
            .iter()
            .chain(&expected.test_instances),
    ) {
        assert_eq!(got.name(), want.name());
        let bits = |i: &TspInstance| -> Vec<u64> {
            i.matrix().as_slice().iter().map(|x| x.to_bits()).collect()
        };
        assert_eq!(bits(got), bits(want), "v1 matrix bits drifted");
        assert!(got.coords().is_none(), "v1 cannot carry coordinates");
    }

    let v2_bytes = std::fs::read(GOLDEN_CORPUS_V2_PATH).expect("v2 corpus fixture missing");
    let v2 = CollectedCorpus::from_store_bytes(&v2_bytes)
        .expect("golden v2 corpus no longer decodes: sparse-instance compatibility broken");
    assert_eq!(v2, expected, "v2 reload is not bit-identical");
    assert!(v2.train_instances[0].coords().is_some());
    assert!(v2.train_instances[2].coords().is_none());
}

/// The v1-reader compatibility gate the refactor must preserve: a serve
/// bundle written with the legacy dense instance section reloads through
/// today's reader into a model whose featurisation and `predict_grid`
/// are bit-identical to the in-memory original.
#[test]
fn golden_bundle_v1_reloads_with_bit_identical_predict_grid() {
    let expected = golden_bundle();
    write_fixture(GOLDEN_BUNDLE_V1_PATH, &expected.to_v1_bytes());

    let bytes = std::fs::read(GOLDEN_BUNDLE_V1_PATH).expect("v1 bundle fixture missing");
    let decoded = QrossBundle::from_store_bytes(&bytes)
        .expect("golden v1 bundle no longer decodes: dense-instance compatibility broken");
    let reloaded = decoded.into_trained().expect("restore trained model");
    let reference = expected.into_trained().expect("restore reference model");

    let grid = a_grid();
    assert_eq!(
        reloaded.test_encodings.len(),
        reference.test_encodings.len()
    );
    for (enc_r, enc_e) in reloaded
        .test_encodings
        .iter()
        .zip(&reference.test_encodings)
    {
        let feat_r = reloaded.features_for(enc_r);
        let feat_e = reference.features_for(enc_e);
        assert_eq!(
            feat_r, feat_e,
            "featurisation drifted through the v1 reader"
        );
        for (pr, pe) in reloaded
            .surrogate
            .predict_grid(&feat_r, &grid)
            .iter()
            .zip(reference.surrogate.predict_grid(&feat_e, &grid))
        {
            assert_eq!(pr.pf.to_bits(), pe.pf.to_bits());
            assert_eq!(pr.e_avg.to_bits(), pe.e_avg.to_bits());
            assert_eq!(pr.e_std.to_bits(), pe.e_std.to_bits());
        }
    }
}
