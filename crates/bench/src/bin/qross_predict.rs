//! `qross-predict` — the serve half of the train-once / serve-many loop.
//!
//! Reloads a model written by `qross-train` (binary or JSON, sniffed by
//! magic bytes) in a *fresh process* and regenerates the predictions
//! manifest. Because the manifest stores exact `f64` bit patterns, a
//! plain `diff` against the training process's manifest proves the
//! reloaded model is bit-identical to the trained one — the whole point
//! of the artifact store.
//!
//! TSP bundles are self-contained: the manifest's batch size, strategy
//! seed and evaluation instances all come from the bundle itself, so
//! `--model` is the only flag the TSP serve side needs. MVC/QAP models
//! are bare surrogate snapshots; their corpus is regenerated from
//! `--problem`/`--scale`/`--seed`, which must match the training run.

use bench::serve::{generic_manifest, parse_serve_cli, tsp_manifest, usage_exit, ProblemKind};
use qross::pipeline::TrainedQross;
use qross::surrogate::{Surrogate, SurrogateState};
use qross_store::Artifact;

const USAGE: &str = "qross-predict --model PATH [--problem tsp|mvc|qap] \
                     [--scale micro|quick|paper] [--seed N] [--manifest PATH]";

fn main() {
    let mut args = parse_serve_cli(USAGE, false);
    if args.model.is_empty() {
        usage_exit(USAGE, "--model is required");
    }
    if args.manifest.is_empty() {
        args.manifest = format!("results/predictions-{}-serve.json", args.problem.name());
    }

    let manifest = match args.problem {
        ProblemKind::Tsp => {
            let trained = TrainedQross::load(&args.model)
                .unwrap_or_else(|e| fail(&format!("loading bundle failed: {e}")));
            println!(
                "loaded {:?} from {} ({} test instances)",
                trained,
                args.model,
                trained.test_encodings.len()
            );
            tsp_manifest(&trained)
        }
        kind => {
            let state = SurrogateState::load_auto(&args.model)
                .unwrap_or_else(|e| fail(&format!("loading surrogate failed: {e}")));
            let surrogate = Surrogate::from_state(state)
                .unwrap_or_else(|e| fail(&format!("restoring surrogate failed: {e}")));
            println!("loaded {} surrogate from {}", kind.name(), args.model);
            generic_manifest(kind, &surrogate, args.scale, args.seed)
        }
    };
    qross_store::json::write_json_file(&args.manifest, &manifest)
        .unwrap_or_else(|e| fail(&format!("writing manifest failed: {e}")));
    println!(
        "wrote manifest  {} ({} instances x {} grid points)",
        args.manifest,
        manifest.entries.len(),
        manifest.a_grid_bits.len()
    );
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}
