//! Instance feature extraction.
//!
//! The paper feeds the surrogate a fixed-size embedding of the problem
//! instance, produced in their experiments by aggregating the edge-level
//! features of a *pre-trained* graph convolutional network (appendix C/G).
//! That checkpoint is not available, so two substitutes are provided (see
//! DESIGN.md):
//!
//! * [`StatisticalFeaturizer`] (default) — deterministic graph-level
//!   statistics of the distance matrix: size features, distance moments
//!   and quantiles, nearest-neighbour statistics, minimum-spanning-tree
//!   weight and a greedy-tour estimate. These capture exactly the scale
//!   and dispersion information the relaxation parameter responds to.
//! * [`RandomGcnFeaturizer`] — a fixed-random-weight two-layer graph
//!   convolution (echo-state style) over the distance-derived adjacency,
//!   mean+max-pooled to a graph vector. Untrained but *structure-aware*,
//!   mirroring the "frozen feature extractor + trained head" split of the
//!   paper.
//!
//! Both implement [`FeatureExtractor`] and are interchangeable throughout
//! the pipeline; an ablation bench compares them.

use mathkit::stats;
use mathkit::Matrix;
use problems::TspInstance;
use serde::{Deserialize, Serialize};

/// Maps a TSP instance to a fixed-size feature vector.
pub trait FeatureExtractor: Send + Sync {
    /// Length of the produced vectors.
    fn dim(&self) -> usize;

    /// Extracts the feature vector of `instance`.
    fn extract(&self, instance: &TspInstance) -> Vec<f64>;

    /// Short identifier for experiment manifests.
    fn name(&self) -> &str;

    /// Serialisable reconstruction recipe, when one exists.
    ///
    /// Built-in featurizers return a [`FeaturizerSpec`] that rebuilds an
    /// *identical* extractor (same outputs, bit for bit) in another
    /// process — the hook the artifact store uses to persist a trained
    /// pipeline. Custom extractors may return `None`; pipelines using
    /// them train and serve normally but cannot be saved as bundles.
    fn spec(&self) -> Option<FeaturizerSpec> {
        None
    }
}

/// Serialisable recipe rebuilding a built-in [`FeatureExtractor`].
///
/// The spec is what travels inside `.qross` bundles: featurizers are pure
/// deterministic functions of their spec, so persisting the recipe (a few
/// bytes) instead of any derived state keeps bundles small and guarantees
/// the reloaded extractor matches the trained one exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeaturizerSpec {
    /// [`StatisticalFeaturizer`] (no parameters).
    Statistical,
    /// [`RandomGcnFeaturizer`] with its construction parameters.
    RandomGcn {
        /// hidden channel count
        hidden: usize,
        /// frozen-weight seed
        seed: u64,
    },
}

impl FeaturizerSpec {
    /// Builds the featurizer this spec describes.
    pub fn build(&self) -> Box<dyn FeatureExtractor> {
        match *self {
            FeaturizerSpec::Statistical => Box::new(StatisticalFeaturizer::new()),
            FeaturizerSpec::RandomGcn { hidden, seed } => {
                Box::new(RandomGcnFeaturizer::new(hidden, seed))
            }
        }
    }

    /// Feature width the described extractor produces — without
    /// constructing it (decoders use this to cross-check a persisted
    /// spec against the surrogate's scalers before building anything).
    pub fn dim(&self) -> usize {
        match *self {
            FeaturizerSpec::Statistical => StatisticalFeaturizer::new().dim(),
            // Mean-pool + max-pool over `hidden` channels, plus n and the
            // mean distance — must match `RandomGcnFeaturizer::dim`.
            FeaturizerSpec::RandomGcn { hidden, .. } => 2 * hidden + 2,
        }
    }
}

/// Deterministic statistical featurizer (24 features).
///
/// # Examples
///
/// ```
/// use problems::TspInstance;
/// use qross::features::{FeatureExtractor, StatisticalFeaturizer};
/// let inst = TspInstance::from_coords("t", &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (2.0, 2.0)]);
/// let f = StatisticalFeaturizer::new();
/// let v = f.extract(&inst);
/// assert_eq!(v.len(), f.dim());
/// assert!(v.iter().all(|x| x.is_finite()));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatisticalFeaturizer;

impl StatisticalFeaturizer {
    /// Creates the featurizer.
    pub fn new() -> Self {
        StatisticalFeaturizer
    }
}

impl FeatureExtractor for StatisticalFeaturizer {
    fn dim(&self) -> usize {
        problems::tsp::features::STAT_DIM
    }

    // The recipe itself moved to `problems::tsp::features` when the
    // problem-family layer took ownership of featurization; this wrapper
    // is bit-for-bit identical to the pre-move extractor.
    fn extract(&self, instance: &TspInstance) -> Vec<f64> {
        problems::tsp::features::statistical_features(instance)
    }

    fn name(&self) -> &str {
        "stat"
    }

    fn spec(&self) -> Option<FeaturizerSpec> {
        Some(FeaturizerSpec::Statistical)
    }
}

/// Fixed-random-weight graph-convolution featurizer.
///
/// Node features are per-city distance statistics; two graph-convolution
/// layers with frozen seed-derived weights propagate them over the
/// Gaussian-kernel adjacency `Â_ij ∝ exp(−(d_ij/σ)²)` (row-normalised);
/// the graph embedding is the concatenation of mean- and max-pooled node
/// embeddings.
#[derive(Debug, Clone)]
pub struct RandomGcnFeaturizer {
    hidden: usize,
    seed: u64,
    w1: Matrix,
    w2: Matrix,
}

/// Per-node input features used by the GCN (fixed set).
const NODE_FEATURES: usize = 6;

impl RandomGcnFeaturizer {
    /// Creates a featurizer with `hidden` channels and frozen weights
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is zero.
    pub fn new(hidden: usize, seed: u64) -> Self {
        assert!(hidden > 0, "hidden width must be positive");
        use rand::Rng;
        let mut rng = mathkit::rng::seeded_rng(seed ^ 0x6C9);
        let mut init = |rows: usize, cols: usize| {
            let mut m = Matrix::zeros(rows, cols);
            let scale = (1.0 / rows as f64).sqrt();
            for v in m.as_mut_slice() {
                *v = rng.gen_range(-scale..scale);
            }
            m
        };
        RandomGcnFeaturizer {
            hidden,
            seed,
            w1: init(NODE_FEATURES, hidden),
            w2: init(hidden, hidden),
        }
    }

    fn node_features(instance: &TspInstance) -> Matrix {
        let n = instance.num_cities();
        let mut x = Matrix::zeros(n, NODE_FEATURES);
        for i in 0..n {
            let mut row: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| instance.distance(i, j))
                .collect();
            if row.is_empty() {
                // Single-city instance: leave the all-zero node features.
                continue;
            }
            row.sort_by(f64::total_cmp);
            let mean = stats::mean(&row);
            x[(i, 0)] = row.first().copied().unwrap_or(0.0); // nearest
            x[(i, 1)] = stats::quantile_sorted(&row, 0.25);
            x[(i, 2)] = stats::quantile_sorted(&row, 0.5);
            x[(i, 3)] = mean;
            x[(i, 4)] = row.last().copied().unwrap_or(0.0); // farthest
            x[(i, 5)] = stats::std_population(&row);
        }
        x
    }

    fn adjacency(instance: &TspInstance) -> Matrix {
        let n = instance.num_cities();
        let mean = instance.mean_distance().max(1e-12);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut rowsum = 0.0;
            for j in 0..n {
                let v = if i == j {
                    1.0 // self-loop, as in Kipf-style GCN normalisation
                } else {
                    let r = instance.distance(i, j) / mean;
                    (-r * r).exp()
                };
                a[(i, j)] = v;
                rowsum += v;
            }
            for j in 0..n {
                a[(i, j)] /= rowsum;
            }
        }
        a
    }
}

impl FeatureExtractor for RandomGcnFeaturizer {
    fn dim(&self) -> usize {
        2 * self.hidden + 2
    }

    fn extract(&self, instance: &TspInstance) -> Vec<f64> {
        let n = instance.num_cities();
        if n == 0 {
            // No nodes to pool over: a well-defined all-zero embedding.
            return vec![0.0; self.dim()];
        }
        let x = Self::node_features(instance);
        let a = Self::adjacency(instance);
        // H1 = tanh(Â X W1); H2 = tanh(Â H1 W2)
        let h1 = a.matmul(&x).matmul(&self.w1).map(f64::tanh);
        let h2 = a.matmul(&h1).matmul(&self.w2).map(f64::tanh);
        let mut out = Vec::with_capacity(self.dim());
        // mean-pool
        for c in 0..self.hidden {
            out.push(stats::mean(&h2.col_vec(c)));
        }
        // max-pool
        for c in 0..self.hidden {
            out.push(h2.col_vec(c).into_iter().fold(f64::NEG_INFINITY, f64::max));
        }
        out.push(n as f64);
        out.push(instance.mean_distance());
        out
    }

    fn name(&self) -> &str {
        "gcn"
    }

    fn spec(&self) -> Option<FeaturizerSpec> {
        Some(FeaturizerSpec::RandomGcn {
            hidden: self.hidden,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(scale: f64) -> TspInstance {
        TspInstance::from_coords(
            "t",
            &[
                (0.0, 0.0),
                (scale, 0.0),
                (0.0, scale),
                (scale, scale),
                (scale / 2.0, scale / 3.0),
            ],
        )
    }

    #[test]
    fn statistical_dim_and_determinism() {
        let f = StatisticalFeaturizer::new();
        let a = f.extract(&inst(1.0));
        assert_eq!(a.len(), f.dim());
        assert_eq!(a, f.extract(&inst(1.0)));
    }

    #[test]
    fn statistical_scale_sensitivity() {
        // Mean-distance feature must scale linearly with the instance.
        let f = StatisticalFeaturizer::new();
        let a = f.extract(&inst(1.0));
        let b = f.extract(&inst(3.0));
        assert!((b[2] / a[2] - 3.0).abs() < 1e-9, "mean distance feature");
        assert_eq!(a[0], 5.0); // n
    }

    #[test]
    fn statistical_distinguishes_structures() {
        let f = StatisticalFeaturizer::new();
        let ring: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / 8.0;
                (t.cos(), t.sin())
            })
            .collect();
        let line: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, 0.0)).collect();
        let fr = f.extract(&TspInstance::from_coords("ring", &ring));
        let fl = f.extract(&TspInstance::from_coords("line", &line));
        let diff: f64 = fr.iter().zip(fl.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0, "feature vectors indistinguishable");
    }

    #[test]
    fn nan_distances_never_panic() {
        // `from_coords` performs no validation, so NaN coordinates (which
        // TSPLIB's f64 parser happily produces from a literal `NaN` token)
        // reach the featurizers. Sorting with `total_cmp` keeps extraction
        // total: features are produced — possibly NaN — never a panic.
        let inst = TspInstance::from_coords(
            "nan",
            &[(0.0, 0.0), (f64::NAN, 0.0), (1.0, 1.0), (2.0, 0.5)],
        );
        let stat = StatisticalFeaturizer::new();
        let v = stat.extract(&inst);
        assert_eq!(v.len(), stat.dim());
        let gcn = RandomGcnFeaturizer::new(4, 3);
        let g = gcn.extract(&inst);
        assert_eq!(g.len(), gcn.dim());
    }

    #[test]
    fn degenerate_instances_never_panic() {
        // 0-, 1- and 2-city instances flow through a serving process via
        // hostile uploads; extraction must stay total and finite.
        let stat = StatisticalFeaturizer::new();
        let gcn = RandomGcnFeaturizer::new(4, 3);
        for coords in [vec![], vec![(0.0, 0.0)], vec![(0.0, 0.0), (3.0, 4.0)]] {
            let inst = TspInstance::from_coords("tiny", &coords);
            let v = stat.extract(&inst);
            assert_eq!(v.len(), stat.dim());
            assert!(v.iter().all(|x| x.is_finite()), "{coords:?}: {v:?}");
            assert_eq!(v[0], coords.len() as f64);
            let g = gcn.extract(&inst);
            assert_eq!(g.len(), gcn.dim());
            assert!(g.iter().all(|x| x.is_finite()), "{coords:?}: {g:?}");
        }
    }

    #[test]
    fn mst_weight_known() {
        // Line of 4 cities at distance 1: MST = 3.
        let line = TspInstance::from_coords("l", &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert!((problems::tsp::features::mst_weight(&line) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gcn_dim_and_determinism() {
        let f = RandomGcnFeaturizer::new(8, 42);
        let v = f.extract(&inst(1.0));
        assert_eq!(v.len(), f.dim());
        assert_eq!(v.len(), 18);
        let f2 = RandomGcnFeaturizer::new(8, 42);
        assert_eq!(v, f2.extract(&inst(1.0)));
        let f3 = RandomGcnFeaturizer::new(8, 43);
        assert_ne!(v, f3.extract(&inst(1.0)));
    }

    #[test]
    fn gcn_finite_and_structure_aware() {
        let f = RandomGcnFeaturizer::new(8, 1);
        let a = f.extract(&inst(1.0));
        assert!(a.iter().all(|x| x.is_finite()));
        let ring: Vec<(f64, f64)> = (0..5)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / 5.0;
                (t.cos(), t.sin())
            })
            .collect();
        let b = f.extract(&TspInstance::from_coords("ring", &ring));
        assert_ne!(a, b);
    }

    #[test]
    fn specs_rebuild_identical_featurizers() {
        let stat = StatisticalFeaturizer::new();
        let rebuilt = stat.spec().expect("built-in has a spec").build();
        assert_eq!(rebuilt.extract(&inst(1.0)), stat.extract(&inst(1.0)));
        assert_eq!(rebuilt.name(), stat.name());

        let gcn = RandomGcnFeaturizer::new(6, 99);
        let spec = gcn.spec().expect("built-in has a spec");
        assert_eq!(
            spec,
            FeaturizerSpec::RandomGcn {
                hidden: 6,
                seed: 99
            }
        );
        let rebuilt = spec.build();
        assert_eq!(rebuilt.extract(&inst(2.0)), gcn.extract(&inst(2.0)));
        assert_eq!(rebuilt.dim(), gcn.dim());
    }

    #[test]
    fn gcn_handles_varied_sizes() {
        let f = RandomGcnFeaturizer::new(4, 7);
        for n in [3usize, 6, 11] {
            let coords: Vec<(f64, f64)> =
                (0..n).map(|i| (i as f64, (i as f64 * 1.7).sin())).collect();
            let v = f.extract(&TspInstance::from_coords("v", &coords));
            assert_eq!(v.len(), f.dim());
        }
    }
}
