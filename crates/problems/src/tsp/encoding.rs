//! The n²-variable permutation QUBO encoding of the TSP (paper §4.1).
//!
//! Following Lucas (2014), an `n`-city instance uses indicator variables
//! `x_{v,j}` — city `v` is visited at tour position `j` — flattened as
//! `index = v·n + j`. The relaxed objective is `HB(x) + A·HA(x)` with
//!
//! * `HB = Σ_{u≠v} d_uv Σ_j x_{u,j} · x_{v,(j+1) mod n}` — total tour
//!   length (eq. 5);
//! * `HA = Σ_v (1 − Σ_j x_{v,j})² + Σ_j (1 − Σ_v x_{v,j})²` — the
//!   permutation constraints (eq. 6), expressed here as the
//!   [`qubo::ConstrainedBinaryProgram`] penalty.
//!
//! Fitness of a feasible assignment is the tour length under the
//! **original** distance matrix even when the QUBO was built from a
//! preprocessed one (appendix E: pre-processing changes the search
//! landscape, post-processing restores original units).

use qubo::{ConstrainedBinaryProgram, LinearConstraint, QuboBuilder, QuboModel};
use serde::{Deserialize, Serialize};

use super::preprocess::{normalize_mean_distance, Mvodm};
use super::TspInstance;
use crate::RelaxableProblem;

/// TSP → QUBO encoder and decoder.
///
/// # Examples
///
/// ```
/// use problems::{TspEncoding, TspInstance, RelaxableProblem};
/// let inst = TspInstance::from_coords("tri", &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
/// let enc = TspEncoding::new(inst);
/// assert_eq!(enc.num_vars(), 9);
/// let x = enc.encode_tour(&[0, 1, 2]);
/// assert!(enc.is_feasible(&x));
/// let fitness = enc.fitness(&x).unwrap();
/// assert!((fitness - (2.0 + 2.0_f64.sqrt())).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TspEncoding {
    /// instance whose distances build `HB`
    qubo_instance: TspInstance,
    /// instance whose distances score fitness (the untouched original)
    fitness_instance: TspInstance,
    /// cached penalty program over the `qubo_instance`
    program: ConstrainedBinaryProgram,
    /// multiplicative factor applied to the original distances when the
    /// encoding was built with normalisation (1.0 otherwise)
    scale: f64,
}

impl TspEncoding {
    /// Encodes `instance` as-is (no pre-processing).
    pub fn new(instance: TspInstance) -> Self {
        let program = build_program(&instance);
        TspEncoding {
            qubo_instance: instance.clone(),
            fitness_instance: instance,
            program,
            scale: 1.0,
        }
    }

    /// Encodes `instance` with the paper's pre-processing pipeline
    /// (§3.3 + appendix E): scale distances so the mean is 1 — putting the
    /// relaxation parameter of every instance on the same order of
    /// magnitude — then apply MVODM variance reduction. Fitness is still
    /// scored on the original instance.
    pub fn preprocessed(instance: TspInstance) -> Self {
        let (normalized, scale) = normalize_mean_distance(&instance);
        let flattened = Mvodm::fit(&normalized).transform(&normalized);
        let program = build_program(&flattened);
        TspEncoding {
            qubo_instance: flattened,
            fitness_instance: instance,
            program,
            scale,
        }
    }

    /// The instance used to build the QUBO objective.
    pub fn qubo_instance(&self) -> &TspInstance {
        &self.qubo_instance
    }

    /// The instance used for fitness scoring (original units).
    pub fn fitness_instance(&self) -> &TspInstance {
        &self.fitness_instance
    }

    /// Scale factor from original to QUBO distances.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.qubo_instance.num_cities()
    }

    /// Flat variable index of "city `v` at position `j`".
    ///
    /// # Panics
    ///
    /// Panics if `v` or `j` is out of range.
    pub fn var_index(&self, v: usize, j: usize) -> usize {
        let n = self.num_cities();
        assert!(v < n && j < n, "city/position out of range");
        v * n + j
    }

    /// Encodes a tour (`tour[j]` = city at position `j`) into a binary
    /// assignment.
    ///
    /// # Panics
    ///
    /// Panics if `tour` is not a permutation of `0..n`.
    pub fn encode_tour(&self, tour: &[usize]) -> Vec<u8> {
        let n = self.num_cities();
        assert!(super::is_permutation(tour, n), "tour must be a permutation");
        let mut x = vec![0u8; n * n];
        for (j, &v) in tour.iter().enumerate() {
            x[v * n + j] = 1;
        }
        x
    }

    /// Decodes an assignment into a tour, or `None` if the assignment is
    /// not a valid permutation matrix.
    pub fn decode_tour(&self, x: &[u8]) -> Option<Vec<usize>> {
        let n = self.num_cities();
        if x.len() != n * n {
            return None;
        }
        let mut tour = vec![usize::MAX; n];
        let mut city_used = vec![false; n];
        for j in 0..n {
            let mut city = None;
            for v in 0..n {
                if x[v * n + j] != 0 {
                    if city.is_some() {
                        return None; // two cities at one position
                    }
                    city = Some(v);
                }
            }
            let v = city?;
            if city_used[v] {
                return None; // city appears twice
            }
            city_used[v] = true;
            tour[j] = v;
        }
        Some(tour)
    }

    /// The QUBO objective part `HB` alone (relaxation 0).
    pub fn objective_qubo(&self) -> QuboModel {
        self.program.objective().clone()
    }

    /// The constraint penalty `HA(x)` of an assignment.
    pub fn constraint_penalty(&self, x: &[u8]) -> f64 {
        self.program.penalty_value(x)
    }
}

fn build_program(instance: &TspInstance) -> ConstrainedBinaryProgram {
    let n = instance.num_cities();
    let mut hb = QuboBuilder::new(n * n);
    // HB: for every ordered pair (u, v), u != v, and every position j:
    // d_uv · x_{u,j} · x_{v,(j+1) mod n}.
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let d = instance.distance(u, v);
            if d == 0.0 {
                continue;
            }
            for j in 0..n {
                let jn = (j + 1) % n;
                hb.add_quadratic(u * n + j, v * n + jn, d);
            }
        }
    }
    let mut program = ConstrainedBinaryProgram::new(hb.build());
    // Row constraints: every city occupies exactly one position.
    for v in 0..n {
        program.add_constraint(LinearConstraint::one_hot((0..n).map(|j| v * n + j)));
    }
    // Column constraints: every position hosts exactly one city.
    for j in 0..n {
        program.add_constraint(LinearConstraint::one_hot((0..n).map(|v| v * n + j)));
    }
    program
}

impl RelaxableProblem for TspEncoding {
    fn name(&self) -> &str {
        self.fitness_instance.name()
    }

    fn num_vars(&self) -> usize {
        let n = self.num_cities();
        n * n
    }

    fn to_qubo(&self, relaxation: f64) -> QuboModel {
        self.program.to_qubo(relaxation)
    }

    fn is_feasible(&self, x: &[u8]) -> bool {
        self.decode_tour(x).is_some()
    }

    fn fitness(&self, x: &[u8]) -> Option<f64> {
        self.decode_tour(x)
            .map(|tour| self.fitness_instance.tour_length(&tour))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> TspEncoding {
        TspEncoding::new(TspInstance::from_coords(
            "tri",
            &[(0.0, 0.0), (3.0, 0.0), (0.0, 4.0)],
        ))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = tri();
        for tour in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let x = enc.encode_tour(&tour);
            assert_eq!(enc.decode_tour(&x).unwrap(), tour.to_vec());
        }
    }

    #[test]
    fn feasible_assignment_has_zero_penalty_and_hb_equals_length() {
        let enc = tri();
        let tour = [0usize, 2, 1];
        let x = enc.encode_tour(&tour);
        assert_eq!(enc.constraint_penalty(&x), 0.0);
        let q = enc.to_qubo(7.0);
        let length = enc.fitness_instance().tour_length(&tour);
        assert!((q.energy(&x) - length).abs() < 1e-9);
        assert_eq!(enc.fitness(&x).unwrap(), length);
    }

    #[test]
    fn infeasible_assignments_detected() {
        let enc = tri();
        let n = 3;
        // empty assignment
        assert!(!enc.is_feasible(&vec![0u8; n * n]));
        // duplicate city in two positions
        let mut x = vec![0u8; n * n];
        x[enc.var_index(0, 0)] = 1;
        x[enc.var_index(0, 1)] = 1;
        x[enc.var_index(1, 2)] = 1;
        assert!(!enc.is_feasible(&x));
        assert!(enc.fitness(&x).is_none());
        // two cities in one position
        let mut y = vec![0u8; n * n];
        y[enc.var_index(0, 0)] = 1;
        y[enc.var_index(1, 0)] = 1;
        y[enc.var_index(2, 1)] = 1;
        assert!(!enc.is_feasible(&y));
    }

    #[test]
    fn penalty_positive_for_infeasible() {
        let enc = tri();
        let x = vec![0u8; 9];
        // all constraints violated by 1 → penalty = 6
        assert_eq!(enc.constraint_penalty(&x), 6.0);
        let q0 = enc.to_qubo(1.0);
        let q1 = enc.to_qubo(2.0);
        assert!(q1.energy(&x) > q0.energy(&x));
    }

    #[test]
    fn qubo_energy_identity_feasible_vs_infeasible() {
        let enc = tri();
        let a = 5.0;
        let q = enc.to_qubo(a);
        // For any assignment: E = HB + A * HA.
        let mut x = vec![0u8; 9];
        x[enc.var_index(1, 0)] = 1; // lone city, infeasible
        let hb = enc.objective_qubo().energy(&x);
        let ha = enc.constraint_penalty(&x);
        assert!((q.energy(&x) - (hb + a * ha)).abs() < 1e-9);
    }

    #[test]
    fn preprocessed_fitness_in_original_units() {
        let inst =
            TspInstance::from_coords("rect", &[(0.0, 0.0), (10.0, 0.0), (10.0, 3.0), (0.0, 3.0)]);
        let plain = TspEncoding::new(inst.clone());
        let pre = TspEncoding::preprocessed(inst);
        let tour = [0usize, 1, 2, 3];
        let x = pre.encode_tour(&tour);
        // Fitness identical in original units regardless of preprocessing.
        assert!((pre.fitness(&x).unwrap() - plain.fitness(&x).unwrap()).abs() < 1e-9);
        // But the QUBO objective differs (scaled + MVODM-flattened).
        let qx = pre.objective_qubo().energy(&x);
        let px = plain.objective_qubo().energy(&x);
        assert!((qx - px).abs() > 1e-9);
    }

    #[test]
    fn preprocessed_preserves_tour_ranking() {
        let inst = TspInstance::from_coords(
            "five",
            &[(0.0, 0.0), (4.0, 0.1), (5.0, 3.0), (1.0, 4.0), (-2.0, 2.0)],
        );
        let pre = TspEncoding::preprocessed(inst.clone());
        // MVODM + scaling is tour-ranking-preserving: compare HB energies of
        // all tours pairwise against original lengths.
        let tours = [
            vec![0usize, 1, 2, 3, 4],
            vec![0, 2, 1, 3, 4],
            vec![0, 3, 1, 2, 4],
            vec![0, 1, 3, 2, 4],
        ];
        let obj = pre.objective_qubo();
        for a in &tours {
            for b in &tours {
                let la = inst.tour_length(a);
                let lb = inst.tour_length(b);
                let ea = obj.energy(&pre.encode_tour(a));
                let eb = obj.energy(&pre.encode_tour(b));
                if la < lb - 1e-9 {
                    assert!(ea < eb + 1e-9, "ranking broken: {la} {lb} vs {ea} {eb}");
                }
            }
        }
    }

    #[test]
    fn num_vars_quadratic() {
        let enc = tri();
        assert_eq!(enc.num_vars(), 9);
        assert_eq!(enc.to_qubo(1.0).num_vars(), 9);
    }

    #[test]
    fn decode_wrong_length_is_none() {
        let enc = tri();
        assert!(enc.decode_tour(&[0, 1]).is_none());
    }
}
