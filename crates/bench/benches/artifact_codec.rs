//! Criterion bench for the artifact store: encode/decode of a surrogate
//! dataset and a trained-surrogate snapshot, binary `.qross` codec vs the
//! `serde_json` fallback — documenting the binary speedup and guarding
//! against codec regressions.
//!
//! The setup also asserts both formats round-trip to equal structs before
//! any timing runs, so a silent codec regression fails the bench smoke
//! step rather than producing meaningless numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use neural::network::MlpBuilder;
use qross::dataset::{DatasetRow, Scalers, SurrogateDataset};
use qross::surrogate::SurrogateState;
use qross_store::Artifact;

/// A dataset shaped like a quick-scale collection run: 36 instances ×
/// 14 sweep points with 24 features.
fn sample_dataset() -> SurrogateDataset {
    let feat_dim = 24;
    let mut ds = SurrogateDataset::new(feat_dim);
    for g in 0..36 {
        let features: Vec<f64> = (0..feat_dim)
            .map(|c| ((g * 31 + c * 17) % 97) as f64 / 97.0)
            .collect();
        for k in 0..14 {
            let ln_a = -3.0 + 6.0 * k as f64 / 13.0;
            ds.push(DatasetRow {
                features: features.clone(),
                a: ln_a.exp(),
                pf: (k as f64 / 13.0).clamp(0.0, 1.0),
                e_avg: 10.0 + (g as f64) * 0.1 - k as f64 * 0.2,
                e_std: 1.0 + 0.05 * k as f64,
            });
        }
    }
    ds
}

/// A surrogate snapshot at the paper's architecture (25 inputs, two
/// 64-wide hidden layers per head).
fn sample_surrogate_state() -> SurrogateState {
    let zscore = |m: f64, s: f64| mathkit::stats::ZScore { mean: m, std: s };
    SurrogateState {
        pf_net: MlpBuilder::new(25)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(1)
            .sigmoid()
            .build(7)
            .to_state(),
        e_net: MlpBuilder::new(25)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(2)
            .build(8)
            .to_state(),
        scalers: Scalers {
            features: (0..24).map(|c| zscore(c as f64, 1.0 + c as f64)).collect(),
            log_a: zscore(0.0, 1.5),
            e_avg: zscore(10.0, 2.0),
            e_std: zscore(1.0, 0.25),
        },
    }
}

fn bench_dataset(c: &mut Criterion) {
    let ds = sample_dataset();
    let binary = ds.to_store_bytes();
    let json = serde_json::to_string(&ds).expect("dataset serialises");
    // Round-trip gates before timing.
    assert_eq!(SurrogateDataset::from_store_bytes(&binary).unwrap(), ds);
    let from_json: SurrogateDataset = serde_json::from_str(&json).unwrap();
    assert_eq!(from_json, ds);
    println!(
        "dataset payload: binary {} bytes, json {} bytes",
        binary.len(),
        json.len()
    );

    let mut group = c.benchmark_group("artifact_codec_dataset");
    group.bench_function("encode_binary", |b| b.iter(|| ds.to_store_bytes()));
    group.bench_function("encode_json", |b| {
        b.iter(|| serde_json::to_string(&ds).unwrap())
    });
    group.bench_function("decode_binary", |b| {
        b.iter(|| SurrogateDataset::from_store_bytes(&binary).unwrap())
    });
    group.bench_function("decode_json", |b| {
        b.iter(|| serde_json::from_str::<SurrogateDataset>(&json).unwrap())
    });
    group.finish();
}

fn bench_surrogate(c: &mut Criterion) {
    let state = sample_surrogate_state();
    let binary = state.to_store_bytes();
    let json = serde_json::to_string(&state).expect("state serialises");
    let back = SurrogateState::from_store_bytes(&binary).unwrap();
    assert_eq!(back.pf_net, state.pf_net);
    assert_eq!(back.e_net, state.e_net);
    assert_eq!(back.scalers, state.scalers);
    println!(
        "surrogate payload: binary {} bytes, json {} bytes",
        binary.len(),
        json.len()
    );

    let mut group = c.benchmark_group("artifact_codec_surrogate");
    group.bench_function("encode_binary", |b| b.iter(|| state.to_store_bytes()));
    group.bench_function("encode_json", |b| {
        b.iter(|| serde_json::to_string(&state).unwrap())
    });
    group.bench_function("decode_binary", |b| {
        b.iter(|| SurrogateState::from_store_bytes(&binary).unwrap())
    });
    group.bench_function("decode_json", |b| {
        b.iter(|| serde_json::from_str::<SurrogateState>(&json).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dataset, bench_surrogate);
criterion_main!(benches);
