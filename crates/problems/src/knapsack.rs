//! 0/1 knapsack.
//!
//! Select items maximising total value subject to a weight capacity.
//! The QUBO encoding follows Lucas (2014) §5.2: the inequality
//! `Σ_i w_i x_i ≤ C` becomes the equality `Σ_i w_i x_i + Σ_j c_j s_j = C`
//! over auxiliary slack bits `s_j` with binary-expansion coefficients
//! `c_j = 2^j` (last coefficient trimmed to `C − 2^(m−1) + 1` so the
//! slack range is exactly `0..=C`), relaxed with penalty `A` via
//! [`LinearConstraint`]. Weights and the capacity must be
//! integer-valued for the slack expansion to be exact.
//!
//! Fitness is the negated total value (lower = better), matching the
//! minimisation convention of the other families.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use qubo::{ConstrainedBinaryProgram, LinearConstraint, QuboBuilder, QuboModel};

use crate::{ProblemError, RelaxableProblem};

/// A knapsack instance and its QUBO encoding (items + slack bits).
///
/// # Examples
///
/// ```
/// use problems::{KnapsackInstance, RelaxableProblem};
/// let inst = KnapsackInstance::new("k", vec![6.0, 10.0, 12.0], vec![1.0, 2.0, 3.0], 5.0).unwrap();
/// // Items 1+2 weigh 5 ≤ 5 and are worth 22.
/// let mut x = vec![0, 1, 1];
/// x.resize(inst.num_vars(), 0);
/// assert!(inst.is_feasible(&x));
/// assert_eq!(inst.fitness(&x), Some(-22.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnapsackInstance {
    name: String,
    values: Vec<f64>,
    weights: Vec<f64>,
    capacity: f64,
    slack_bits: usize,
    program: ConstrainedBinaryProgram,
}

impl KnapsackInstance {
    /// Creates an instance from per-item values and weights and a
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::InvalidInstance`] when the lists differ
    /// in length or are empty, values are non-finite or negative,
    /// weights are not positive integers, or the capacity is not a
    /// positive integer (integrality keeps the slack-bit expansion of
    /// the capacity constraint exact).
    pub fn new(
        name: &str,
        values: Vec<f64>,
        weights: Vec<f64>,
        capacity: f64,
    ) -> Result<Self, ProblemError> {
        if values.len() != weights.len() {
            return Err(ProblemError::InvalidInstance {
                message: format!("{} values but {} weights", values.len(), weights.len()),
            });
        }
        if values.is_empty() {
            return Err(ProblemError::InvalidInstance {
                message: "knapsack needs at least one item".to_string(),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(ProblemError::InvalidInstance {
                    message: format!("value of item {i} must be finite and non-negative"),
                });
            }
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 1.0 || w.fract() != 0.0 {
                return Err(ProblemError::InvalidInstance {
                    message: format!("weight of item {i} must be a positive integer"),
                });
            }
        }
        if !capacity.is_finite() || capacity < 1.0 || capacity.fract() != 0.0 {
            return Err(ProblemError::InvalidInstance {
                message: "capacity must be a positive integer".to_string(),
            });
        }
        let slack_bits = slack_bit_count(capacity as u64);
        let program = build_program(&values, &weights, capacity, slack_bits);
        Ok(KnapsackInstance {
            name: name.to_string(),
            values,
            weights,
            capacity,
            slack_bits,
            program,
        })
    }

    /// Random instance: integer values in `[1, 20)`, integer weights in
    /// `[1, 10)`, capacity half the total weight (at least 1).
    /// Deterministic in `(seed)`.
    pub fn random(name: &str, n: usize, seed: u64) -> Self {
        let mut rng = derive_rng(seed, 0x4BA6);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1..20) as f64).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1..10) as f64).collect();
        let capacity = ((weights.iter().sum::<f64>() / 2.0).floor()).max(1.0);
        Self::new(name, values, weights, capacity).expect("generated items are valid")
    }

    /// Number of items (excluding slack bits).
    pub fn num_items(&self) -> usize {
        self.values.len()
    }

    /// Per-item values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Per-item weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of auxiliary slack bits in the QUBO encoding.
    pub fn slack_bits(&self) -> usize {
        self.slack_bits
    }

    /// Total weight of the selected items (`x` may include slack bits;
    /// only the item prefix is read).
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the item count.
    pub fn total_weight(&self, x: &[u8]) -> f64 {
        self.weights
            .iter()
            .zip(x)
            .map(|(&w, &b)| w * b as f64)
            .sum()
    }

    /// Total value of the selected items.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the item count.
    pub fn total_value(&self, x: &[u8]) -> f64 {
        self.values.iter().zip(x).map(|(&v, &b)| v * b as f64).sum()
    }
}

/// Number of slack bits needed to express `0..=capacity` with
/// binary-expansion coefficients.
fn slack_bit_count(capacity: u64) -> usize {
    // floor(log2(C)) + 1; C ≥ 1 by validation.
    (64 - capacity.leading_zeros()) as usize
}

/// Coefficient of slack bit `j` out of `m`: powers of two with the last
/// trimmed so the representable range is exactly `0..=C`.
fn slack_coeff(j: usize, m: usize, capacity: f64) -> f64 {
    if j + 1 < m {
        (1u64 << j) as f64
    } else {
        capacity - (((1u64 << (m - 1)) - 1) as f64)
    }
}

fn build_program(
    values: &[f64],
    weights: &[f64],
    capacity: f64,
    slack_bits: usize,
) -> ConstrainedBinaryProgram {
    let n = values.len();
    let mut builder = QuboBuilder::new(n + slack_bits);
    // Minimise −Σ v_i x_i.
    for (i, &v) in values.iter().enumerate() {
        builder.add_linear(i, -v);
    }
    let mut program = ConstrainedBinaryProgram::new(builder.build());
    let mut coeffs: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
    for j in 0..slack_bits {
        coeffs.push((n + j, slack_coeff(j, slack_bits, capacity)));
    }
    program.add_constraint(LinearConstraint::new(coeffs, capacity));
    program
}

impl RelaxableProblem for KnapsackInstance {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_vars(&self) -> usize {
        self.num_items() + self.slack_bits
    }

    fn to_qubo(&self, relaxation: f64) -> QuboModel {
        self.program.to_qubo(relaxation)
    }

    // Feasibility is about the original inequality: the selected items
    // fit. Slack bits only have to exist, not to witness the equality —
    // a solver that satisfies the capacity but mis-sets slack is still
    // returning a usable packing (it just pays penalty energy).
    fn is_feasible(&self, x: &[u8]) -> bool {
        x.len() == self.num_vars() && self.total_weight(x) <= self.capacity
    }

    fn fitness(&self, x: &[u8]) -> Option<f64> {
        if !self.is_feasible(x) {
            return None;
        }
        Some(-self.total_value(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KnapsackInstance {
        KnapsackInstance::new("k", vec![6.0, 10.0, 12.0], vec![1.0, 2.0, 3.0], 5.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(KnapsackInstance::new("len", vec![1.0], vec![1.0, 2.0], 3.0).is_err());
        assert!(KnapsackInstance::new("empty", vec![], vec![], 3.0).is_err());
        assert!(KnapsackInstance::new("negv", vec![-1.0], vec![1.0], 3.0).is_err());
        assert!(KnapsackInstance::new("fracw", vec![1.0], vec![1.5], 3.0).is_err());
        assert!(KnapsackInstance::new("zerow", vec![1.0], vec![0.0], 3.0).is_err());
        assert!(KnapsackInstance::new("fracc", vec![1.0], vec![1.0], 2.5).is_err());
        assert!(KnapsackInstance::new("ok", vec![1.0], vec![1.0], 1.0).is_ok());
    }

    #[test]
    fn slack_range_is_exact() {
        // m slack bits with the trimmed last coefficient reach exactly
        // 0..=C, never more.
        for c in 1u64..40 {
            let m = slack_bit_count(c);
            let coeffs: Vec<u64> = (0..m).map(|j| slack_coeff(j, m, c as f64) as u64).collect();
            let mut reachable = std::collections::HashSet::new();
            for mask in 0u64..(1 << m) {
                let sum: u64 = (0..m)
                    .filter(|&j| mask >> j & 1 == 1)
                    .map(|j| coeffs[j])
                    .sum();
                reachable.insert(sum);
            }
            assert!(
                (0..=c).all(|s| reachable.contains(&s)),
                "capacity {c}: slack coeffs {coeffs:?} miss a value"
            );
            assert!(
                reachable.iter().all(|&s| s <= c),
                "capacity {c}: slack coeffs {coeffs:?} overshoot"
            );
        }
    }

    #[test]
    fn feasibility_and_fitness() {
        let k = small();
        let pad = |items: &[u8]| {
            let mut x = items.to_vec();
            x.resize(k.num_vars(), 0);
            x
        };
        assert!(k.is_feasible(&pad(&[1, 1, 0])));
        assert_eq!(k.fitness(&pad(&[1, 1, 0])), Some(-16.0));
        assert!(!k.is_feasible(&pad(&[1, 1, 1]))); // weight 6 > 5
        assert_eq!(k.fitness(&pad(&[1, 1, 1])), None);
    }

    #[test]
    fn qubo_matches_fitness_with_witnessing_slack() {
        let k = small();
        // Select items 1+2 (weight 5 = capacity): slack must encode 0.
        let mut x = vec![0u8, 1, 1];
        x.resize(k.num_vars(), 0);
        let q = k.to_qubo(4.2);
        assert!((q.energy(&x) - k.fitness(&x).unwrap()).abs() < 1e-9);
        // Select item 0 only (weight 1, slack 4 = 100b with coeffs 1,2,2).
        let mut y = vec![1u8, 0, 0];
        y.resize(k.num_vars(), 0);
        // Find a slack witness by brute force.
        let m = k.slack_bits();
        let witness = (0u64..(1 << m)).find(|mask| {
            let slack: f64 = (0..m)
                .filter(|&j| mask >> j & 1 == 1)
                .map(|j| slack_coeff(j, m, k.capacity()))
                .sum();
            (k.total_weight(&y) + slack - k.capacity()).abs() < 1e-9
        });
        let mask = witness.expect("slack range covers every residual");
        for j in 0..m {
            y[3 + j] = (mask >> j & 1) as u8;
        }
        assert!((q.energy(&y) - k.fitness(&y).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn random_deterministic() {
        let a = KnapsackInstance::random("k", 15, 3);
        let b = KnapsackInstance::random("k", 15, 3);
        assert_eq!(a, b);
        let c = KnapsackInstance::random("k", 15, 4);
        assert_ne!(a, c);
    }
}
