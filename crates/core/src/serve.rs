//! Concurrent batched serving engine — the serve-many half of the
//! train-once / serve-many split, as an embeddable subsystem.
//!
//! QROSS's value proposition is amortising one trained surrogate over many
//! unseen instances (paper §4: the offline strategies propose penalty
//! parameters from a single cross-instance model). [`ServeEngine`] turns a
//! trained model into a long-lived service component:
//!
//! * **Lock-free hot path** — the immutable model ([`ServeModel`], usually
//!   an `Arc<TrainedQross>`) is shared across worker threads; inference
//!   runs [`neural::network::Mlp::infer`], which takes `&self` and writes
//!   no caches, so prediction itself acquires no lock. The only locks are
//!   around the *queue* and the *cache*, both held for pointer shuffling,
//!   never across a forward pass.
//! * **Micro-batching** — concurrent requests queue as jobs; a worker
//!   drains several jobs at once, stacks their feature rows into one
//!   matrix and answers them with a **single forward pass per head**
//!   ([`crate::Surrogate::predict_many`]). Because every matrix row is
//!   accumulated independently in the same operation order as a 1-row
//!   forward, batching is **bit-invisible**: responses are exactly the
//!   f64s a sequential per-request `predict` would produce, whatever the
//!   batch boundaries happen to be.
//! * **Bounded everything** — the job queue rejects with
//!   [`QrossError::Overloaded`] once `queue_capacity` prediction rows are
//!   pending (never unbounded growth, never OOM), and the prediction
//!   cache is a fixed-capacity LRU keyed on the exact *bit patterns* of
//!   `(features, A)` (two queries hit the same entry iff they are
//!   bit-identical, so a cache hit can never change an answer).
//!
//! * **Continual learning with zero-downtime hot-swap** — an engine
//!   started through [`ServeEngine::with_online`] accepts observed solver
//!   outcomes ([`ServeEngine::submit_feedback`]), accumulates them in a
//!   deterministic replay buffer ([`crate::online::ReplayBuffer`]), and
//!   periodically fine-tunes the surrogate heads on a buffer snapshot
//!   merged with the original corpus. The engine holds the model in an
//!   **epoch-counted slot** (`Arc` + generation counter): every request
//!   captures the current `Arc<VersionedModel>` at submit time, so
//!   in-flight batches always finish on the model they were admitted
//!   under while new requests see the swapped generation — no request is
//!   ever dropped or blocked by a swap. The prediction-cache key includes
//!   the generation, so a hit can never serve a stale generation's value.
//!   Each swap checkpoints the new model (with lineage) through
//!   `qross-store` *before* installing it, making every served generation
//!   reloadable and the whole loop bit-reproducible from
//!   `(seed, feedback log)`.
//!
//! The NDJSON wire protocol (stdin/stdout and TCP) lives in the `bench`
//! crate (`bench::protocol`, the `qross-serve` binary); this module is the
//! transport-agnostic core.
//!
//! # Examples
//!
//! ```no_run
//! use std::sync::Arc;
//! use qross::pipeline::TrainedQross;
//! use qross::serve::{ServeConfig, ServeEngine, ServeModel};
//!
//! let trained = TrainedQross::load("results/model-tsp.qross")?;
//! let engine = ServeEngine::new(
//!     ServeModel::Bundle(Arc::new(trained)),
//!     ServeConfig::default(),
//! );
//! let features = vec![0.0; engine.feature_dim()];
//! let p = engine.predict(&features, 1.0)?;
//! println!("Pf = {}", p.pf);
//! # Ok::<(), qross::QrossError>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use qross_store::Artifact;

use crate::dataset::SurrogateDataset;
use crate::online::{
    merge_for_finetune, FeedbackRecord, LineageHeader, OnlineConfig, ReplayBuffer,
    SurrogateCheckpoint,
};
use crate::pipeline::TrainedQross;
use crate::surrogate::{FineTuneConfig, Surrogate, SurrogatePrediction};
use crate::QrossError;

/// The immutable model a [`ServeEngine`] serves.
///
/// Both variants are shared via `Arc`: the engine's worker threads and any
/// number of protocol front-ends read the same allocation, and nothing in
/// the serving path ever needs `&mut` access to it.
#[derive(Debug, Clone)]
pub enum ServeModel {
    /// A full `.qross` bundle — surrogate plus featurizer plus pipeline
    /// config. Required for instance-level requests (featurise a TSP
    /// upload, build proposal strategies).
    Bundle(Arc<TrainedQross>),
    /// A bare surrogate (e.g. an MVC/QAP snapshot). Serves raw
    /// feature-vector queries only.
    Surrogate(Arc<Surrogate>),
}

impl ServeModel {
    /// The surrogate predictions are served from.
    pub fn surrogate(&self) -> &Surrogate {
        match self {
            ServeModel::Bundle(t) => &t.surrogate,
            ServeModel::Surrogate(s) => s,
        }
    }

    /// The full bundle, when this model has one.
    pub fn trained(&self) -> Option<&Arc<TrainedQross>> {
        match self {
            ServeModel::Bundle(t) => Some(t),
            ServeModel::Surrogate(_) => None,
        }
    }

    /// Feature width every request must supply (the surrogate's input
    /// width minus the relaxation-parameter column).
    ///
    /// Invariant across hot-swaps: fine-tuning freezes the scalers
    /// ([`Surrogate::fine_tune`]), so every generation of a served model
    /// consumes the same feature width.
    pub fn feature_dim(&self) -> usize {
        self.surrogate().scalers().input_dim() - 1
    }
}

/// One epoch of the served model: the model plus the generation counter
/// identifying it. The engine swaps whole `Arc<VersionedModel>`s — a
/// request captures the current one at submit time and is answered by it
/// even if a swap lands while the request is queued.
///
/// Generation `0` is the model the engine was constructed with; each
/// successful retrain/swap increments it by one.
#[derive(Debug, Clone)]
pub struct VersionedModel {
    /// monotonically increasing swap epoch (0 = the initial model)
    pub generation: u64,
    /// the model itself
    pub model: ServeModel,
}

/// Serving-engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// worker threads: `0` = one per core, `n` = exactly `n`
    pub workers: usize,
    /// soft cap on prediction rows stacked into one forward pass — a
    /// worker stops draining the queue once a batch reaches this many
    /// rows (a single over-large job still runs whole)
    pub max_batch_rows: usize,
    /// bound on *pending* prediction rows across all queued jobs; beyond
    /// it, [`ServeEngine::submit`] rejects with [`QrossError::Overloaded`]
    pub queue_capacity: usize,
    /// LRU prediction-cache capacity in entries; `0` disables caching
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            max_batch_rows: 64,
            queue_capacity: 4096,
            cache_capacity: 4096,
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-tenant admission control
// ---------------------------------------------------------------------------

/// The tenant every untagged request is accounted to.
pub const DEFAULT_TENANT: &str = "default";

/// Hard cap on distinct tenants the engine will track. Tenant names come
/// off the wire, so an unbounded registry would be a memory DoS vector;
/// once the cap is reached, requests for *new* tenant names are accounted
/// to [`DEFAULT_TENANT`] instead (served, but without a private quota).
pub const MAX_TENANTS: usize = 1024;

/// Service class of one tenant: its fair-queueing weight and its
/// admission quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantClass {
    /// deficit-weighted round-robin share (relative to other tenants'
    /// weights); clamped to ≥ 1
    pub weight: u32,
    /// token quota: the most *pending* (queued, un-answered) prediction
    /// rows this tenant may hold at once. `0` means "no private bound" —
    /// only the global `queue_capacity` applies
    pub quota_rows: usize,
}

impl Default for TenantClass {
    fn default() -> Self {
        TenantClass {
            weight: 1,
            quota_rows: 0,
        }
    }
}

/// Per-tenant admission policy for a serving engine.
///
/// Tenancy is cooperative labelling, not authentication: a request's
/// optional `tenant` tag selects which queue, quota and weight it is
/// accounted to, so one hot integration cannot starve the rest of a
/// shared engine. Unknown tenants are registered on first use with
/// `default_class`; tenants named in `classes` get their configured
/// weight/quota from the start.
#[derive(Debug, Clone, Default)]
pub struct TenantPolicy {
    /// class applied to tenants not listed in `classes`
    pub default_class: TenantClass,
    /// explicitly provisioned tenants (name → class)
    pub classes: Vec<(String, TenantClass)>,
}

impl TenantPolicy {
    /// The class for `name` — its explicit entry, or the default.
    fn class_for(&self, name: &str) -> TenantClass {
        self.classes
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, class)| class)
            .unwrap_or(self.default_class)
    }
}

/// Completion hook a nonblocking front-end passes to
/// [`ServeEngine::submit_opts`]: invoked (from a worker thread) after the
/// request's result is delivered, e.g. to write a wake byte to an event
/// loop's self-pipe. Must be cheap and must not block.
pub type CompletionNotify = Arc<dyn Fn() + Send + Sync>;

/// Monotonic serving counters (a snapshot of [`ServeEngine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// requests accepted (including fully-cached fast-path responses)
    pub requests: usize,
    /// prediction rows answered
    pub rows: usize,
    /// rows answered from the cache
    pub cache_hits: usize,
    /// forward-pass batches executed by workers
    pub batches: usize,
    /// requests rejected with [`QrossError::Overloaded`]
    /// (`rejected_quota + rejected_capacity`)
    pub rejected: usize,
    /// requests rejected because the tenant's own row quota was full
    pub rejected_quota: usize,
    /// requests rejected because the global queue capacity was full
    pub rejected_capacity: usize,
    /// feedback records accepted ([`ServeEngine::submit_feedback`])
    pub feedback: usize,
    /// successful retrain/hot-swap cycles
    pub refreshes: usize,
}

/// How many slow requests the engine's trace ring retains for the
/// `trace` protocol op (the N slowest since start, by total span time).
const TRACE_CAPACITY: usize = 64;

/// The engine's observability bundle: a per-engine [`obs::Registry`]
/// (engine-owned so parallel engines and tests never share counters),
/// the registered handles the hot paths record through, and the
/// keep-the-slowest trace log behind the `trace` op.
///
/// Recording is lock-free (sharded relaxed atomics); under the `obs-off`
/// feature every recording call compiles to a no-op and
/// [`ServeEngine::metrics`] degrades to zeros. Response *bytes* are
/// identical either way — CI replays the committed request mixes against
/// both builds and diffs them.
pub struct ServeObs {
    registry: Arc<obs::Registry>,
    trace_log: Arc<obs::TraceLog>,
    requests: Arc<obs::Counter>,
    rows: Arc<obs::Counter>,
    cache_hits: Arc<obs::Counter>,
    batches: Arc<obs::Counter>,
    /// rows answered by a worker forward pass (excludes cache hits) —
    /// `batched_rows / batches` is the mean batch occupancy
    batched_rows: Arc<obs::Counter>,
    rejected_quota: Arc<obs::Counter>,
    rejected_capacity: Arc<obs::Counter>,
    feedback: Arc<obs::Counter>,
    refreshes: Arc<obs::Counter>,
    /// submit→answer latency of every accepted request
    latency: Arc<obs::Histogram>,
    /// per-[`obs::Stage`] latency breakdown, [`obs::Stage::ALL`] order
    stage: [Arc<obs::Histogram>; obs::STAGES],
    queue_depth: Arc<obs::Gauge>,
    generation: Arc<obs::Gauge>,
    retrain_ns: Arc<obs::Histogram>,
    swap_ns: Arc<obs::Histogram>,
    replay_depth: Arc<obs::Gauge>,
}

impl ServeObs {
    /// Registers the engine's full metric set on a fresh registry, so the
    /// exposition schema is stable from the first scrape (metrics appear
    /// at zero, not on first use).
    pub fn new() -> Self {
        let registry = Arc::new(obs::Registry::new());
        let r = &registry;
        let stage = obs::Stage::ALL.map(|s| {
            r.histogram(
                obs::labeled("qross_serve_stage_ns", "stage", s.name()),
                "per-stage request latency breakdown (ns)",
            )
        });
        ServeObs {
            requests: r.counter("qross_serve_requests_total", "requests accepted"),
            rows: r.counter("qross_serve_rows_total", "prediction rows answered"),
            cache_hits: r.counter(
                "qross_serve_cache_hits_total",
                "rows answered from the prediction cache",
            ),
            batches: r.counter(
                "qross_serve_batches_total",
                "worker forward-pass batches executed",
            ),
            batched_rows: r.counter(
                "qross_serve_batched_rows_total",
                "rows answered by worker forward passes (cache hits excluded)",
            ),
            rejected_quota: r.counter(
                obs::labeled("qross_serve_rejected_total", "reason", "quota"),
                "requests rejected, by reason (tenant quota vs global capacity)",
            ),
            rejected_capacity: r.counter(
                obs::labeled("qross_serve_rejected_total", "reason", "capacity"),
                "requests rejected, by reason (tenant quota vs global capacity)",
            ),
            feedback: r.counter(
                "qross_online_feedback_total",
                "feedback records accepted by the online loop",
            ),
            refreshes: r.counter(
                "qross_online_refreshes_total",
                "successful retrain/hot-swap cycles (generation installs)",
            ),
            latency: r.histogram(
                "qross_serve_latency_ns",
                "submit-to-answer latency of accepted requests (ns)",
            ),
            stage,
            queue_depth: r.gauge(
                "qross_serve_queue_depth_rows",
                "rows currently queued across all tenants",
            ),
            generation: r.gauge(
                "qross_serve_model_generation",
                "model generation currently serving new requests",
            ),
            retrain_ns: r.histogram(
                "qross_online_retrain_ns",
                "online retrain duration, merge through checkpoint and swap (ns)",
            ),
            swap_ns: r.histogram(
                "qross_online_swap_ns",
                "model hot-swap critical section (ns)",
            ),
            replay_depth: r.gauge(
                "qross_online_replay_depth_rows",
                "replay-buffer records retained",
            ),
            trace_log: Arc::new(obs::TraceLog::new(TRACE_CAPACITY)),
            registry,
        }
    }

    /// The engine's metric registry — exposition renders it alongside
    /// [`obs::global()`] (which holds the solver-kernel metrics).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// The keep-the-slowest request log the `trace` op dumps.
    pub fn trace_log(&self) -> &Arc<obs::TraceLog> {
        &self.trace_log
    }

    /// Records `ns` into the per-stage histogram for `stage`. The wire
    /// layer calls this for decode/encode (it owns those stages' clocks);
    /// the engine records the interior stages itself.
    pub fn record_stage(&self, stage: obs::Stage, ns: u64) {
        self.stage[stage as usize].record(ns);
    }

    /// Folds a finished request's span into the engine-interior stage
    /// histograms (queue/batch/forward/cache — decode/encode belong to
    /// the wire layer).
    fn record_engine_stages(&self, span: &obs::Span) {
        if !obs::ENABLED {
            return;
        }
        for stage in [
            obs::Stage::Queue,
            obs::Stage::Batch,
            obs::Stage::Forward,
            obs::Stage::Cache,
        ] {
            self.stage[stage as usize].record(span.stage_ns(stage));
        }
    }

    fn snapshot(&self) -> ServeStats {
        let quota = self.rejected_quota.get() as usize;
        let capacity = self.rejected_capacity.get() as usize;
        ServeStats {
            requests: self.requests.get() as usize,
            rows: self.rows.get() as usize,
            cache_hits: self.cache_hits.get() as usize,
            batches: self.batches.get() as usize,
            rejected: quota + capacity,
            rejected_quota: quota,
            rejected_capacity: capacity,
            feedback: self.feedback.get() as usize,
            refreshes: self.refreshes.get() as usize,
        }
    }
}

impl Default for ServeObs {
    fn default() -> Self {
        ServeObs::new()
    }
}

// ---------------------------------------------------------------------------
// LRU prediction cache
// ---------------------------------------------------------------------------

/// Cache key: the model generation, then the exact IEEE-754 bit patterns
/// of the feature vector, then the relaxation parameter. Bit-pattern
/// keying makes the cache safe for a bit-exactness contract — `0.1 + 0.2`
/// and `0.3` are *different* keys, and NaN payloads (which compare unequal
/// as f64) still key consistently. The generation prefix makes stale hits
/// across hot-swaps impossible: a value computed on generation `g` can
/// only ever answer a request admitted under generation `g`.
type CacheKey = Box<[u64]>;

fn cache_key(generation: u64, features: &[f64], a: f64) -> CacheKey {
    std::iter::once(generation)
        .chain(features.iter().map(|v| v.to_bits()))
        .chain(std::iter::once(a.to_bits()))
        .collect()
}

const NIL: usize = usize::MAX;

struct CacheEntry {
    key: CacheKey,
    value: SurrogatePrediction,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map: O(1) get/insert via a slab-backed doubly linked
/// recency list. Capacity 0 disables it (get misses, insert drops).
struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slab: Vec<CacheEntry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Drops every entry (used after a hot-swap: superseded generations'
    /// entries can never hit again, so free their capacity immediately).
    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Unlinks `idx` from the recency list (leaves slab slot intact).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links `idx` at the most-recently-used end.
    fn link_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &[u64]) -> Option<SurrogatePrediction> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.link_front(idx);
        }
        Some(self.slab[idx].value)
    }

    fn insert(&mut self, key: CacheKey, value: SurrogatePrediction) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Concurrent workers may compute the same key; the values are
            // bit-identical by the batching contract, so just refresh.
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.link_front(idx);
            }
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = CacheEntry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(CacheEntry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.link_front(idx);
    }
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

/// One queued request: a feature vector evaluated at one or more `A`
/// values. `results[k]` is pre-filled for cache hits; workers compute the
/// `None` slots. `model` is the versioned model captured at submit time —
/// the generation this job is answered by, whatever swaps land while it
/// waits.
struct Job {
    features: Arc<Vec<f64>>,
    a_values: Vec<f64>,
    results: Vec<Option<SurrogatePrediction>>,
    model: Arc<VersionedModel>,
    submitted: Instant,
    /// the request's trace span, accumulated through the pipeline and
    /// returned to the submitter alongside the result
    span: obs::Span,
    notify: Option<CompletionNotify>,
    tx: mpsc::Sender<(obs::Span, Result<Vec<SurrogatePrediction>, QrossError>)>,
}

impl Job {
    fn pending_rows(&self) -> usize {
        self.results.iter().filter(|r| r.is_none()).count()
    }

    fn finish(self, serve_obs: &ServeObs) {
        let out: Vec<SurrogatePrediction> = self
            .results
            .into_iter()
            .map(|r| r.expect("all slots computed"))
            .collect();
        if obs::ENABLED {
            serve_obs
                .latency
                .record(self.submitted.elapsed().as_nanos() as u64);
            serve_obs.record_engine_stages(&self.span);
        }
        // A dropped receiver just means the client went away; ignore.
        let _ = self.tx.send((self.span, Ok(out)));
        // Wake the submitter's event loop (if any) only after the result
        // is deliverable: a woken poller must find the response ready.
        if let Some(notify) = self.notify {
            notify();
        }
    }
}

/// One tenant's admission state: its FIFO of queued jobs, its quota
/// accounting, and its deficit-round-robin scheduling state.
struct TenantQueue {
    name: String,
    class: TenantClass,
    jobs: VecDeque<Job>,
    /// pending (queued, unanswered) rows — the quantity `quota_rows`
    /// bounds
    pending_rows: usize,
    /// deficit counter: rows of service this tenant is owed. Topped up by
    /// `weight`·quantum on each scheduler visit, spent as jobs drain,
    /// reset when the tenant goes idle (classic DWRR).
    deficit: u64,
    /// whether this tenant is in the active ring
    queued: bool,
    // -- per-tenant counters (mutated under the queue lock) --
    requests: u64,
    rows: u64,
    rejected_quota: u64,
    rejected_capacity: u64,
}

impl TenantQueue {
    /// Total rejections (both reasons).
    fn rejected(&self) -> u64 {
        self.rejected_quota + self.rejected_capacity
    }
}

/// The tenant-aware job queue. A tenant with queued jobs sits in the
/// `active` ring; workers drain the ring deficit-weighted round-robin, so
/// a flooding tenant's backlog cannot delay other tenants by more than
/// one batch. Tenancy is invisible when every request is untagged: one
/// default tenant means one FIFO, exactly the pre-tenant behaviour.
struct Queue {
    tenants: Vec<TenantQueue>,
    by_name: HashMap<String, usize>,
    /// round-robin ring of tenant indices with queued jobs
    active: VecDeque<usize>,
    /// pending rows across all tenants (the global `queue_capacity`
    /// bound)
    pending_rows: usize,
    shutdown: bool,
}

/// Rows of service granted per unit of tenant weight each time the
/// scheduler visits a tenant. Must be small relative to `max_batch_rows`:
/// weighted sharing is arbitrated *within* a drained batch, so a quantum
/// near the batch size would let whichever tenant is at the ring front
/// fill whole batches and degrade the share to round-robin.
const DWRR_QUANTUM_ROWS: u64 = 2;

impl Queue {
    fn new(policy: &TenantPolicy) -> Queue {
        let mut queue = Queue {
            tenants: Vec::new(),
            by_name: HashMap::new(),
            active: VecDeque::new(),
            pending_rows: 0,
            shutdown: false,
        };
        // The default tenant is index 0, always present.
        queue.register(DEFAULT_TENANT, policy.class_for(DEFAULT_TENANT));
        for (name, class) in &policy.classes {
            if !queue.by_name.contains_key(name) {
                queue.register(name, *class);
            }
        }
        queue
    }

    fn register(&mut self, name: &str, class: TenantClass) -> usize {
        let idx = self.tenants.len();
        self.tenants.push(TenantQueue {
            name: name.to_string(),
            class: TenantClass {
                weight: class.weight.max(1),
                quota_rows: class.quota_rows,
            },
            jobs: VecDeque::new(),
            pending_rows: 0,
            deficit: 0,
            queued: false,
            requests: 0,
            rows: 0,
            rejected_quota: 0,
            rejected_capacity: 0,
        });
        self.by_name.insert(name.to_string(), idx);
        idx
    }

    /// Index of `tenant`, registering it with the default class on first
    /// use. Past [`MAX_TENANTS`] distinct names, unknown tenants fold
    /// into the default tenant (reject-never-OOM applies to the tenant
    /// registry too).
    fn tenant_index(&mut self, tenant: Option<&str>, policy: &TenantPolicy) -> usize {
        let Some(name) = tenant.filter(|n| !n.is_empty() && *n != DEFAULT_TENANT) else {
            return 0;
        };
        if let Some(&idx) = self.by_name.get(name) {
            return idx;
        }
        if self.tenants.len() >= MAX_TENANTS {
            return 0;
        }
        self.register(name, policy.class_for(name))
    }

    /// Whether any tenant has queued jobs.
    fn is_idle(&self) -> bool {
        self.active.is_empty()
    }

    /// Enqueues `job` on tenant `idx` and links the tenant into the
    /// active ring. Caller has already done quota accounting.
    fn push(&mut self, idx: usize, job: Job) {
        let rows = job.pending_rows();
        let tenant = &mut self.tenants[idx];
        tenant.pending_rows += rows;
        tenant.jobs.push_back(job);
        self.pending_rows += rows;
        if !tenant.queued {
            tenant.queued = true;
            self.active.push_back(idx);
        }
    }

    /// Deficit-weighted round-robin drain: collects up to
    /// `max_batch_rows` pending rows of jobs for one worker batch,
    /// cycling tenants in the active ring. Each visit tops a tenant's
    /// deficit up by `weight`·quantum and serves whole jobs while the
    /// deficit covers them, so service converges on the weight ratio
    /// whatever each tenant's backlog looks like. A worker never leaves
    /// empty-handed while jobs are queued: with an empty batch the front
    /// job is served regardless of deficit (work conservation — fairness
    /// only arbitrates *contended* batches).
    fn drain_batch(&mut self, max_batch_rows: usize) -> Vec<Job> {
        let mut batch = Vec::new();
        let mut rows = 0usize;
        // Every ring visit either serves ≥1 job or retires the tenant
        // from the ring, except deficit top-ups that still don't cover
        // the front job — bounded by job size / quantum, so this loop
        // terminates. `visits` is a belt-and-braces backstop.
        let mut visits = 0usize;
        let max_visits = self
            .active
            .len()
            .saturating_mul(2)
            .saturating_add(max_batch_rows / DWRR_QUANTUM_ROWS as usize)
            .saturating_add(16);
        while rows < max_batch_rows && visits < max_visits {
            visits += 1;
            let Some(&idx) = self.active.front() else {
                break;
            };
            let tenant = &mut self.tenants[idx];
            if tenant.jobs.is_empty() {
                tenant.queued = false;
                tenant.deficit = 0;
                self.active.pop_front();
                continue;
            }
            let top_up = DWRR_QUANTUM_ROWS * u64::from(tenant.class.weight);
            // Clamp accumulated credit: a backlogged tenant whose visits
            // keep getting cut short by batch boundaries must not bank
            // unbounded deficit it could later burst with.
            let deficit_cap = top_up.saturating_add(max_batch_rows as u64);
            tenant.deficit = tenant.deficit.saturating_add(top_up).min(deficit_cap);
            while let Some(job) = tenant.jobs.front() {
                let job_rows = job.pending_rows();
                if rows + job_rows > max_batch_rows && !batch.is_empty() {
                    // Batch is full; later rows wait for the next worker.
                    rows = max_batch_rows;
                    break;
                }
                if u64::try_from(job_rows).unwrap_or(u64::MAX) > tenant.deficit && !batch.is_empty()
                {
                    break; // out of credit this round; rotate
                }
                tenant.deficit = tenant.deficit.saturating_sub(job_rows as u64);
                tenant.pending_rows -= job_rows;
                self.pending_rows -= job_rows;
                rows += job_rows;
                batch.push(tenant.jobs.pop_front().expect("front checked"));
                if rows >= max_batch_rows {
                    break;
                }
            }
            // Rotate a still-backlogged tenant to the back of the ring;
            // retire an idle one (its deficit does not accrue while
            // idle — classic DWRR keeps long-idle tenants from bursting).
            self.active.pop_front();
            let tenant = &mut self.tenants[idx];
            if tenant.jobs.is_empty() {
                tenant.queued = false;
                tenant.deficit = 0;
            } else {
                self.active.push_back(idx);
            }
        }
        batch
    }
}

/// Mutable online-learning state, guarded by one lock so a feedback push
/// and its (possible) retrain snapshot are atomic — the snapshot of
/// retrain `k` is exactly the buffer contents after the record that
/// triggered it.
struct OnlineState {
    buffer: ReplayBuffer,
    feedback_count: u64,
    retrain_count: u64,
}

/// One queued retrain: the training snapshot (captured at trigger time),
/// its lineage counters, and the channel the resulting generation (or
/// error) is reported on.
struct RetrainJob {
    snapshot: Vec<FeedbackRecord>,
    retrain_index: u64,
    feedback_count: u64,
    reply: mpsc::Sender<Result<u64, QrossError>>,
}

/// Online-learning half of the shared engine state. Present only for
/// engines built with [`ServeEngine::with_online`].
struct OnlineShared {
    config: OnlineConfig,
    /// original training corpus merged under every fine-tune (`None`:
    /// fine-tune on the replay buffer alone)
    base: Option<SurrogateDataset>,
    state: Mutex<OnlineState>,
    /// retrains handed to the trainer and not yet completed — bounded by
    /// `config.max_pending_retrains` so a feedback flood cannot queue
    /// unbounded buffer snapshots behind a slow fine-tune
    pending_retrains: AtomicU64,
    /// trainer-thread inbox; taken (and dropped) on engine shutdown so
    /// the trainer drains queued retrains and exits
    trainer_tx: Mutex<Option<mpsc::Sender<RetrainJob>>>,
}

struct Shared {
    /// the current model epoch — swapped whole, read with one short lock
    /// (pointer shuffle only, never held across a forward pass)
    slot: Mutex<Arc<VersionedModel>>,
    /// mirror of the slot's generation for lock-free reads
    generation: AtomicU64,
    /// feature width, invariant across swaps (scalers are frozen)
    feature_dim: usize,
    config: ServeConfig,
    policy: TenantPolicy,
    /// engine start time, the denominator of the qps metric
    started: Instant,
    queue: Mutex<Queue>,
    work_ready: Condvar,
    cache: Mutex<LruCache>,
    obs: ServeObs,
    online: Option<OnlineShared>,
}

/// Locks a mutex, recovering from poisoning: a panicking thread must not
/// take the whole serving engine down with it (the protected state is
/// only ever mutated in small, invariant-preserving steps).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    /// The current model epoch (cheap: one short lock, one `Arc` clone).
    fn current_model(&self) -> Arc<VersionedModel> {
        Arc::clone(&lock(&self.slot))
    }

    /// Validates and enqueues one request; returns the response channel.
    ///
    /// Fully-cached requests are answered inline without touching the
    /// job queue (the fast path a warm serving process mostly runs).
    fn submit_opts(
        self: &Arc<Self>,
        tenant: Option<&str>,
        features: Vec<f64>,
        a_values: Vec<f64>,
        notify: Option<CompletionNotify>,
        mut span: obs::Span,
    ) -> Result<PendingPrediction, QrossError> {
        let expect = self.feature_dim;
        if features.len() != expect {
            return Err(QrossError::BadRequest {
                message: format!("expected {expect} features, got {}", features.len()),
            });
        }
        if let Some(bad) = features.iter().find(|v| !v.is_finite()) {
            return Err(QrossError::BadRequest {
                message: format!("non-finite feature value {bad}"),
            });
        }
        if let Some(&bad) = a_values.iter().find(|a| !a.is_finite() || **a <= 0.0) {
            return Err(QrossError::BadRequest {
                message: format!("relaxation parameter must be finite and positive, got {bad}"),
            });
        }
        let submitted = Instant::now();
        let (tx, rx) = mpsc::channel();
        // Accepted-work counters are bumped only once a request is
        // actually admitted (inline or enqueued): a rejected request must
        // show up in `rejected`, never in `requests`/`rows`. Per-tenant
        // accounting happens under the queue lock, which also owns the
        // tenant registry.
        let total_rows = a_values.len() as u64;
        let accept = |hits: u64| {
            self.obs.requests.inc();
            self.obs.rows.add(total_rows);
            if hits > 0 {
                self.obs.cache_hits.add(hits);
            }
        };
        let accept_tenant = |q: &mut Queue, idx: usize| {
            let t = &mut q.tenants[idx];
            t.requests += 1;
            t.rows += total_rows;
        };
        if a_values.is_empty() {
            accept(0);
            let mut q = lock(&self.queue);
            let idx = q.tenant_index(tenant, &self.policy);
            accept_tenant(&mut q, idx);
            drop(q);
            self.obs.latency.record(0);
            self.obs.record_engine_stages(&span);
            let _ = tx.send((span, Ok(Vec::new())));
            if let Some(notify) = notify {
                notify();
            }
            return Ok(PendingPrediction { rx });
        }

        // Capture the model epoch this request is answered by. Everything
        // from here on — cache probe, forward pass, cache fill — runs
        // against this generation, even if a hot-swap lands concurrently.
        let model = self.current_model();

        // Cache probe under one short lock.
        let mut results: Vec<Option<SurrogatePrediction>> = vec![None; a_values.len()];
        let mut hits = 0u64;
        if self.config.cache_capacity > 0 {
            let sw = obs::Stopwatch::start();
            let mut cache = lock(&self.cache);
            for (slot, &a) in a_values.iter().enumerate() {
                if let Some(hit) = cache.get(&cache_key(model.generation, &features, a)) {
                    results[slot] = Some(hit);
                    hits += 1;
                }
            }
            drop(cache);
            span.record(obs::Stage::Cache, sw.elapsed_ns());
        }

        let job = Job {
            features: Arc::new(features),
            a_values,
            results,
            model,
            submitted,
            span,
            notify,
            tx,
        };
        let pending = job.pending_rows();
        if pending == 0 {
            accept(hits);
            let mut q = lock(&self.queue);
            let idx = q.tenant_index(tenant, &self.policy);
            accept_tenant(&mut q, idx);
            drop(q);
            job.finish(&self.obs);
            return Ok(PendingPrediction { rx });
        }
        if pending > self.config.queue_capacity {
            // Could never fit even in an empty queue: this is a malformed
            // request (grid larger than the engine's bound), not transient
            // load — retrying would loop forever on Overloaded.
            return Err(QrossError::BadRequest {
                message: format!(
                    "{pending} uncached rows exceed the queue capacity {} — split the grid",
                    self.config.queue_capacity
                ),
            });
        }
        {
            let mut q = lock(&self.queue);
            let idx = q.tenant_index(tenant, &self.policy);
            // Admission control: the tenant's private token quota first,
            // then the global bound. Both reject immediately (typed
            // backpressure, never unbounded buffering).
            let quota = q.tenants[idx].class.quota_rows;
            if quota > 0 && q.tenants[idx].pending_rows + pending > quota {
                q.tenants[idx].rejected_quota += 1;
                self.obs.rejected_quota.inc();
                return Err(QrossError::Overloaded { capacity: quota });
            }
            if q.pending_rows + pending > self.config.queue_capacity {
                q.tenants[idx].rejected_capacity += 1;
                self.obs.rejected_capacity.inc();
                return Err(QrossError::Overloaded {
                    capacity: self.config.queue_capacity,
                });
            }
            accept_tenant(&mut q, idx);
            q.push(idx, job);
        }
        accept(hits);
        self.work_ready.notify_one();
        Ok(PendingPrediction { rx })
    }

    /// Point-in-time metrics snapshot. Counters are relaxed atomics and
    /// the per-tenant table is read under the queue lock, so the snapshot
    /// is cheap but only approximately consistent across fields — fine
    /// for observability, not for accounting.
    fn metrics(&self) -> EngineMetrics {
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let requests = self.obs.requests.get();
        let batches = self.obs.batches.get();
        let batched_rows = self.obs.batched_rows.get();
        let rows = self.obs.rows.get();
        let cache_hits = self.obs.cache_hits.get();
        let rejected_quota = self.obs.rejected_quota.get();
        let rejected_capacity = self.obs.rejected_capacity.get();
        let (queue_depth, tenants) = {
            let q = lock(&self.queue);
            let tenants = q
                .tenants
                .iter()
                .filter(|t| t.requests > 0 || t.rejected() > 0 || t.class != TenantClass::default())
                .map(|t| TenantMetrics {
                    tenant: t.name.clone(),
                    weight: t.class.weight,
                    quota_rows: t.class.quota_rows,
                    requests: t.requests,
                    rows: t.rows,
                    rejected: t.rejected(),
                    rejected_quota: t.rejected_quota,
                    rejected_capacity: t.rejected_capacity,
                    pending_rows: t.pending_rows,
                })
                .collect();
            (q.pending_rows, tenants)
        };
        let generation = self.generation.load(Ordering::SeqCst);
        // Instantaneous values are mirrored into gauges here, on the
        // metrics/scrape path, so exposition stays current without the
        // hot path maintaining them.
        self.obs.queue_depth.set(queue_depth as i64);
        self.obs.generation.set(generation as i64);
        let latency = self.obs.latency.snapshot();
        EngineMetrics {
            uptime_secs: uptime,
            qps: requests as f64 / uptime,
            latency_p50_us: latency.quantile(0.50).map(|ns| ns / 1_000.0),
            latency_p99_us: latency.quantile(0.99).map(|ns| ns / 1_000.0),
            batch_occupancy: if batches > 0 {
                batched_rows as f64 / batches as f64
            } else {
                0.0
            },
            cache_hit_rate: if rows > 0 {
                cache_hits as f64 / rows as f64
            } else {
                0.0
            },
            generation,
            queue_depth,
            rejected: rejected_quota + rejected_capacity,
            rejected_quota,
            rejected_capacity,
            tenants,
        }
    }

    /// Worker body: drain a batch of jobs, answer them with one forward
    /// pass per head, repeat until shutdown *and* the queue is empty
    /// (queued work is always drained, never dropped).
    fn worker_loop(self: &Arc<Self>) {
        // Per-worker input-staging scratch: batched predicts reuse one
        // buffer across this worker's lifetime instead of allocating per
        // drained batch (bit-invisible — see `PredictScratch`).
        let mut scratch = crate::surrogate::PredictScratch::new();
        loop {
            let batch: Vec<Job> = {
                let mut q = lock(&self.queue);
                loop {
                    if !q.is_idle() {
                        break;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = match self.work_ready.wait(q) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                q.drain_batch(self.config.max_batch_rows)
            };
            self.process_batch(&mut scratch, batch);
        }
    }

    /// One stacked forward pass per model generation over every un-cached
    /// row of `batch`, then scatter, cache, and respond.
    ///
    /// Jobs straddling a hot-swap may carry different generations in one
    /// drained batch; rows are grouped by the generation captured at
    /// submit time, so every job is answered by exactly the model it was
    /// admitted under (per-row bit-exactness is unaffected — matrix rows
    /// are accumulated independently).
    fn process_batch(
        self: &Arc<Self>,
        scratch: &mut crate::surrogate::PredictScratch,
        mut batch: Vec<Job>,
    ) {
        // Queue-wait stage: submit → drain. Measured before grouping so
        // assembly time lands in the batch stage, not here.
        if obs::ENABLED {
            for job in batch.iter_mut() {
                let waited = job.submitted.elapsed().as_nanos() as u64;
                job.span.record(obs::Stage::Queue, waited);
            }
        }
        let mut assembly = obs::Stopwatch::start();
        // (job index, slot index) per generation group, in deterministic
        // job/slot order within each group.
        type GenGroup = (Arc<VersionedModel>, Vec<(usize, usize)>);
        let mut groups: Vec<GenGroup> = Vec::new();
        for (j, job) in batch.iter().enumerate() {
            for (slot, r) in job.results.iter().enumerate() {
                if r.is_none() {
                    match groups
                        .iter_mut()
                        .find(|(m, _)| m.generation == job.model.generation)
                    {
                        Some((_, index)) => index.push((j, slot)),
                        None => groups.push((Arc::clone(&job.model), vec![(j, slot)])),
                    }
                }
            }
        }
        if obs::ENABLED {
            let assembly_ns = assembly.lap();
            for job in batch.iter_mut() {
                job.span.record(obs::Stage::Batch, assembly_ns);
            }
        }
        for (model, index) in &groups {
            let queries: Vec<(&[f64], f64)> = index
                .iter()
                .map(|&(j, slot)| (batch[j].features.as_slice(), batch[j].a_values[slot]))
                .collect();
            let sw = obs::Stopwatch::start();
            let predictions = model.model.surrogate().predict_many_with(scratch, &queries);
            let forward_ns = sw.elapsed_ns();
            self.obs.batches.inc();
            self.obs.batched_rows.add(queries.len() as u64);
            let mut cache_ns = 0u64;
            if self.config.cache_capacity > 0 {
                let sw = obs::Stopwatch::start();
                let mut cache = lock(&self.cache);
                for (&(j, slot), &p) in index.iter().zip(&predictions) {
                    cache.insert(
                        cache_key(
                            model.generation,
                            &batch[j].features,
                            batch[j].a_values[slot],
                        ),
                        p,
                    );
                }
                drop(cache);
                cache_ns = sw.elapsed_ns();
            }
            for (&(j, slot), &p) in index.iter().zip(&predictions) {
                batch[j].results[slot] = Some(p);
            }
            if obs::ENABLED {
                // Attribute this group's forward/cache time to each job
                // that contributed rows, once per job (the index is in
                // non-decreasing job order by construction).
                let mut last_j = usize::MAX;
                for &(j, _) in index {
                    if j != last_j {
                        batch[j].span.record(obs::Stage::Forward, forward_ns);
                        batch[j].span.record(obs::Stage::Cache, cache_ns);
                        last_j = j;
                    }
                }
            }
        }
        for job in batch {
            job.finish(&self.obs);
        }
    }

    // -----------------------------------------------------------------
    // Online learning: feedback ingestion, retraining, hot-swap
    // -----------------------------------------------------------------

    /// Shorthand for the "engine was not started online" rejection.
    fn online_or_reject(&self) -> Result<&OnlineShared, QrossError> {
        self.online.as_ref().ok_or_else(|| QrossError::BadRequest {
            message: "engine is not running in online mode (start it with --online / \
                      ServeEngine::with_online)"
                .to_string(),
        })
    }

    /// Hands a retrain job to the trainer thread. Callers hold the online
    /// state lock, which orders jobs by their `retrain_index`.
    fn send_retrain(&self, online: &OnlineShared, job: RetrainJob) -> Result<(), QrossError> {
        // Count the job *before* handing it over: the trainer decrements
        // on completion, and incrementing after a successful send could
        // race a fast completion into an underflow.
        online.pending_retrains.fetch_add(1, Ordering::SeqCst);
        let tx = lock(&online.trainer_tx);
        match tx.as_ref() {
            Some(tx) if tx.send(job).is_ok() => Ok(()),
            _ => {
                online.pending_retrains.fetch_sub(1, Ordering::SeqCst);
                Err(QrossError::Serve {
                    message: "online trainer is not running".to_string(),
                })
            }
        }
    }

    /// Whether another retrain may be queued right now.
    fn retrain_capacity_left(&self, online: &OnlineShared) -> bool {
        let cap = online.config.max_pending_retrains.max(1) as u64;
        online.pending_retrains.load(Ordering::SeqCst) < cap
    }

    /// Validates and ingests one feedback record; triggers a retrain when
    /// the record is the `refresh_after`-th since the last trigger.
    fn submit_feedback(&self, record: FeedbackRecord) -> Result<FeedbackAck, QrossError> {
        let online = self.online_or_reject()?;
        record.validate(self.feature_dim)?;
        let ack = {
            let mut st = lock(&online.state);
            st.buffer.push(record);
            st.feedback_count += 1;
            // Triggers landing while the trainer is already saturated are
            // coalesced: the record stays in the buffer (nothing is
            // dropped) and a later retrain trains on it. This bounds
            // queued snapshots at `max_pending_retrains`.
            let trigger = online.config.refresh_after > 0
                && st.feedback_count % online.config.refresh_after as u64 == 0
                && self.retrain_capacity_left(online);
            let pending = if trigger {
                let (reply, rx) = mpsc::channel();
                // Snapshot *now*, under the same lock as the push: the
                // training set of retrain k is a pure function of the
                // feedback prefix that triggered it. The retrain index is
                // committed only once the trainer has the job — a send
                // failure (engine shutting down) must not burn an index a
                // clean replay of the same log would not burn, and the
                // record itself IS ingested either way, so the push is
                // never rolled back and this call still succeeds.
                let sent = self.send_retrain(
                    online,
                    RetrainJob {
                        snapshot: st.buffer.snapshot(),
                        retrain_index: st.retrain_count + 1,
                        feedback_count: st.feedback_count,
                        reply,
                    },
                );
                match sent {
                    Ok(()) => {
                        st.retrain_count += 1;
                        Some(PendingRefresh { rx })
                    }
                    Err(_) => None,
                }
            } else {
                None
            };
            self.obs.replay_depth.set(st.buffer.len() as i64);
            FeedbackAck {
                feedback_count: st.feedback_count,
                buffer_len: st.buffer.len(),
                refresh: pending,
            }
        };
        self.obs.feedback.inc();
        Ok(ack)
    }

    /// Forces a retrain/swap cycle regardless of the trigger counter.
    fn refresh(&self) -> Result<PendingRefresh, QrossError> {
        let online = self.online_or_reject()?;
        let mut st = lock(&online.state);
        if !self.retrain_capacity_left(online) {
            // Backpressure, same rule as the request queue: reject
            // instead of queueing snapshots without bound.
            return Err(QrossError::Overloaded {
                capacity: online.config.max_pending_retrains.max(1),
            });
        }
        let (reply, rx) = mpsc::channel();
        // Index committed only after the trainer has the job (a failed
        // send must not desynchronise retrain_count from the seeds a
        // clean replay would derive).
        self.send_retrain(
            online,
            RetrainJob {
                snapshot: st.buffer.snapshot(),
                retrain_index: st.retrain_count + 1,
                feedback_count: st.feedback_count,
                reply,
            },
        )?;
        st.retrain_count += 1;
        Ok(PendingRefresh { rx })
    }

    /// Trainer-thread body: fine-tune → checkpoint → swap, one queued
    /// retrain at a time, until the engine drops its sender.
    fn trainer_loop(self: &Arc<Self>, rx: mpsc::Receiver<RetrainJob>) {
        while let Ok(job) = rx.recv() {
            let result = self.run_retrain(&job);
            if let Some(online) = &self.online {
                online.pending_retrains.fetch_sub(1, Ordering::SeqCst);
            }
            // A dropped receiver just means nobody waited; ignore.
            let _ = job.reply.send(result);
        }
    }

    /// One retrain cycle. The swap is installed only after the checkpoint
    /// is durably written, so every generation the engine ever serves is
    /// reloadable from disk.
    fn run_retrain(&self, job: &RetrainJob) -> Result<u64, QrossError> {
        let online = self.online.as_ref().expect("trainer only runs online");
        let retrain_sw = obs::Stopwatch::start();
        let current = self.current_model();
        let dataset = merge_for_finetune(
            online.base.as_ref(),
            &job.snapshot,
            online.config.feedback_weight,
            self.feature_dim,
        )?;
        let ft = FineTuneConfig {
            epochs: online.config.epochs,
            learning_rate: online.config.learning_rate,
            batch_size: online.config.batch_size,
            // Every retrain seed derives from (online seed, retrain
            // index): retrain k is bit-identical wherever it runs.
            seed: mathkit::rng::derive_seed(online.config.seed, 0x0F17_0000 + job.retrain_index),
        };
        let (tuned, _report) = current.model.surrogate().fine_tune(&dataset, &ft)?;
        let generation = current.generation + 1;
        if let Some(dir) = &online.config.checkpoint_dir {
            let checkpoint = SurrogateCheckpoint {
                lineage: Some(LineageHeader {
                    generation,
                    parent_generation: current.generation,
                    seed: online.config.seed,
                    retrain_index: job.retrain_index,
                    feedback_count: job.feedback_count,
                    replay_len: job.snapshot.len() as u64,
                }),
                state: tuned.to_state(),
            };
            checkpoint
                .save(dir.join(format!("ckpt-g{generation:06}.qross")))
                .map_err(QrossError::from)?;
        }
        let model = swap_surrogate(&current.model, tuned)?;
        {
            // Swap latency = the slot-lock critical section readers can
            // actually contend on (the pointer exchange, not the
            // fine-tune).
            let sw = obs::Stopwatch::start();
            let mut slot = lock(&self.slot);
            *slot = Arc::new(VersionedModel { generation, model });
            drop(slot);
            self.obs.swap_ns.record(sw.elapsed_ns());
        }
        self.generation.store(generation, Ordering::SeqCst);
        // Entries keyed to superseded generations can never hit again
        // (submit probes only the generation it captured), so clearing is
        // bit-exactness-neutral and releases the whole cache capacity to
        // the new generation at once instead of one LRU eviction at a
        // time. In-flight old-generation jobs may still insert a few
        // entries afterwards; they age out normally.
        if self.config.cache_capacity > 0 {
            lock(&self.cache).clear();
        }
        self.obs.refreshes.inc();
        self.obs.generation.set(generation as i64);
        self.obs.retrain_ns.record(retrain_sw.elapsed_ns());
        Ok(generation)
    }
}

/// Rebuilds a [`ServeModel`] of the same kind around a fine-tuned
/// surrogate. For bundles the featurizer is rebuilt from its recipe
/// (checked serialisable at [`ServeEngine::with_online`] time, so this
/// cannot fail after construction) and the instance encodings are shared.
fn swap_surrogate(model: &ServeModel, surrogate: Surrogate) -> Result<ServeModel, QrossError> {
    match model {
        ServeModel::Surrogate(_) => Ok(ServeModel::Surrogate(Arc::new(surrogate))),
        ServeModel::Bundle(t) => {
            let spec = t.featurizer.spec().ok_or_else(|| QrossError::Persistence {
                message: format!(
                    "featurizer `{}` has no serialisable recipe: cannot rebuild it for a swap",
                    t.featurizer.name()
                ),
            })?;
            Ok(ServeModel::Bundle(Arc::new(TrainedQross {
                surrogate,
                featurizer: spec.build(),
                train_encodings: t.train_encodings.clone(),
                test_encodings: t.test_encodings.clone(),
                dataset_len: t.dataset_len,
                report: t.report.clone(),
                config: t.config,
            })))
        }
    }
}

/// One tenant's row in [`EngineMetrics`]. Counters are cumulative since
/// engine start; `pending_rows` is the instantaneous queued backlog the
/// tenant's `quota_rows` bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    pub tenant: String,
    pub weight: u32,
    /// 0 = unlimited (only the global queue bound applies)
    pub quota_rows: usize,
    pub requests: u64,
    pub rows: u64,
    /// total rejections (`rejected_quota + rejected_capacity`)
    pub rejected: u64,
    /// rejections because this tenant's own row quota was full
    pub rejected_quota: u64,
    /// rejections because the global queue capacity was full
    pub rejected_capacity: u64,
    pub pending_rows: usize,
}

/// Point-in-time engine metrics ([`ServeEngine::metrics`], and the
/// `metrics` protocol op). Latency quantiles come from a log₂-bucketed
/// histogram, so they are exact to within a factor of √2; `None` until
/// the first request completes.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    pub uptime_secs: f64,
    /// accepted requests per second, averaged over the uptime
    pub qps: f64,
    pub latency_p50_us: Option<f64>,
    pub latency_p99_us: Option<f64>,
    /// mean rows per worker forward pass (cache hits excluded)
    pub batch_occupancy: f64,
    /// cache hits / accepted rows
    pub cache_hit_rate: f64,
    /// model generation currently serving new requests
    pub generation: u64,
    /// instantaneous queued (unanswered) rows across all tenants
    pub queue_depth: usize,
    /// total rejected requests (quota + global capacity)
    pub rejected: u64,
    /// rejections because a tenant's own row quota was full
    pub rejected_quota: u64,
    /// rejections because the global queue capacity was full
    pub rejected_capacity: u64,
    /// tenants that have seen traffic or carry a non-default class
    pub tenants: Vec<TenantMetrics>,
}

/// A response handle returned by [`ServeEngine::submit`].
#[derive(Debug)]
pub struct PendingPrediction {
    rx: mpsc::Receiver<(obs::Span, Result<Vec<SurrogatePrediction>, QrossError>)>,
}

impl PendingPrediction {
    /// Blocks until the engine answers.
    ///
    /// # Errors
    ///
    /// Propagates the engine's error for this request, or
    /// [`QrossError::Serve`] if the worker holding it died.
    pub fn wait(self) -> Result<Vec<SurrogatePrediction>, QrossError> {
        self.rx
            .recv()
            .map(|(_, result)| result)
            .unwrap_or_else(|_| {
                Err(QrossError::Serve {
                    message: "worker disconnected before answering".to_string(),
                })
            })
    }

    /// [`PendingPrediction::wait`] plus the request's trace span, for
    /// blocking drivers that record encode time and feed the engine's
    /// [`obs::TraceLog`].
    pub fn wait_spanned(self) -> (obs::Span, Result<Vec<SurrogatePrediction>, QrossError>) {
        self.rx.recv().unwrap_or_else(|_| {
            (
                obs::Span::default(),
                Err(QrossError::Serve {
                    message: "worker disconnected before answering".to_string(),
                }),
            )
        })
    }

    /// Non-blocking poll: `Some(result)` once the engine has answered,
    /// `None` while the request is still in flight. Event-loop drivers
    /// call this after their wake pipe fires instead of parking a thread
    /// per request. A dead worker reports as `Some(Err(Serve))`, matching
    /// [`PendingPrediction::wait`].
    pub fn try_wait(&mut self) -> Option<Result<Vec<SurrogatePrediction>, QrossError>> {
        self.try_wait_spanned().map(|(_, result)| result)
    }

    /// [`PendingPrediction::try_wait`] plus the request's trace span as
    /// the engine finished it (queue/batch/forward/cache stages filled
    /// in). The wire layer adds its encode time and offers the span to
    /// the engine's [`obs::TraceLog`].
    pub fn try_wait_spanned(
        &mut self,
    ) -> Option<(obs::Span, Result<Vec<SurrogatePrediction>, QrossError>)> {
        match self.rx.try_recv() {
            Ok(answer) => Some(answer),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some((
                obs::Span::default(),
                Err(QrossError::Serve {
                    message: "worker disconnected before answering".to_string(),
                }),
            )),
        }
    }
}

/// A handle on an in-flight retrain/hot-swap cycle.
#[derive(Debug)]
pub struct PendingRefresh {
    rx: mpsc::Receiver<Result<u64, QrossError>>,
}

impl PendingRefresh {
    /// Blocks until the retrain completes, returning the generation it
    /// installed.
    ///
    /// # Errors
    ///
    /// The retrain's own error (empty training merge, diverged
    /// fine-tune, checkpoint I/O failure — in every case the old
    /// generation keeps serving), or [`QrossError::Serve`] if the trainer
    /// thread is gone.
    pub fn wait(self) -> Result<u64, QrossError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(QrossError::Serve {
                message: "online trainer exited before answering".to_string(),
            })
        })
    }
}

/// Receipt for one accepted feedback record.
#[derive(Debug)]
pub struct FeedbackAck {
    /// total feedback records accepted so far (this one included)
    pub feedback_count: u64,
    /// replay-buffer occupancy after the push
    pub buffer_len: usize,
    /// handle on the retrain this record triggered, when it was the
    /// `refresh_after`-th; `None` otherwise. Dropping the handle lets the
    /// retrain proceed fire-and-forget.
    pub refresh: Option<PendingRefresh>,
}

/// Live online-loop counters ([`ServeEngine::online_status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineStatus {
    /// feedback records accepted since start
    pub feedback_count: u64,
    /// current replay-buffer occupancy
    pub buffer_len: usize,
    /// retrains triggered (automatic + forced) since start
    pub retrain_count: u64,
    /// the configured automatic trigger period (0 = manual only)
    pub refresh_after: usize,
}

/// The concurrent batched serving engine. See the module docs.
///
/// Dropping the engine shuts it down gracefully: queued jobs are drained
/// and answered, queued retrains complete, then the workers and the
/// trainer join.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    trainer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServeEngine({} workers, feature_dim {})",
            self.workers.len(),
            self.feature_dim()
        )
    }
}

impl ServeEngine {
    /// Starts the engine: spawns the worker pool and begins serving.
    /// The model is frozen (generation 0 forever); see
    /// [`ServeEngine::with_online`] for the continual-learning variant.
    pub fn new(model: ServeModel, config: ServeConfig) -> Self {
        Self::build(model, config, TenantPolicy::default(), None, None)
            .expect("offline construction cannot fail")
    }

    /// Starts the engine with a multi-tenant admission policy: per-tenant
    /// row quotas and deficit-weighted round-robin draining into the
    /// micro-batcher. Tenants absent from `policy.classes` get
    /// `policy.default_class` on first use.
    pub fn with_tenants(model: ServeModel, config: ServeConfig, policy: TenantPolicy) -> Self {
        Self::build(model, config, policy, None, None).expect("offline construction cannot fail")
    }

    /// Starts the engine in **online mode**: in addition to serving, it
    /// ingests feedback ([`ServeEngine::submit_feedback`]), fine-tunes on
    /// the replay buffer merged with `base` (the original training
    /// corpus, when available), and hot-swaps the refreshed model without
    /// dropping a request.
    ///
    /// # Errors
    ///
    /// * [`QrossError::BadDataset`] — `base`'s feature width differs from
    ///   the model's.
    /// * [`QrossError::Persistence`] — a bundle model whose featurizer
    ///   has no serialisable recipe (it could not be rebuilt for a swap),
    ///   or an uncreatable checkpoint directory.
    pub fn with_online(
        model: ServeModel,
        config: ServeConfig,
        online: OnlineConfig,
        base: Option<SurrogateDataset>,
    ) -> Result<Self, QrossError> {
        Self::build(model, config, TenantPolicy::default(), Some(online), base)
    }

    /// Online mode with a multi-tenant admission policy — the union of
    /// [`ServeEngine::with_online`] and [`ServeEngine::with_tenants`].
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::with_online`].
    pub fn with_online_tenants(
        model: ServeModel,
        config: ServeConfig,
        policy: TenantPolicy,
        online: OnlineConfig,
        base: Option<SurrogateDataset>,
    ) -> Result<Self, QrossError> {
        Self::build(model, config, policy, Some(online), base)
    }

    fn build(
        model: ServeModel,
        config: ServeConfig,
        policy: TenantPolicy,
        online: Option<OnlineConfig>,
        base: Option<SurrogateDataset>,
    ) -> Result<Self, QrossError> {
        let feature_dim = model.feature_dim();
        let online_shared = match online {
            None => None,
            Some(online_config) => {
                if let Some(base) = &base {
                    if base.feat_dim() != feature_dim {
                        return Err(QrossError::BadDataset {
                            message: format!(
                                "base corpus is {}-wide but the model expects {feature_dim}",
                                base.feat_dim()
                            ),
                        });
                    }
                }
                // Fail swap-blocking problems at construction, not at the
                // first retrain: the featurizer must be rebuildable…
                if let ServeModel::Bundle(t) = &model {
                    if t.featurizer.spec().is_none() {
                        return Err(QrossError::Persistence {
                            message: format!(
                                "featurizer `{}` has no serialisable recipe: bundles served \
                                 online must be rebuildable for hot-swaps",
                                t.featurizer.name()
                            ),
                        });
                    }
                }
                // …and the checkpoint directory writable.
                if let Some(dir) = &online_config.checkpoint_dir {
                    std::fs::create_dir_all(dir).map_err(|e| QrossError::Persistence {
                        message: format!("create checkpoint dir {}: {e}", dir.display()),
                    })?;
                }
                let buffer = ReplayBuffer::new(
                    online_config.buffer_capacity.max(1),
                    online_config.recent_capacity,
                    online_config.seed,
                );
                Some(OnlineShared {
                    config: online_config,
                    base,
                    state: Mutex::new(OnlineState {
                        buffer,
                        feedback_count: 0,
                        retrain_count: 0,
                    }),
                    pending_retrains: AtomicU64::new(0),
                    trainer_tx: Mutex::new(None),
                })
            }
        };
        let shared = Arc::new(Shared {
            slot: Mutex::new(Arc::new(VersionedModel {
                generation: 0,
                model,
            })),
            generation: AtomicU64::new(0),
            feature_dim,
            config,
            queue: Mutex::new(Queue::new(&policy)),
            policy,
            started: Instant::now(),
            work_ready: Condvar::new(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            obs: ServeObs::new(),
            online: online_shared,
        });
        let trainer = shared.online.as_ref().map(|online| {
            let (tx, rx) = mpsc::channel();
            *lock(&online.trainer_tx) = Some(tx);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || shared.trainer_loop(rx))
        });
        let workers = (0..resolve_workers(config.workers))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        Ok(ServeEngine {
            shared,
            workers,
            trainer,
        })
    }

    /// The model epoch currently serving new requests. Requests already
    /// admitted may still be answered by an earlier generation (the one
    /// they captured at submit time).
    pub fn model(&self) -> Arc<VersionedModel> {
        self.shared.current_model()
    }

    /// The generation currently serving new requests.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::SeqCst)
    }

    /// Whether the engine ingests feedback and hot-swaps.
    pub fn is_online(&self) -> bool {
        self.shared.online.is_some()
    }

    /// Live online-loop counters; `None` for offline engines.
    pub fn online_status(&self) -> Option<OnlineStatus> {
        let online = self.shared.online.as_ref()?;
        let st = lock(&online.state);
        Some(OnlineStatus {
            feedback_count: st.feedback_count,
            buffer_len: st.buffer.len(),
            retrain_count: st.retrain_count,
            refresh_after: online.config.refresh_after,
        })
    }

    /// Feature width every request must supply (invariant across swaps).
    pub fn feature_dim(&self) -> usize {
        self.shared.feature_dim
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.obs.snapshot()
    }

    /// The engine's observability bundle: its metric registry (for
    /// Prometheus exposition), per-stage histograms (the wire layer
    /// records decode/encode through it) and the slow-request trace log.
    pub fn obs(&self) -> &ServeObs {
        &self.shared.obs
    }

    /// Ingests one observed solver outcome. When the record is the
    /// `refresh_after`-th since the last automatic trigger, the returned
    /// ack carries a [`PendingRefresh`] for the retrain it started.
    ///
    /// Never blocks on training: the fine-tune runs on the trainer
    /// thread, predictions keep flowing on the current generation, and
    /// the swap is a pointer exchange.
    ///
    /// # Errors
    ///
    /// * [`QrossError::BadRequest`] — offline engine, wrong feature
    ///   width, or invalid observation values.
    /// * [`QrossError::Serve`] — the trainer thread is gone.
    pub fn submit_feedback(&self, record: FeedbackRecord) -> Result<FeedbackAck, QrossError> {
        self.shared.submit_feedback(record)
    }

    /// Forces a retrain/hot-swap cycle now, regardless of the feedback
    /// counter — the operator's "refresh" button.
    ///
    /// # Errors
    ///
    /// * [`QrossError::BadRequest`] — the engine is not online.
    /// * [`QrossError::Serve`] — the trainer thread is gone.
    pub fn refresh(&self) -> Result<PendingRefresh, QrossError> {
        self.shared.refresh()
    }

    /// Enqueues one request (a feature vector at one or more `A` values)
    /// and returns a handle to wait on. This is the non-blocking entry
    /// point protocol front-ends use to keep many requests in flight —
    /// which is what gives workers batches to stack.
    ///
    /// # Errors
    ///
    /// * [`QrossError::BadRequest`] — wrong feature width, non-finite
    ///   features, or a non-finite/non-positive `A`.
    /// * [`QrossError::Overloaded`] — the queue is at capacity; the
    ///   request is rejected immediately (backpressure, not buffering).
    pub fn submit(
        &self,
        features: Vec<f64>,
        a_values: Vec<f64>,
    ) -> Result<PendingPrediction, QrossError> {
        self.shared
            .submit_opts(None, features, a_values, None, obs::Span::begin())
    }

    /// [`ServeEngine::submit`] with admission options: the requesting
    /// tenant (`None` = default tenant) and an optional completion hook,
    /// invoked after the result becomes receivable — event-loop
    /// front-ends use it to wake their poller instead of parking a thread
    /// per request.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`], plus [`QrossError::Overloaded`] when
    /// the tenant's own row quota is exhausted.
    pub fn submit_opts(
        &self,
        tenant: Option<&str>,
        features: Vec<f64>,
        a_values: Vec<f64>,
        notify: Option<CompletionNotify>,
    ) -> Result<PendingPrediction, QrossError> {
        self.shared
            .submit_opts(tenant, features, a_values, notify, obs::Span::begin())
    }

    /// [`ServeEngine::submit_opts`] with a caller-minted [`obs::Span`]:
    /// protocol front-ends mint the span at decode (recording the decode
    /// stage into it) and thread it through so the per-request trace
    /// covers the full wire-to-wire pipeline.
    pub fn submit_spanned(
        &self,
        tenant: Option<&str>,
        features: Vec<f64>,
        a_values: Vec<f64>,
        notify: Option<CompletionNotify>,
        span: obs::Span,
    ) -> Result<PendingPrediction, QrossError> {
        self.shared
            .submit_opts(tenant, features, a_values, notify, span)
    }

    /// A point-in-time metrics snapshot (the `metrics` protocol op).
    pub fn metrics(&self) -> EngineMetrics {
        self.shared.metrics()
    }

    /// Blocking single prediction — `submit` + `wait`.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`].
    pub fn predict(&self, features: &[f64], a: f64) -> Result<SurrogatePrediction, QrossError> {
        let mut out = self.submit(features.to_vec(), vec![a])?.wait()?;
        Ok(out.remove(0))
    }

    /// Blocking grid prediction — `submit` + `wait`.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`].
    pub fn predict_grid(
        &self,
        features: &[f64],
        a_values: &[f64],
    ) -> Result<Vec<SurrogatePrediction>, QrossError> {
        self.submit(features.to_vec(), a_values.to_vec())?.wait()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Dropping the trainer's sender lets it drain queued retrains
        // (completing any outstanding PendingRefresh waits) and exit.
        if let Some(online) = &self.shared.online {
            lock(&online.trainer_tx).take();
        }
        if let Some(handle) = self.trainer.take() {
            let _ = handle.join();
        }
    }
}

fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Scalers;
    use crate::surrogate::SurrogateState;
    use mathkit::stats::ZScore;
    use neural::layers::LayerSpec;
    use neural::network::MlpState;

    /// Deterministic rational-weight surrogate (no training, no libm in
    /// the weights): 2 features + ln A -> 3 inputs.
    fn tiny_surrogate() -> Surrogate {
        let val = |k: usize| (((k * 29 + 7) % 32) as f64 - 16.0) / 8.0;
        let dense = |input: usize, output: usize, salt: usize| LayerSpec::Dense {
            input,
            output,
            weights: (0..input * output).map(|k| val(k + salt)).collect(),
            bias: (0..output).map(|k| val(k + salt + 61)).collect(),
        };
        let net = |salt: usize, out: usize| MlpState {
            input_dim: 3,
            layers: vec![dense(3, 6, salt), LayerSpec::Relu, dense(6, out, salt + 17)],
        };
        let z = |m: f64, s: f64| ZScore { mean: m, std: s };
        Surrogate::from_state(SurrogateState {
            pf_net: net(0, 1),
            e_net: net(131, 2),
            scalers: Scalers {
                features: vec![z(0.0, 1.0), z(0.5, 2.0)],
                log_a: z(0.0, 1.0),
                e_avg: z(4.0, 2.0),
                e_std: z(1.0, 0.5),
            },
        })
        .expect("consistent state")
    }

    fn engine(config: ServeConfig) -> ServeEngine {
        ServeEngine::new(ServeModel::Surrogate(Arc::new(tiny_surrogate())), config)
    }

    #[test]
    fn serves_bit_identical_to_direct_predict() {
        let sur = tiny_surrogate();
        let eng = engine(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        for k in 0..20 {
            let f = [k as f64 / 10.0, -(k as f64) / 7.0];
            let a = 0.25 + k as f64 * 0.3;
            let served = eng.predict(&f, a).expect("serve");
            let direct = sur.predict(&f, a);
            assert_eq!(served.pf.to_bits(), direct.pf.to_bits());
            assert_eq!(served.e_avg.to_bits(), direct.e_avg.to_bits());
            assert_eq!(served.e_std.to_bits(), direct.e_std.to_bits());
        }
    }

    #[test]
    fn grid_requests_match_predict_grid() {
        let sur = tiny_surrogate();
        let eng = engine(ServeConfig::default());
        let f = [0.3, 1.1];
        let grid = [0.1, 0.5, 1.0, 2.0, 8.0];
        let served = eng.predict_grid(&f, &grid).expect("serve");
        let direct = sur.predict_grid(&f, &grid);
        assert_eq!(served, direct);
        assert!(eng.predict_grid(&f, &[]).expect("empty").is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        let eng = engine(ServeConfig::default());
        // wrong width
        assert!(matches!(
            eng.predict(&[1.0], 1.0),
            Err(QrossError::BadRequest { .. })
        ));
        // non-finite feature
        assert!(matches!(
            eng.predict(&[f64::NAN, 0.0], 1.0),
            Err(QrossError::BadRequest { .. })
        ));
        // non-positive A
        assert!(matches!(
            eng.predict(&[0.0, 0.0], 0.0),
            Err(QrossError::BadRequest { .. })
        ));
        // non-finite A
        assert!(matches!(
            eng.predict(&[0.0, 0.0], f64::INFINITY),
            Err(QrossError::BadRequest { .. })
        ));
        // sane requests still served afterwards
        assert!(eng.predict(&[0.0, 0.0], 1.0).is_ok());
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let eng = engine(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let f = [0.7, -0.2];
        let first = eng.predict(&f, 1.5).expect("first");
        let before = eng.stats();
        let second = eng.predict(&f, 1.5).expect("second");
        let after = eng.stats();
        assert_eq!(first, second);
        assert!(
            after.cache_hits > before.cache_hits,
            "repeat query did not hit the cache: {after:?}"
        );
    }

    #[test]
    fn cache_disabled_still_serves() {
        let eng = engine(ServeConfig {
            cache_capacity: 0,
            ..Default::default()
        });
        let f = [0.1, 0.2];
        let a = eng.predict(&f, 1.0).expect("one");
        let b = eng.predict(&f, 1.0).expect("two");
        assert_eq!(a, b);
        assert_eq!(eng.stats().cache_hits, 0);
    }

    #[test]
    fn backpressure_rejects_when_queue_full() {
        // No workers running: build the shared state directly so the
        // queue can only fill.
        let model = ServeModel::Surrogate(Arc::new(tiny_surrogate()));
        let shared = Arc::new(Shared {
            feature_dim: model.feature_dim(),
            slot: Mutex::new(Arc::new(VersionedModel {
                generation: 0,
                model,
            })),
            generation: AtomicU64::new(0),
            config: ServeConfig {
                workers: 1,
                max_batch_rows: 8,
                queue_capacity: 3,
                cache_capacity: 0,
            },
            queue: Mutex::new(Queue::new(&TenantPolicy::default())),
            policy: TenantPolicy::default(),
            started: Instant::now(),
            work_ready: Condvar::new(),
            cache: Mutex::new(LruCache::new(0)),
            obs: ServeObs::new(),
            online: None,
        });
        let submit = |a_values: Vec<f64>| {
            shared.submit_opts(None, vec![0.0, 0.0], a_values, None, obs::Span::begin())
        };
        assert!(submit(vec![1.0, 2.0]).is_ok());
        assert!(submit(vec![1.0]).is_ok());
        // 3 rows pending == capacity: the next row must bounce.
        let err = submit(vec![1.0]).unwrap_err();
        assert!(matches!(err, QrossError::Overloaded { capacity: 3 }));
        // A single request larger than the queue could never be admitted:
        // that is a client error, not transient load (retrying an
        // Overloaded would loop forever).
        let err = submit(vec![1.0, 2.0, 3.0, 4.0]).unwrap_err();
        assert!(matches!(err, QrossError::BadRequest { .. }));
        // Rejections never count as accepted work.
        let stats = shared.obs.snapshot();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.rejected_capacity, 1);
        assert_eq!(stats.rejected_quota, 0);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rows, 3);
        // Rejection is not sticky: drain one batch and submit again.
        {
            let mut q = lock(&shared.queue);
            let drained = q.drain_batch(2);
            assert_eq!(drained.len(), 1);
            assert_eq!(drained[0].pending_rows(), 2);
        }
        assert!(submit(vec![1.0]).is_ok());
    }

    #[test]
    fn concurrent_hammering_is_bit_identical() {
        let sur = tiny_surrogate();
        let eng = engine(ServeConfig {
            workers: 4,
            max_batch_rows: 16,
            ..Default::default()
        });
        let eng = &eng;
        let sur = &sur;
        std::thread::scope(|scope| {
            for t in 0..8usize {
                scope.spawn(move || {
                    for k in 0..120usize {
                        // Overlapping key space across threads exercises
                        // both fresh computes and cache hits.
                        let i = (t * 31 + k) % 40;
                        let f = [i as f64 / 13.0, (i as f64) / 5.0 - 1.0];
                        let a = 0.2 + (i % 7) as f64;
                        let served = eng.predict(&f, a).expect("serve");
                        let direct = sur.predict(&f, a);
                        assert_eq!(served.pf.to_bits(), direct.pf.to_bits());
                        assert_eq!(served.e_avg.to_bits(), direct.e_avg.to_bits());
                        assert_eq!(served.e_std.to_bits(), direct.e_std.to_bits());
                    }
                });
            }
        });
        let stats = eng.stats();
        assert_eq!(stats.requests, 8 * 120);
        assert!(stats.cache_hits > 0, "no cache hits under repetition");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        let p = |x: f64| SurrogatePrediction {
            pf: x,
            e_avg: x,
            e_std: x,
        };
        cache.insert(cache_key(0, &[1.0], 1.0), p(1.0));
        cache.insert(cache_key(0, &[2.0], 1.0), p(2.0));
        // Touch key 1 so key 2 is the LRU victim.
        assert_eq!(cache.get(&cache_key(0, &[1.0], 1.0)), Some(p(1.0)));
        cache.insert(cache_key(0, &[3.0], 1.0), p(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&cache_key(0, &[2.0], 1.0)), None);
        assert_eq!(cache.get(&cache_key(0, &[1.0], 1.0)), Some(p(1.0)));
        assert_eq!(cache.get(&cache_key(0, &[3.0], 1.0)), Some(p(3.0)));
        // Re-inserting an existing key refreshes, never grows.
        cache.insert(cache_key(0, &[3.0], 1.0), p(3.5));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&cache_key(0, &[3.0], 1.0)), Some(p(3.5)));
    }

    #[test]
    fn lru_clear_empties_and_stays_usable() {
        let mut cache = LruCache::new(2);
        let p = |x: f64| SurrogatePrediction {
            pf: x,
            e_avg: x,
            e_std: x,
        };
        cache.insert(cache_key(0, &[1.0], 1.0), p(1.0));
        cache.insert(cache_key(0, &[2.0], 1.0), p(2.0));
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(&cache_key(0, &[1.0], 1.0)), None);
        // Insertion after a clear works and evicts normally.
        cache.insert(cache_key(1, &[1.0], 1.0), p(3.0));
        cache.insert(cache_key(1, &[2.0], 1.0), p(4.0));
        cache.insert(cache_key(1, &[3.0], 1.0), p(5.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&cache_key(1, &[3.0], 1.0)), Some(p(5.0)));
    }

    #[test]
    fn retrain_backpressure_is_bounded_and_recoverable() {
        // A refresh storm without waits must never queue snapshots
        // beyond `max_pending_retrains`: excess forced refreshes bounce
        // with typed backpressure, nothing deadlocks, and once the
        // trainer drains, refreshes work again.
        let dir = temp_dir("retrain_bp");
        let eng = ServeEngine::with_online(
            ServeModel::Surrogate(Arc::new(tiny_surrogate())),
            ServeConfig::default(),
            OnlineConfig {
                refresh_after: 0,
                max_pending_retrains: 1,
                epochs: 40, // slow enough for the storm to pile up
                ..online_config(&dir)
            },
            None,
        )
        .expect("online engine");
        for k in 0..6 {
            eng.submit_feedback(feedback(k)).expect("feedback");
        }
        let mut handles = Vec::new();
        let mut bounced = 0usize;
        for _ in 0..12 {
            match eng.refresh() {
                Ok(pending) => handles.push(pending),
                Err(QrossError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 1);
                    bounced += 1;
                }
                Err(e) => panic!("unexpected refresh error: {e}"),
            }
        }
        for pending in handles {
            pending.wait().expect("queued refresh completes");
        }
        // The storm outran a 1-deep trainer queue at least once (each
        // accepted refresh fine-tunes for 40 epochs before the next can
        // start), and the engine recovered: a fresh awaited refresh
        // lands the next generation.
        assert!(bounced > 0, "12 instant refreshes never hit the bound");
        let before = eng.generation();
        let gen = eng
            .refresh()
            .expect("post-storm refresh")
            .wait()
            .expect("swap");
        assert_eq!(gen, before + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saturated_trigger_coalesces_without_losing_feedback() {
        // refresh_after = 1 with a 1-deep trainer queue: most triggers
        // coalesce, but every record still lands in the buffer and the
        // loop keeps making progress (some swaps, no deadlock, no error).
        let dir = temp_dir("coalesce");
        let eng = ServeEngine::with_online(
            ServeModel::Surrogate(Arc::new(tiny_surrogate())),
            ServeConfig::default(),
            OnlineConfig {
                refresh_after: 1,
                max_pending_retrains: 1,
                epochs: 10,
                ..online_config(&dir)
            },
            None,
        )
        .expect("online engine");
        let mut last = None;
        for k in 0..24 {
            // Drop the refresh handles: fire-and-forget feedback, the
            // mode that used to queue snapshots without bound.
            let ack = eng.submit_feedback(feedback(k)).expect("feedback");
            last = ack.refresh.or(last);
        }
        let status = eng.online_status().expect("online");
        assert_eq!(status.feedback_count, 24);
        assert!(status.buffer_len > 0);
        if let Some(pending) = last {
            let _ = pending.wait();
        }
        drop(eng); // drains the (bounded) queue and joins cleanly
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_keys_separate_generations() {
        // The same (features, A) under a different generation is a
        // different key — the property that makes stale hits across
        // hot-swaps impossible.
        assert_ne!(
            cache_key(0, &[1.0, 2.0], 0.5),
            cache_key(1, &[1.0, 2.0], 0.5)
        );
        let mut cache = LruCache::new(4);
        let p = |x: f64| SurrogatePrediction {
            pf: x,
            e_avg: x,
            e_std: x,
        };
        cache.insert(cache_key(0, &[1.0], 1.0), p(0.25));
        assert_eq!(cache.get(&cache_key(1, &[1.0], 1.0)), None);
    }

    fn feedback(k: usize) -> FeedbackRecord {
        FeedbackRecord {
            features: vec![k as f64 / 5.0, 0.25 - k as f64 / 9.0],
            a: 0.5 + k as f64 * 0.75,
            observed_pf: ((k * 7) % 11) as f64 / 10.0,
            observed_e_avg: 3.0 + (k % 5) as f64,
            observed_e_std: 0.5 + (k % 3) as f64 * 0.25,
            instance_tag: format!("fb{k}"),
            seed: k as u64,
        }
    }

    fn online_config(dir: &std::path::Path) -> OnlineConfig {
        OnlineConfig {
            refresh_after: 4,
            buffer_capacity: 16,
            recent_capacity: 8,
            feedback_weight: 2,
            epochs: 3,
            learning_rate: 1e-3,
            batch_size: 8,
            max_pending_retrains: 2,
            seed: 13,
            checkpoint_dir: Some(dir.to_path_buf()),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qross_serve_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn offline_engine_rejects_feedback_and_refresh() {
        let eng = engine(ServeConfig::default());
        assert!(!eng.is_online());
        assert!(eng.online_status().is_none());
        assert!(matches!(
            eng.submit_feedback(feedback(0)),
            Err(QrossError::BadRequest { .. })
        ));
        assert!(matches!(eng.refresh(), Err(QrossError::BadRequest { .. })));
        assert_eq!(eng.generation(), 0);
    }

    #[test]
    fn feedback_triggers_deterministic_swap() {
        let dir = temp_dir("swap");
        let run = |sub: &str| -> (Vec<u64>, SurrogatePrediction) {
            let eng = ServeEngine::with_online(
                ServeModel::Surrogate(Arc::new(tiny_surrogate())),
                ServeConfig {
                    workers: 2,
                    ..Default::default()
                },
                online_config(&dir.join(sub)),
                None,
            )
            .expect("online engine");
            let mut generations = Vec::new();
            for k in 0..8 {
                let ack = eng.submit_feedback(feedback(k)).expect("feedback");
                assert_eq!(ack.feedback_count, k as u64 + 1);
                if let Some(pending) = ack.refresh {
                    generations.push(pending.wait().expect("swap"));
                }
            }
            let post = eng.predict(&[0.3, -0.1], 1.25).expect("predict");
            (generations, post)
        };
        let (gens_a, post_a) = run("a");
        let (gens_b, post_b) = run("b");
        // refresh_after = 4 over 8 records: exactly two swaps, at gens 1
        // and 2 — and the whole loop is bit-reproducible.
        assert_eq!(gens_a, vec![1, 2]);
        assert_eq!(gens_a, gens_b);
        assert_eq!(post_a.pf.to_bits(), post_b.pf.to_bits());
        assert_eq!(post_a.e_avg.to_bits(), post_b.e_avg.to_bits());
        assert_eq!(post_a.e_std.to_bits(), post_b.e_std.to_bits());
        // Both runs wrote bit-identical checkpoints.
        for g in 1..=2 {
            let name = format!("ckpt-g{g:06}.qross");
            let a = std::fs::read(dir.join("a").join(&name)).expect("checkpoint a");
            let b = std::fs::read(dir.join("b").join(&name)).expect("checkpoint b");
            assert_eq!(a, b, "checkpoint {name} differs between runs");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swap_changes_answers_and_cache_does_not_bleed() {
        let dir = temp_dir("bleed");
        let eng = ServeEngine::with_online(
            ServeModel::Surrogate(Arc::new(tiny_surrogate())),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
            OnlineConfig {
                refresh_after: 0, // manual refreshes only
                ..online_config(&dir)
            },
            None,
        )
        .expect("online engine");
        let f = [0.4, 0.9];
        // Warm the cache on generation 0, twice (second hit is cached).
        let before = eng.predict(&f, 2.0).expect("gen0");
        assert_eq!(eng.predict(&f, 2.0).expect("gen0 again"), before);
        for k in 0..4 {
            eng.submit_feedback(feedback(k)).expect("feedback");
        }
        let gen = eng.refresh().expect("refresh").wait().expect("swap");
        assert_eq!(gen, 1);
        assert_eq!(eng.generation(), 1);
        // Post-swap answers come from the new generation, not the warm
        // cache entry, and match the checkpoint exactly.
        let after = eng.predict(&f, 2.0).expect("gen1");
        // pf can saturate at the clamp; the linear energy head always
        // moves when the fine-tune moved weights.
        assert_ne!(
            before.e_avg.to_bits(),
            after.e_avg.to_bits(),
            "fine-tune moved no weights — the bleed check is vacuous"
        );
        let ckpt = SurrogateCheckpoint::load(dir.join("ckpt-g000001.qross")).expect("checkpoint");
        let lineage = ckpt.lineage.expect("lineage written");
        assert_eq!(lineage.generation, 1);
        assert_eq!(lineage.parent_generation, 0);
        assert_eq!(lineage.feedback_count, 4);
        let reloaded = Surrogate::from_state(ckpt.state).expect("state");
        let direct = reloaded.predict(&f, 2.0);
        assert_eq!(after.pf.to_bits(), direct.pf.to_bits());
        assert_eq!(after.e_avg.to_bits(), direct.e_avg.to_bits());
        assert_eq!(after.e_std.to_bits(), direct.e_std.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_with_nothing_to_train_on_keeps_old_generation() {
        let dir = temp_dir("empty");
        let eng = ServeEngine::with_online(
            ServeModel::Surrogate(Arc::new(tiny_surrogate())),
            ServeConfig::default(),
            OnlineConfig {
                refresh_after: 0,
                ..online_config(&dir)
            },
            None,
        )
        .expect("online engine");
        let err = eng.refresh().expect("queued").wait().unwrap_err();
        assert!(matches!(err, QrossError::BadDataset { .. }), "{err}");
        assert_eq!(eng.generation(), 0);
        // …and the engine still serves.
        assert!(eng.predict(&[0.0, 0.0], 1.0).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_feedback_is_rejected_with_typed_errors() {
        let dir = temp_dir("invalid");
        let eng = ServeEngine::with_online(
            ServeModel::Surrogate(Arc::new(tiny_surrogate())),
            ServeConfig::default(),
            online_config(&dir),
            None,
        )
        .expect("online engine");
        let mut wrong_width = feedback(0);
        wrong_width.features.push(0.0);
        let mut bad_pf = feedback(0);
        bad_pf.observed_pf = 2.0;
        for bad in [wrong_width, bad_pf] {
            assert!(matches!(
                eng.submit_feedback(bad),
                Err(QrossError::BadRequest { .. })
            ));
        }
        // Rejected feedback never counts.
        assert_eq!(eng.stats().feedback, 0);
        assert_eq!(eng.online_status().expect("online").feedback_count, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A workerless engine whose queue can only fill — lets tests drive
    /// `drain_batch` by hand and observe scheduling order deterministically.
    fn workerless(policy: TenantPolicy, queue_capacity: usize) -> Arc<Shared> {
        let model = ServeModel::Surrogate(Arc::new(tiny_surrogate()));
        Arc::new(Shared {
            feature_dim: model.feature_dim(),
            slot: Mutex::new(Arc::new(VersionedModel {
                generation: 0,
                model,
            })),
            generation: AtomicU64::new(0),
            config: ServeConfig {
                workers: 1,
                max_batch_rows: 8,
                queue_capacity,
                cache_capacity: 0,
            },
            queue: Mutex::new(Queue::new(&policy)),
            policy,
            started: Instant::now(),
            work_ready: Condvar::new(),
            cache: Mutex::new(LruCache::new(0)),
            obs: ServeObs::new(),
            online: None,
        })
    }

    #[test]
    fn tenant_quota_rejects_only_the_offender() {
        let policy = TenantPolicy {
            default_class: TenantClass::default(),
            classes: vec![(
                "capped".to_string(),
                TenantClass {
                    weight: 1,
                    quota_rows: 2,
                },
            )],
        };
        let shared = workerless(policy, 1024);
        let submit = |tenant: Option<&str>, rows: usize| {
            shared.submit_opts(
                tenant,
                vec![0.0, 0.0],
                vec![1.0; rows],
                None,
                obs::Span::begin(),
            )
        };
        assert!(submit(Some("capped"), 2).is_ok());
        // The capped tenant's quota is exhausted; its next row bounces…
        let err = submit(Some("capped"), 1).unwrap_err();
        assert!(matches!(err, QrossError::Overloaded { capacity: 2 }));
        // …while other tenants (and the default) are untouched.
        assert!(submit(Some("other"), 4).is_ok());
        assert!(submit(None, 4).is_ok());
        let metrics = shared.metrics();
        let capped = metrics
            .tenants
            .iter()
            .find(|t| t.tenant == "capped")
            .expect("capped tenant visible");
        assert_eq!(capped.rejected, 1);
        assert_eq!(capped.rejected_quota, 1);
        assert_eq!(capped.rejected_capacity, 0);
        assert_eq!(capped.requests, 1);
        assert_eq!(capped.pending_rows, 2);
        assert_eq!(metrics.rejected, 1);
        assert_eq!(metrics.rejected_quota, 1);
        assert_eq!(metrics.rejected_capacity, 0);
        assert_eq!(metrics.queue_depth, 10);
    }

    #[test]
    fn unknown_tenants_fold_into_default_past_the_registry_cap() {
        let shared = workerless(TenantPolicy::default(), usize::MAX);
        {
            let mut q = lock(&shared.queue);
            for k in 0..MAX_TENANTS + 10 {
                let _ = q.tenant_index(Some(&format!("t{k}")), &shared.policy);
            }
            assert_eq!(q.tenants.len(), MAX_TENANTS);
            // Registry is full: a fresh name lands on the default tenant.
            assert_eq!(q.tenant_index(Some("fresh"), &shared.policy), 0);
            // Known names still resolve to their own slot.
            assert_ne!(q.tenant_index(Some("t5"), &shared.policy), 0);
        }
    }

    #[test]
    fn dwrr_serves_tenants_proportionally_to_weight() {
        let policy = TenantPolicy {
            default_class: TenantClass::default(),
            classes: vec![
                (
                    "heavy".to_string(),
                    TenantClass {
                        weight: 3,
                        quota_rows: 0,
                    },
                ),
                (
                    "light".to_string(),
                    TenantClass {
                        weight: 1,
                        quota_rows: 0,
                    },
                ),
            ],
        };
        let shared = workerless(policy, usize::MAX);
        // Both tenants backlogged with single-row jobs.
        for _ in 0..200 {
            shared
                .submit_opts(
                    Some("heavy"),
                    vec![0.0, 0.0],
                    vec![1.0],
                    None,
                    obs::Span::begin(),
                )
                .expect("heavy submit");
            shared
                .submit_opts(
                    Some("light"),
                    vec![0.0, 0.0],
                    vec![1.0],
                    None,
                    obs::Span::begin(),
                )
                .expect("light submit");
        }
        // Drain a contended stretch; service per tenant is measured as
        // the drop in its pending_rows (both stay backlogged throughout).
        let (heavy_before, light_before) = {
            let q = lock(&shared.queue);
            let by = |name: &str| {
                q.tenants
                    .iter()
                    .find(|t| t.name == name)
                    .expect("registered")
                    .pending_rows
            };
            (by("heavy"), by("light"))
        };
        let mut drained = 0usize;
        while drained < 120 {
            let batch = {
                let mut q = lock(&shared.queue);
                q.drain_batch(shared.config.max_batch_rows)
            };
            assert!(!batch.is_empty(), "backlogged queue yielded nothing");
            drained += batch.iter().map(Job::pending_rows).sum::<usize>();
        }
        let (heavy_served, light_served) = {
            let q = lock(&shared.queue);
            let by = |name: &str| {
                q.tenants
                    .iter()
                    .find(|t| t.name == name)
                    .expect("registered")
                    .pending_rows
            };
            (heavy_before - by("heavy"), light_before - by("light"))
        };
        // Weight 3 vs 1 should converge near a 3:1 service split while
        // both stay backlogged; allow slack for batch-boundary rounding.
        assert!(
            light_served > 0,
            "light tenant starved: heavy={heavy_served} light={light_served}"
        );
        let ratio = heavy_served as f64 / light_served as f64;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "service ratio {ratio:.2} (heavy={heavy_served}, light={light_served}) \
             not near the 3:1 weights"
        );
    }

    #[test]
    fn dwrr_is_plain_fifo_for_a_single_tenant() {
        let shared = workerless(TenantPolicy::default(), usize::MAX);
        for k in 0..5 {
            shared
                .submit_opts(
                    None,
                    vec![k as f64, 0.0],
                    vec![1.0],
                    None,
                    obs::Span::begin(),
                )
                .expect("submit");
        }
        let batch = {
            let mut q = lock(&shared.queue);
            q.drain_batch(3)
        };
        // FIFO order, batch bounded at max rows.
        let firsts: Vec<f64> = batch.iter().map(|j| j.features[0]).collect();
        assert_eq!(firsts, vec![0.0, 1.0, 2.0]);
        let batch = {
            let mut q = lock(&shared.queue);
            q.drain_batch(3)
        };
        let firsts: Vec<f64> = batch.iter().map(|j| j.features[0]).collect();
        assert_eq!(firsts, vec![3.0, 4.0]);
        assert!(lock(&shared.queue).is_idle());
    }

    #[test]
    fn dwrr_work_conservation_serves_oversized_front_job() {
        // A job bigger than any deficit top-up must still be served when
        // the batch is otherwise empty — fairness never deadlocks work.
        let shared = workerless(TenantPolicy::default(), usize::MAX);
        shared
            .submit_opts(
                None,
                vec![0.0, 0.0],
                vec![1.0; 64],
                None,
                obs::Span::begin(),
            )
            .expect("submit");
        let batch = {
            let mut q = lock(&shared.queue);
            q.drain_batch(8)
        };
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].pending_rows(), 64);
    }

    #[test]
    fn latency_histogram_quantiles_are_log_bucket_exact() {
        // The engine's latency quantiles are served by `obs::Histogram`
        // with the engine's historical rank rule; pin the bucket math in
        // the µs units `EngineMetrics` reports.
        let h = obs::Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), None);
        if !obs::ENABLED {
            return;
        }
        // 100 samples at ~1µs, 1 sample at ~1ms: p50 lands in the 1µs
        // bucket, p999 in the 1ms bucket. Buckets are powers of two, so
        // use exact powers to pin bucket indices.
        for _ in 0..100 {
            h.record(1 << 10); // bucket 10: [1024, 2048) ns
        }
        h.record(1 << 20); // bucket 20: [1.05, 2.10) ms
        let us = |q: f64| h.snapshot().quantile(q).expect("recorded") / 1_000.0;
        let p50 = us(0.50);
        assert!((1.0..=2.1).contains(&p50), "p50 {p50}µs outside bucket 10");
        let p999 = us(0.999);
        assert!(
            (1000.0..=2200.0).contains(&p999),
            "p999 {p999}µs outside bucket 20"
        );
        // Zero nanoseconds must not panic (bucket 0 via the |1 guard).
        h.record(0);
    }

    #[test]
    fn metrics_reports_live_engine_counters() {
        let eng = engine(ServeConfig {
            workers: 2,
            max_batch_rows: 8,
            ..Default::default()
        });
        for k in 0..10 {
            let f = [k as f64 / 7.0, 0.25];
            eng.predict(&f, 1.5).expect("predict");
            eng.predict(&f, 1.5).expect("cached predict");
        }
        let m = eng.metrics();
        assert_eq!(m.generation, 0);
        assert!(m.qps > 0.0);
        assert!(m.uptime_secs > 0.0);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.rejected, 0);
        // Second predict of each pair is a cache hit: rate is 1/2.
        assert!(
            (m.cache_hit_rate - 0.5).abs() < 1e-9,
            "{}",
            m.cache_hit_rate
        );
        assert!(m.batch_occupancy >= 1.0);
        let p50 = m.latency_p50_us.expect("latencies recorded");
        let p99 = m.latency_p99_us.expect("latencies recorded");
        assert!(p50 > 0.0 && p99 >= p50);
        // All traffic untagged: exactly the default tenant, all rows.
        assert_eq!(m.tenants.len(), 1);
        assert_eq!(m.tenants[0].tenant, DEFAULT_TENANT);
        assert_eq!(m.tenants[0].requests, 20);
        assert_eq!(m.tenants[0].rows, 20);
    }

    #[test]
    fn queued_work_is_drained_on_drop() {
        // Submit a burst, drop the engine immediately: every pending
        // response must still arrive (graceful shutdown, no lost jobs).
        let eng = engine(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let pending: Vec<PendingPrediction> = (0..32)
            .map(|k| {
                eng.submit(vec![k as f64, 0.0], vec![1.0, 2.0])
                    .expect("submit")
            })
            .collect();
        drop(eng);
        for p in pending {
            let out = p.wait().expect("answered during shutdown");
            assert_eq!(out.len(), 2);
        }
    }
}
