//! Shared machinery of the `qross-train` / `qross-predict` binaries —
//! the train-once / serve-many loop over registry-generated problem
//! corpora.
//!
//! Family dispatch goes through [`problems::registry`]: the CLI resolves
//! `--problem` with [`problems::lookup_family`] (case-insensitive, and a
//! typo gets an error naming every registered family), corpora come from
//! [`problems::ProblemFamily::corpus`], and features from
//! [`problems::FamilyProblem::features`]. Adding a family to the
//! registry makes it trainable and servable here with no further edits.
//! TSP remains the one special case: it trains through the staged
//! [`qross::pipeline::Pipeline`] and persists a self-contained bundle,
//! because the paper's primary workload carries per-instance strategy
//! state the generic path does not.
//!
//! The contract the pair demonstrates (and CI enforces byte-for-byte):
//! a model trained and saved by `qross-train` in one process, reloaded by
//! `qross-predict` in a *fresh* process, reproduces the training
//! process's surrogate predictions and offline strategy proposals
//! **bit-identically**. To make that diffable, the [`PredictionManifest`]
//! stores every `f64` as its exact IEEE-754 bit pattern (`u64`): two
//! manifests are equal iff every prediction matches to the last bit.

use serde::{Deserialize, Serialize};

use problems::{known_families, lookup_family, CorpusTier, ProblemFamily};
use qross::pipeline::{train_on_problems, Pipeline, TrainedQross, A_DOMAIN};
use qross::strategy::ProposalStrategy;
use qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross_store::Artifact;
use solvers::Solver;

use crate::experiments::{pipeline_config, Solvers};
use crate::Scale;

/// Maps the experiment scale onto the registry's corpus tier.
pub fn corpus_tier(scale: Scale) -> CorpusTier {
    match scale {
        Scale::Micro => CorpusTier::Micro,
        Scale::Quick => CorpusTier::Quick,
        Scale::Paper => CorpusTier::Paper,
    }
}

/// Trains the generic (non-TSP) surrogate for a registered family on its
/// penalty-sweep corpus.
///
/// # Errors
///
/// Propagates [`qross::QrossError`] from collection or training.
///
/// # Panics
///
/// Panics if called with the `tsp` family — the TSP path goes through
/// the staged [`qross::pipeline::Pipeline`].
pub fn train_generic<S: Solver + ?Sized>(
    family: &dyn ProblemFamily,
    scale: Scale,
    seed: u64,
    solver: &S,
) -> Result<(Surrogate, TrainReport), qross::QrossError> {
    assert!(
        family.name() != "tsp",
        "TSP trains through the staged pipeline"
    );
    let cfg = pipeline_config(scale, seed);
    let corpus = family.corpus(corpus_tier(scale), seed);
    train_on_problems(
        &corpus,
        |p| p.features(),
        family.feature_dim(),
        &cfg.collect,
        &cfg.surrogate,
        solver,
        seed,
    )
}

/// The log-spaced relaxation-parameter grid every manifest evaluates.
pub fn manifest_a_grid() -> Vec<f64> {
    let points = 9;
    let (lo, hi) = A_DOMAIN;
    (0..points)
        .map(|k| (lo.ln() + (hi.ln() - lo.ln()) * k as f64 / (points - 1) as f64).exp())
        .collect()
}

/// One instance's predictions, bit-patterned for exact diffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstancePredictions {
    /// instance identifier
    pub instance: String,
    /// `Pf` over the manifest grid, as `f64::to_bits`
    pub pf_bits: Vec<u64>,
    /// `Eavg` over the grid, as bits
    pub e_avg_bits: Vec<u64>,
    /// `Estd` over the grid, as bits
    pub e_std_bits: Vec<u64>,
    /// planned offline strategy proposals (MFS, PBS₈₀, PBS₂₀) as bits —
    /// empty for problem families served without the composed strategy
    pub proposal_bits: Vec<u64>,
}

/// The diffable serve-side output: every prediction the model makes on
/// its evaluation set, as exact bit patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionManifest {
    /// problem family (a registry name)
    pub problem: String,
    /// root seed the corpus and model derive from
    pub seed: u64,
    /// relaxation-parameter grid, as bits
    pub a_grid_bits: Vec<u64>,
    /// per-instance predictions
    pub entries: Vec<InstancePredictions>,
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Builds the manifest for a TSP bundle: surrogate grid predictions plus
/// the composed strategy's planned offline proposals on every held-out
/// test instance.
///
/// The strategy seed and batch size come from the bundle's own stored
/// [`qross::pipeline::PipelineConfig`], so the serve side needs *only*
/// the bundle — no command-line flags have to match the training run
/// for the manifests to agree.
pub fn tsp_manifest(trained: &TrainedQross) -> PredictionManifest {
    let seed = trained.config.seed;
    let batch = trained.config.collect.batch;
    let grid = manifest_a_grid();
    let entries = trained
        .test_encodings
        .iter()
        .map(|enc| {
            let features = trained.features_for(enc);
            let preds = trained.surrogate.predict_grid(&features, &grid);
            let strategy = trained.strategy_for(enc, batch, mathkit::rng::derive_seed(seed, 777));
            InstancePredictions {
                instance: enc.fitness_instance().name().to_string(),
                pf_bits: bits(&preds.iter().map(|p| p.pf).collect::<Vec<_>>()),
                e_avg_bits: bits(&preds.iter().map(|p| p.e_avg).collect::<Vec<_>>()),
                e_std_bits: bits(&preds.iter().map(|p| p.e_std).collect::<Vec<_>>()),
                proposal_bits: bits(strategy.planned_offline()),
            }
        })
        .collect();
    PredictionManifest {
        problem: "tsp".to_string(),
        seed,
        a_grid_bits: bits(&grid),
        entries,
    }
}

/// Builds the manifest for a generic (non-TSP) surrogate: grid
/// predictions over the family's regenerated corpus.
pub fn generic_manifest(
    family: &dyn ProblemFamily,
    surrogate: &Surrogate,
    scale: Scale,
    seed: u64,
) -> PredictionManifest {
    let grid = manifest_a_grid();
    let entries = family
        .corpus(corpus_tier(scale), seed)
        .iter()
        .map(|p| {
            let preds = surrogate.predict_grid(&p.features(), &grid);
            InstancePredictions {
                instance: p.name().to_string(),
                pf_bits: bits(&preds.iter().map(|p| p.pf).collect::<Vec<_>>()),
                e_avg_bits: bits(&preds.iter().map(|p| p.e_avg).collect::<Vec<_>>()),
                e_std_bits: bits(&preds.iter().map(|p| p.e_std).collect::<Vec<_>>()),
                proposal_bits: Vec::new(),
            }
        })
        .collect();
    PredictionManifest {
        problem: family.name().to_string(),
        seed,
        a_grid_bits: bits(&grid),
        entries,
    }
}

/// Parsed command line shared by `qross-train` and `qross-predict`.
#[derive(Debug, Clone)]
pub struct ServeCli {
    /// problem family to train/serve (resolved through the registry)
    pub problem: &'static dyn ProblemFamily,
    /// corpus scale (the generic serve side regenerates the corpus from it)
    pub scale: Scale,
    /// root seed
    pub seed: u64,
    /// model path (empty = binary-specific default)
    pub model: String,
    /// manifest path (empty = binary-specific default)
    pub manifest: String,
    /// write the model through the JSON fallback instead of the binary
    /// container (`--format json`, `qross-train` only)
    pub json_model: bool,
}

/// Prints `usage` (prefixed by `message` when non-empty) and exits —
/// code 0 for an explicit `--help`, 2 for a malformed command line.
pub fn usage_exit(usage: &str, message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: {usage}");
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

/// Parses the serve-side flags shared by both binaries. Every flag
/// requires a value — a trailing `--model` with nothing after it is an
/// error, not a silent fall-through to the default path. `with_format`
/// additionally accepts `--format binary|json` (the train side).
pub fn parse_serve_cli(usage: &str, with_format: bool) -> ServeCli {
    let mut cli = ServeCli {
        problem: lookup_family("tsp").expect("tsp is registered"),
        scale: Scale::Quick,
        seed: 2021,
        model: String::new(),
        manifest: String::new(),
        json_model: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--help" | "-h" => usage_exit(usage, ""),
            "--problem" | "--scale" | "--seed" | "--model" | "--manifest" => {}
            "--format" if with_format => {}
            other => usage_exit(usage, &format!("unknown argument `{other}`")),
        }
        i += 1;
        // A following `--flag` token is not a value — reject it so
        // `--model --seed` errors instead of writing a file named
        // `./--seed`.
        let Some(value) = argv
            .get(i)
            .filter(|v| !v.is_empty() && !v.starts_with("--"))
        else {
            usage_exit(usage, &format!("flag `{flag}` needs a value"));
        };
        match flag.as_str() {
            "--problem" => match lookup_family(value) {
                Ok(f) => cli.problem = f,
                // The registry error already names every known family.
                Err(e) => usage_exit(usage, &e.to_string()),
            },
            "--scale" => match Scale::parse(value) {
                Some(s) => cli.scale = s,
                None => usage_exit(usage, &format!("bad --scale value `{value}`")),
            },
            "--seed" => match value.parse::<u64>() {
                Ok(s) => cli.seed = s,
                Err(_) => usage_exit(usage, &format!("bad --seed value `{value}`")),
            },
            "--model" => cli.model = value.clone(),
            "--manifest" => cli.manifest = value.clone(),
            "--format" => match value.as_str() {
                "binary" => cli.json_model = false,
                "json" => cli.json_model = true,
                other => usage_exit(usage, &format!("bad --format value `{other}`")),
            },
            _ => unreachable!("flag already screened"),
        }
        i += 1;
    }
    cli
}

/// `qross-train`'s usage string, with the family list pulled from the
/// registry so adding a family never edits the binaries.
pub fn train_usage() -> String {
    format!(
        "qross-train [--problem {}] [--scale micro|quick|paper] \
         [--seed N] [--model PATH] [--manifest PATH] [--format binary|json]",
        known_families()
    )
}

/// `qross-predict`'s usage string (family list from the registry).
pub fn predict_usage() -> String {
    format!(
        "qross-predict --model PATH [--problem {}] \
         [--scale micro|quick|paper] [--seed N] [--manifest PATH]",
        known_families()
    )
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn write_manifest(path: &str, manifest: &PredictionManifest) {
    qross_store::json::write_json_file(path, manifest)
        .unwrap_or_else(|e| fail(&format!("writing manifest failed: {e}")));
    println!(
        "wrote manifest  {} ({} instances x {} grid points)",
        path,
        manifest.entries.len(),
        manifest.a_grid_bits.len()
    );
}

/// The whole of `qross-train`: parse the shared CLI, train the family's
/// model (TSP through the staged pipeline, everything else through
/// [`train_generic`]), persist it, and write the predictions manifest.
pub fn run_train() {
    let usage = train_usage();
    let mut args = parse_serve_cli(&usage, true);
    let name = args.problem.name();
    if args.model.is_empty() {
        let ext = if args.json_model { "json" } else { "qross" };
        args.model = format!("results/model-{name}.{ext}");
    }
    if args.manifest.is_empty() {
        args.manifest = format!("results/predictions-{name}-train.json");
    }

    let solvers = Solvers::at(args.scale);
    let manifest = if name == "tsp" {
        // Stage 1 — collect: generation + solver-data collection,
        // packaged as a persistable corpus.
        let cfg = pipeline_config(args.scale, args.seed);
        let corpus = Pipeline::new(cfg)
            .collect_corpus(&solvers.da)
            .unwrap_or_else(|e| fail(&format!("collect stage failed: {e}")));
        println!(
            "collected {} rows from {} train instances",
            corpus.dataset.len(),
            corpus.train_instances.len()
        );
        // Stage 2 — train: fit the surrogate on the corpus.
        let trained = TrainedQross::train_on_corpus(&corpus)
            .unwrap_or_else(|e| fail(&format!("train stage failed: {e}")));
        let last = trained.report.pf.final_train_loss().unwrap_or(f64::NAN);
        println!(
            "trained surrogate on {} rows (final Pf loss {last:.4})",
            trained.dataset_len
        );
        // Stage 3 — persist the bundle for the serve process.
        let save_result = if args.json_model {
            trained
                .to_bundle()
                .and_then(|b| b.save_json(&args.model).map_err(Into::into))
        } else {
            trained.save(&args.model)
        };
        save_result.unwrap_or_else(|e| fail(&format!("saving model failed: {e}")));
        tsp_manifest(&trained)
    } else {
        let (surrogate, report) = train_generic(args.problem, args.scale, args.seed, &solvers.da)
            .unwrap_or_else(|e| fail(&format!("training failed: {e}")));
        let last = report.pf.final_train_loss().unwrap_or(f64::NAN);
        println!(
            "trained {name} surrogate on {} rows (final Pf loss {last:.4})",
            report.train_rows
        );
        let state = surrogate.to_state();
        let save_result = if args.json_model {
            state.save_json(&args.model)
        } else {
            state.save(&args.model)
        };
        save_result.unwrap_or_else(|e| fail(&format!("saving model failed: {e}")));
        generic_manifest(args.problem, &surrogate, args.scale, args.seed)
    };
    println!("wrote model     {}", args.model);
    write_manifest(&args.manifest, &manifest);
}

/// The whole of `qross-predict`: reload a model written by `qross-train`
/// in a fresh process and regenerate the predictions manifest for a
/// byte-exact diff against the training side's.
pub fn run_predict() {
    let usage = predict_usage();
    let mut args = parse_serve_cli(&usage, false);
    if args.model.is_empty() {
        usage_exit(&usage, "--model is required");
    }
    let name = args.problem.name();
    if args.manifest.is_empty() {
        args.manifest = format!("results/predictions-{name}-serve.json");
    }

    let manifest = if name == "tsp" {
        let trained = TrainedQross::load(&args.model)
            .unwrap_or_else(|e| fail(&format!("loading bundle failed: {e}")));
        println!(
            "loaded {:?} from {} ({} test instances)",
            trained,
            args.model,
            trained.test_encodings.len()
        );
        tsp_manifest(&trained)
    } else {
        let state = SurrogateState::load_auto(&args.model)
            .unwrap_or_else(|e| fail(&format!("loading surrogate failed: {e}")));
        let surrogate = Surrogate::from_state(state)
            .unwrap_or_else(|e| fail(&format!("restoring surrogate failed: {e}")));
        println!("loaded {name} surrogate from {}", args.model);
        generic_manifest(args.problem, &surrogate, args.scale, args.seed)
    };
    write_manifest(&args.manifest, &manifest);
}

/// Drives a freshly built strategy through `trials` proposals against a
/// synthetic observation loop (no solver), recording each proposal's bit
/// pattern — used by tests to check a reloaded bundle reproduces the
/// in-memory strategy's *full* proposal sequence, OFS refinement
/// included.
pub fn proposal_trace(strategy: &mut dyn ProposalStrategy, trials: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(trials);
    for t in 0..trials {
        let a = strategy.propose(t);
        out.push(a.to_bits());
        // Deterministic synthetic feedback: a sigmoid world in ln A.
        let pf = mathkit::special::sigmoid(2.0 * a.ln());
        strategy.observe(
            a,
            &qross::collect::SolverObservation {
                a,
                pf,
                e_avg: 1.0 + a.ln().abs(),
                e_std: 0.25,
                best_fitness: if pf > 0.5 { Some(1.0 + a) } else { None },
                min_energy: 0.5,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use problems::registry;

    #[test]
    fn registry_corpora_are_deterministic() {
        for family in registry() {
            let a = family.corpus(corpus_tier(Scale::Micro), 7);
            let b = family.corpus(corpus_tier(Scale::Micro), 7);
            assert_eq!(a.len(), b.len(), "{}", family.name());
            assert!(!a.is_empty(), "{}", family.name());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.name(), y.name());
                assert_eq!(bits(&x.features()), bits(&y.features()));
            }
        }
    }

    #[test]
    fn registry_features_have_declared_width() {
        for family in registry() {
            let corpus = family.corpus(corpus_tier(Scale::Micro), 3);
            for p in &corpus {
                let f = p.features();
                assert_eq!(f.len(), family.feature_dim(), "{}", family.name());
                assert!(f.iter().all(|v| v.is_finite()), "{}", family.name());
            }
        }
    }

    #[test]
    fn usage_strings_name_every_family() {
        for family in registry() {
            assert!(train_usage().contains(family.name()));
            assert!(predict_usage().contains(family.name()));
        }
    }

    #[test]
    fn unknown_family_error_names_known_ones() {
        let err = lookup_family("sat").expect_err("sat is not registered");
        let msg = err.to_string();
        assert!(msg.contains("unknown problem family `sat`"));
        assert!(msg.contains("maxcut") && msg.contains("knapsack"));
    }
}
