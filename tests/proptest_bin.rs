//! Property tests for the QBIN binary wire protocol: encode→decode
//! round-trips are **bit-exact** (NaN payloads, signed zeros, infinities
//! included), decoding is invariant under arbitrary chunking, and
//! hostile input — truncations, byte substitutions, declared-length
//! lies, raw garbage — never panics and always yields a typed
//! [`BinError`]. Mirrors the `proptest_store.rs` discipline for the
//! `.qross` artifact codec, applied to the wire.

use proptest::prelude::*;

use bench::protocol::bin::{self, BinError, BinRequest, FrameCodec};
use bench::protocol::{ModelInfo, PredictionOut, Response};

/// Arbitrary `f64` *bit patterns* — covers NaNs with payloads, signed
/// zeros, infinities and subnormals, not just sampled finite reals.
fn f64_bits_strategy() -> impl Strategy<Value = f64> {
    (0u32..=u32::MAX, 0u32..=u32::MAX)
        .prop_map(|(hi, lo)| f64::from_bits(((hi as u64) << 32) | lo as u64))
}

/// Short strings over the characters tenant/tag labels actually use.
fn label_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..38, 0..12).prop_map(|chars| {
        chars
            .into_iter()
            .map(|c| match c {
                0..=25 => (b'a' + c) as char,
                26..=35 => (b'0' + (c - 26)) as char,
                36 => '-',
                _ => ' ',
            })
            .collect()
    })
}

fn id_strategy() -> impl Strategy<Value = Option<u64>> {
    (0u8..3, 0u64..=u64::MAX).prop_map(|(kind, v)| match kind {
        0 => None,
        _ => Some(v),
    })
}

/// An owned mirror of one request, so round-trips can be compared
/// bit-for-bit after the borrowed view is gone.
#[derive(Debug, Clone)]
enum OwnedRequest {
    Predict {
        id: Option<u64>,
        tenant: String,
        a_values: Vec<f64>,
        features: Vec<f64>,
    },
    Info {
        id: Option<u64>,
    },
    Feedback {
        id: Option<u64>,
        a: f64,
        pf: f64,
        e_avg: f64,
        e_std: f64,
        seed: u64,
        tag: String,
        features: Vec<f64>,
    },
    Refresh {
        id: Option<u64>,
    },
}

impl OwnedRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OwnedRequest::Predict {
                id,
                tenant,
                a_values,
                features,
            } => bin::encode_predict(out, *id, tenant, a_values, features),
            OwnedRequest::Info { id } => bin::encode_info(out, *id),
            OwnedRequest::Feedback {
                id,
                a,
                pf,
                e_avg,
                e_std,
                seed,
                tag,
                features,
            } => bin::encode_feedback(out, *id, *a, *pf, *e_avg, *e_std, *seed, tag, features),
            OwnedRequest::Refresh { id } => bin::encode_refresh(out, *id),
        }
    }

    /// Bitwise equality against a decoded view (NaN-safe: every f64 is
    /// compared as its bit pattern).
    fn matches(&self, decoded: &BinRequest<'_>) -> bool {
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        match (self, decoded) {
            (
                OwnedRequest::Predict {
                    id,
                    tenant,
                    a_values,
                    features,
                },
                BinRequest::Predict {
                    id: d_id,
                    tenant: d_tenant,
                    a_values: d_a,
                    features: d_f,
                },
            ) => {
                id == d_id
                    && tenant == d_tenant
                    && bits(a_values) == bits(&d_a.to_vec())
                    && bits(features) == bits(&d_f.to_vec())
            }
            (OwnedRequest::Info { id }, BinRequest::Info { id: d_id }) => id == d_id,
            (
                OwnedRequest::Feedback {
                    id,
                    a,
                    pf,
                    e_avg,
                    e_std,
                    seed,
                    tag,
                    features,
                },
                BinRequest::Feedback {
                    id: d_id,
                    a: d_a,
                    pf: d_pf,
                    e_avg: d_e_avg,
                    e_std: d_e_std,
                    seed: d_seed,
                    tag: d_tag,
                    features: d_f,
                },
            ) => {
                id == d_id
                    && a.to_bits() == d_a.to_bits()
                    && pf.to_bits() == d_pf.to_bits()
                    && e_avg.to_bits() == d_e_avg.to_bits()
                    && e_std.to_bits() == d_e_std.to_bits()
                    && seed == d_seed
                    && tag == d_tag
                    && bits(features) == bits(&d_f.to_vec())
            }
            (OwnedRequest::Refresh { id }, BinRequest::Refresh { id: d_id }) => id == d_id,
            _ => false,
        }
    }
}

fn request_strategy() -> impl Strategy<Value = OwnedRequest> {
    (
        0u8..4,
        id_strategy(),
        label_strategy(),
        proptest::collection::vec(f64_bits_strategy(), 0..6),
        proptest::collection::vec(f64_bits_strategy(), 0..27),
        (
            f64_bits_strategy(),
            f64_bits_strategy(),
            f64_bits_strategy(),
            f64_bits_strategy(),
            0u64..=u64::MAX,
        ),
    )
        .prop_map(
            |(kind, id, label, a_values, features, (a, pf, e_avg, e_std, seed))| match kind {
                0 => OwnedRequest::Predict {
                    id,
                    tenant: label,
                    a_values,
                    features,
                },
                1 => OwnedRequest::Info { id },
                2 => OwnedRequest::Feedback {
                    id,
                    a,
                    pf,
                    e_avg,
                    e_std,
                    seed,
                    tag: label,
                    features,
                },
                _ => OwnedRequest::Refresh { id },
            },
        )
}

/// A [`Response`] of one of the QBIN-expressible kinds (error, predict,
/// info, ack), with arbitrary-bit f64 payloads. Predict rows keep the
/// decimal/`_bits` invariant the serving path maintains.
fn response_strategy() -> impl Strategy<Value = Response> {
    (
        0u8..4,
        id_strategy(),
        label_strategy(),
        proptest::collection::vec(
            (
                f64_bits_strategy(),
                f64_bits_strategy(),
                f64_bits_strategy(),
                f64_bits_strategy(),
            ),
            0..5,
        ),
        (id_strategy(), id_strategy(), id_strategy(), id_strategy()),
        (0u8..3, 0u32..1_000, 0u64..=u64::MAX, 0u8..2),
    )
        .prop_map(
            |(kind, id, label, rows, (o1, o2, o3, o4), (tri, dim, generation, flag))| match kind {
                0 => Response {
                    id,
                    ok: false,
                    error: Some(label),
                    ..Default::default()
                },
                1 => Response {
                    id,
                    ok: true,
                    predictions: Some(
                        rows.into_iter()
                            .map(|(a, pf, e_avg, e_std)| PredictionOut {
                                a,
                                pf,
                                e_avg,
                                e_std,
                                pf_bits: pf.to_bits(),
                                e_avg_bits: e_avg.to_bits(),
                                e_std_bits: e_std.to_bits(),
                            })
                            .collect(),
                    ),
                    ..Default::default()
                },
                2 => Response {
                    id,
                    ok: true,
                    info: Some(ModelInfo {
                        kind: if flag == 0 { "surrogate" } else { "bundle" }.to_string(),
                        feature_dim: dim as usize,
                        dataset_len: o1,
                        train_instances: o2,
                        generation,
                        online: tri == 1,
                        feedback_count: o3,
                        buffer_len: o4,
                        refresh_after: o1,
                    }),
                    ..Default::default()
                },
                _ => Response {
                    id,
                    ok: true,
                    generation: o1,
                    feedback_count: o2,
                    buffer_len: o3,
                    refreshed: match tri {
                        0 => None,
                        1 => Some(false),
                        _ => Some(true),
                    },
                    ..Default::default()
                },
            },
        )
}

/// Owned summary of one decode step, for comparing decode runs.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DecodedItem {
    Frame { op: u8, payload: Vec<u8> },
    Error(String),
}

/// Decodes `bytes` split at the given cut points, returning every item
/// including the EOF verdict. Must never panic, whatever the bytes.
fn decode_chunked(bytes: &[u8], cuts: &[usize], limit: usize) -> Vec<DecodedItem> {
    let mut codec = FrameCodec::with_limit(limit);
    let mut items = Vec::new();
    let mut start = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&bytes.len())) {
        let cut = cut.min(bytes.len());
        if cut <= start {
            continue;
        }
        codec.feed(&bytes[start..cut]);
        while let Some(item) = next_item_owned(&mut codec) {
            items.push(item);
        }
        start = cut;
    }
    if let Some(err) = codec.finish() {
        items.push(DecodedItem::Error(err.to_string()));
    }
    items
}

/// Pulls the next frame/error as an owned summary (the borrowed `Frame`
/// cannot outlive the codec's buffer).
fn next_item_owned(codec: &mut FrameCodec) -> Option<DecodedItem> {
    codec.next_frame().map(|decoded| match decoded {
        Ok(frame) => DecodedItem::Frame {
            op: frame.op,
            payload: frame.payload.to_vec(),
        },
        Err(e) => DecodedItem::Error(e.to_string()),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mix of requests round-trips through encode → frame decode →
    /// payload decode bit-exactly, including NaN-payload f64s.
    #[test]
    fn request_roundtrip_is_bit_exact(
        requests in proptest::collection::vec(request_strategy(), 1..6),
    ) {
        let mut stream = Vec::new();
        for request in &requests {
            request.encode(&mut stream);
        }
        let mut codec = FrameCodec::new();
        codec.feed(&stream);
        for expected in &requests {
            let frame = codec.next_frame().expect("frame per request").expect("clean frame");
            let decoded = bin::decode_request(&frame).expect("well-formed payload");
            prop_assert!(
                expected.matches(&decoded),
                "decode changed the request: {expected:?} vs {decoded:?}"
            );
        }
        prop_assert!(codec.next_frame().is_none());
        prop_assert!(codec.finish().is_none());
    }

    /// Responses round-trip bit-exactly: the decoded struct serializes
    /// to the identical NDJSON line as the original — the same equality
    /// the dual-protocol CI replay enforces.
    #[test]
    fn response_roundtrip_is_bit_exact(
        responses in proptest::collection::vec(response_strategy(), 1..5),
    ) {
        let mut stream = Vec::new();
        for response in &responses {
            bin::encode_response(&mut stream, response);
        }
        let decoded = bin::decode_response_stream(&stream).expect("clean stream");
        prop_assert_eq!(decoded.len(), responses.len());
        for (original, decoded) in responses.iter().zip(&decoded) {
            let a = serde_json::to_string(original).expect("serializable");
            let b = serde_json::to_string(decoded).expect("serializable");
            prop_assert_eq!(a, b);
        }
    }

    /// Frame decoding is invariant under how the stream is chunked —
    /// valid frames, hostile bytes, anything.
    #[test]
    fn decoding_is_invariant_under_chunking(
        requests in proptest::collection::vec(request_strategy(), 0..4),
        junk in proptest::collection::vec(0u8..=u8::MAX, 0..40),
        raw_cuts in proptest::collection::vec(0usize..2048, 0..32),
    ) {
        let mut stream = Vec::new();
        for request in &requests {
            request.encode(&mut stream);
        }
        stream.extend_from_slice(&junk);
        let baseline = decode_chunked(&stream, &[], 1 << 16);
        let mut cuts = raw_cuts;
        cuts.sort_unstable();
        cuts.dedup();
        let chunked = decode_chunked(&stream, &cuts, 1 << 16);
        prop_assert_eq!(&baseline, &chunked);
        let byte_by_byte: Vec<usize> = (1..stream.len()).collect();
        let trickled = decode_chunked(&stream, &byte_by_byte, 1 << 16);
        prop_assert_eq!(&baseline, &trickled);
    }

    /// Truncating a valid frame anywhere — inside the header, the
    /// payload or the trailing CRC — yields a typed truncation at EOF,
    /// never a panic, never a silently-clean stream end.
    #[test]
    fn truncation_yields_typed_error(
        request in request_strategy(),
        cut_frac in 0u32..1_000,
    ) {
        let mut stream = Vec::new();
        request.encode(&mut stream);
        let cut = 1 + (cut_frac as usize * (stream.len() - 2)) / 1_000;
        let mut codec = FrameCodec::new();
        codec.feed(&stream[..cut]);
        prop_assert!(codec.next_frame().is_none(), "partial frame must not decode");
        match codec.finish() {
            Some(BinError::Truncated { .. }) => {}
            other => prop_assert!(false, "expected Truncated at EOF, got {other:?}"),
        }
    }

    /// Substituting any byte of a valid frame never panics and never
    /// reproduces the original frame as a clean decode — every
    /// corruption is surfaced as some typed error.
    #[test]
    fn byte_substitution_is_always_detected(
        request in request_strategy(),
        pos_frac in 0u32..1_000,
        new_byte in 0u8..=u8::MAX,
    ) {
        let mut stream = Vec::new();
        request.encode(&mut stream);
        let pristine = decode_chunked(&stream, &[], bin::MAX_FRAME_BYTES);
        let pos = (pos_frac as usize * stream.len()) / 1_000;
        let changed = stream[pos] != new_byte;
        stream[pos] = new_byte;
        let corrupted = decode_chunked(&stream, &[], bin::MAX_FRAME_BYTES);
        if changed {
            prop_assert!(
                corrupted != pristine,
                "byte {} rewritten to {:#04x} decoded as if untouched", pos, new_byte
            );
            prop_assert!(
                corrupted.iter().any(|item| matches!(item, DecodedItem::Error(_))),
                "corruption produced no typed error: {corrupted:?}"
            );
        } else {
            prop_assert_eq!(&corrupted, &pristine);
        }
    }

    /// Arbitrary garbage — raw, or hiding behind a genuine magic — never
    /// panics the decoder; every item it yields is typed.
    #[test]
    fn garbage_never_panics(
        prefix_magic in 0u8..2,
        junk in proptest::collection::vec(0u8..=u8::MAX, 0..200),
        raw_cuts in proptest::collection::vec(0usize..220, 0..16),
    ) {
        let mut stream = Vec::new();
        if prefix_magic == 1 {
            stream.extend_from_slice(&bin::QBIN_MAGIC);
        }
        stream.extend_from_slice(&junk);
        let mut cuts = raw_cuts;
        cuts.sort_unstable();
        cuts.dedup();
        // The assertion is implicit: no panic, bounded memory (the codec
        // caps buffering at the frame limit), and finish() terminates.
        let _ = decode_chunked(&stream, &cuts, 1 << 12);
    }

    /// A declared length over the cap is rejected with a typed error,
    /// its payload is discarded without buffering, and the very next
    /// valid frame decodes — the session survives, like the NDJSON
    /// line-cap path.
    #[test]
    fn oversized_frames_are_rejected_and_survived(
        declared in 65u32..100_000,
        id in id_strategy(),
    ) {
        let limit = 64usize;
        let mut stream = Vec::new();
        stream.extend_from_slice(&bin::QBIN_MAGIC);
        stream.push(bin::QBIN_VERSION);
        stream.push(bin::OP_PREDICT);
        stream.extend_from_slice(&declared.to_le_bytes());
        // The lying frame's payload + CRC, then a genuine (small, under
        // the test cap) request.
        stream.extend(std::iter::repeat_n(0xAB, declared as usize + 4));
        let follow_at = stream.len();
        bin::encode_info(&mut stream, id);
        let items = decode_chunked(&stream, &[7, follow_at, follow_at + 3], limit);
        prop_assert!(items.len() >= 2, "expected a reject and a frame: {items:?}");
        match &items[0] {
            DecodedItem::Error(msg) => prop_assert!(
                msg.contains("exceeds"),
                "expected an oversize reject, got {msg:?}"
            ),
            other => prop_assert!(false, "expected an error first, got {other:?}"),
        }
        let tail_ok = items[1..].iter().any(|item| matches!(
            item,
            DecodedItem::Frame { .. }
        ));
        prop_assert!(tail_ok, "the session did not survive the reject: {items:?}");
    }
}
