//! Property tests pinning the blocked serve-tier matmul to the reference
//! kernel, bit for bit.
//!
//! The serve path (`Dense::infer` → `Matrix::matmul`) promises *exact*
//! f64 bit patterns across refactors; these tests are the contract.

use proptest::prelude::*;

use mathkit::Matrix;

/// Element strategy: mixes exact zeros (the skip path), negative zeros,
/// tiny/huge magnitudes and ordinary values, so both the branch structure
/// and rounding-order sensitivity of the kernels are exercised.
fn element() -> impl Strategy<Value = f64> {
    (0u8..10, -100.0..100.0f64).prop_map(|(sel, v)| match sel {
        0 | 1 => 0.0,
        2 => -0.0,
        3 => v * 1e-14,
        4 => v * 1e7,
        _ => v,
    })
}

fn assert_bits_identical(got: &Matrix, want: &Matrix) {
    assert_eq!(got.shape(), want.shape());
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "element {i} differs: {g} vs {w}");
    }
}

proptest! {
    /// Blocked matmul == naive matmul, exact f64 bits, on random shapes
    /// spanning both kernel paths (short operands use direct tiles, tall
    /// operands the packed panels) including sizes that are not multiples
    /// of the register tile.
    #[test]
    fn blocked_matches_reference_bitwise(
        (m, k, n) in (1usize..24, 1usize..24, 1usize..24),
        data_a in proptest::collection::vec(element(), 24 * 24),
        data_b in proptest::collection::vec(element(), 24 * 24),
    ) {
        let a = Matrix::from_vec(m, k, data_a[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, data_b[..k * n].to_vec());
        assert_bits_identical(&a.matmul(&b), &a.matmul_reference(&b));
    }

    /// Row/column vector edges: 1×N times N×1 and the outer-product
    /// pairing, which stress the single-row tail and the scalar column
    /// tail.
    #[test]
    fn vector_edges_match_bitwise(
        n in 1usize..64,
        row in proptest::collection::vec(element(), 64),
        col in proptest::collection::vec(element(), 64),
    ) {
        let r = Matrix::from_vec(1, n, row[..n].to_vec());
        let c = Matrix::from_vec(n, 1, col[..n].to_vec());
        // 1×n * n×1 → 1×1 and n×1 * 1×n → n×n (outer product)
        assert_bits_identical(&r.matmul(&c), &r.matmul_reference(&c));
        assert_bits_identical(&c.matmul(&r), &c.matmul_reference(&r));
    }

    /// Serve-path production shapes (feature dims 25/65, hidden 64, heads
    /// 1/2, batches on both sides of the packing threshold) stay
    /// bit-exact.
    #[test]
    fn production_shapes_match_bitwise(
        batch_sel in 0u8..3,
        feat_sel in 0u8..2,
        head_sel in 0u8..3,
        data_a in proptest::collection::vec(element(), 64 * 65),
        data_b in proptest::collection::vec(element(), 65 * 64),
    ) {
        let batch = [1usize, 8, 64][batch_sel as usize];
        let feat = [25usize, 65][feat_sel as usize];
        let head = [1usize, 2, 64][head_sel as usize];
        let a = Matrix::from_vec(batch, feat, data_a[..batch * feat].to_vec());
        let b = Matrix::from_vec(feat, head, data_b[..feat * head].to_vec());
        assert_bits_identical(&a.matmul(&b), &a.matmul_reference(&b));
    }
}
