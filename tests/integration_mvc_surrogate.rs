//! Problem-generic pipeline: train a QROSS surrogate on a *MVC* family
//! (not TSP) through `train_on_problems`, and verify the learned sigmoid
//! plus strategy proposals work on a held-out graph.
//!
//! This exercises the claim implicit in the paper's framing — the method
//! is generic over "instances of a problem", TSP being only the case
//! study.

use qross_repro::problems::MvcInstance;
use qross_repro::qross::collect::{observe, CollectConfig};
use qross_repro::qross::pipeline::train_on_problems;
use qross_repro::qross::strategy::{mfs, pbs};
use qross_repro::qross::surrogate::SurrogateConfig;
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};

fn mvc_features(g: &MvcInstance) -> Vec<f64> {
    let n = g.num_vertices() as f64;
    let m = g.edges().len() as f64;
    let mean_w = g.weights().iter().sum::<f64>() / n;
    vec![n, m, m / n, mean_w]
}

fn family(count: usize) -> Vec<MvcInstance> {
    (0..count)
        .map(|s| MvcInstance::random_gnp(&format!("g{s}"), 24, 0.35, 1000 + s as u64))
        .collect()
}

fn solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 96,
        ..Default::default()
    })
}

#[test]
fn mvc_surrogate_learns_and_proposes() {
    let graphs = family(14);
    let s = solver();
    let collect = CollectConfig {
        batch: 16,
        sweep_points: 9,
        a_init: 0.5, // MVC weights are U[0,1): the slope sits near max(w)
        ..Default::default()
    };
    let surrogate_cfg = SurrogateConfig {
        hidden: 24,
        epochs: 200,
        val_fraction: 0.0,
        ..Default::default()
    };
    let (surrogate, report) =
        train_on_problems(&graphs, mvc_features, 4, &collect, &surrogate_cfg, &s, 5)
            .expect("training succeeds");
    assert!(report.train_rows >= 14 * 9);

    // Held-out graph from the same family.
    let test = MvcInstance::random_gnp("held-out", 24, 0.35, 42);
    let features = mvc_features(&test);

    // Sigmoid trend on the held-out instance.
    let domain = (0.01, 50.0);
    let low = surrogate.predict(&features, 0.02);
    let high = surrogate.predict(&features, 20.0);
    assert!(
        high.pf > low.pf + 0.3,
        "no learned sigmoid: Pf {} -> {}",
        low.pf,
        high.pf
    );

    // MFS proposal produces a feasible, competitive trial on the solver.
    let m = mfs::propose(&surrogate, &features, domain, 16).expect("MFS proposes");
    let obs = observe(&test, &s, m.x, 16, 9);
    let fitness = obs
        .best_fitness
        .expect("MFS proposal should be feasible for MVC");
    let greedy = test.cover_weight(&test.greedy_cover());
    assert!(
        fitness <= greedy * 1.05 + 1e-9,
        "MFS trial ({fitness}) should not lose to greedy ({greedy})"
    );

    // PBS ladder is ordered on the held-out instance too.
    let a_lo = pbs::propose(&surrogate, &features, domain, 0.25).expect("pbs 25%");
    let a_hi = pbs::propose(&surrogate, &features, domain, 0.75).expect("pbs 75%");
    assert!(a_hi > a_lo, "PBS ordering violated: {a_hi} <= {a_lo}");
}

#[test]
fn empty_family_is_an_error() {
    let s = solver();
    let result = train_on_problems(
        &[] as &[MvcInstance],
        mvc_features,
        4,
        &CollectConfig::default(),
        &SurrogateConfig::default(),
        &s,
        1,
    );
    assert!(result.is_err());
}
