//! Offline JSON serialisation over the `serde` subset's [`Value`] model.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — plus [`to_value`]/[`from_value`]
//! conveniences. Numbers are written with Rust's shortest-roundtrip float
//! formatting, so `f64` values survive a write/read cycle bit-exactly
//! (non-finite floats are written as `null`; see the `serde` crate docs).

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serialises `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the value model this subset supports; the `Result` is
/// kept for API compatibility with upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to compact JSON **appended to `out`** — the
/// allocation-reusing sibling of [`to_string`]. Callers on a hot path
/// (one response line per request) keep one `String` scratch per
/// connection, `clear()` it and serialise in place; the bytes produced
/// are identical to [`to_string`]'s.
///
/// # Errors
///
/// Infallible for the value model this subset supports; the `Result` is
/// kept for symmetry with [`to_string`].
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    write_value(out, &value.to_value(), None, 0);
    Ok(())
}

/// Serialises `value` to two-space-indented JSON.
///
/// # Errors
///
/// Infallible; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serialisable value into the interchange tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from the interchange tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats distinguishable from integers: `1.0` not `1`.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let tail = &self.bytes[self.pos - 1..];
                    let ch = std::str::from_utf8(&tail[..tail.len().min(4)])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-2i32).unwrap(), "-2");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<i32>("-2").unwrap(), -2);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123456.789012345, -0.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let xs = vec![(1u32, -0.5f64), (2, 0.25)];
        let s = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<(u32, f64)>>(&s).unwrap(), xs);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let xs = vec![vec![1, 2], vec![3]];
        let s = to_string_pretty(&xs).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<i32>>>(&s).unwrap(), xs);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(to_string(&Option::<f64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("3.0").unwrap(), Some(3.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<i32>>("[1,").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<i32>>(" [ 1 , 2 ,\n\t3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
