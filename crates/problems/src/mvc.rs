//! Weighted Minimum Vertex Cover (paper appendix B).
//!
//! Given an undirected graph with vertex weights `w_i`, find the
//! minimum-weight vertex subset touching every edge. The appendix-B QUBO
//! form is
//!
//! `min Σ_i w_i u_i + σ · Σ_{(i,j)∈E} (1 − u_i − u_j + u_i u_j)`
//!
//! where each edge term is 1 exactly when the edge is uncovered. The
//! penalty weight `σ` plays the relaxation-parameter role; appendix B's
//! Fig. 6 sweeps it over `10^0 … 10^4` to show hardware-error degradation.
//!
//! Instances for that experiment are Erdős–Rényi `G(n, p)` graphs with 65
//! nodes, edge probability 0.5 and i.i.d. `U[0, 1)` weights — matching the
//! chimera-embeddable size the paper used on DW_2000Q.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use qubo::{QuboBuilder, QuboModel};

use crate::RelaxableProblem;

/// A weighted MVC instance.
///
/// # Examples
///
/// ```
/// use problems::{MvcInstance, RelaxableProblem};
/// // Triangle graph, unit weights.
/// let inst = MvcInstance::new(
///     "tri",
///     vec![1.0; 3],
///     vec![(0, 1), (1, 2), (0, 2)],
/// ).unwrap();
/// // Covering two vertices covers every edge.
/// assert!(inst.is_feasible(&[1, 1, 0]));
/// assert_eq!(inst.fitness(&[1, 1, 0]), Some(2.0));
/// assert!(!inst.is_feasible(&[1, 0, 0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvcInstance {
    name: String,
    weights: Vec<f64>,
    edges: Vec<(u32, u32)>,
}

impl MvcInstance {
    /// Creates an instance.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ProblemError::InvalidInstance`] for self-loops,
    /// out-of-range endpoints, duplicate edges or non-finite weights.
    pub fn new(
        name: &str,
        weights: Vec<f64>,
        edges: Vec<(u32, u32)>,
    ) -> Result<Self, crate::ProblemError> {
        let n = weights.len();
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(crate::ProblemError::InvalidInstance {
                message: "non-finite vertex weight".to_string(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        let mut normalized = Vec::with_capacity(edges.len());
        for &(a, b) in &edges {
            if a == b {
                return Err(crate::ProblemError::InvalidInstance {
                    message: format!("self-loop at vertex {a}"),
                });
            }
            if a as usize >= n || b as usize >= n {
                return Err(crate::ProblemError::InvalidInstance {
                    message: format!("edge ({a},{b}) out of range for {n} vertices"),
                });
            }
            let e = (a.min(b), a.max(b));
            if !seen.insert(e) {
                return Err(crate::ProblemError::InvalidInstance {
                    message: format!("duplicate edge ({},{})", e.0, e.1),
                });
            }
            normalized.push(e);
        }
        Ok(MvcInstance {
            name: name.to_string(),
            weights,
            edges: normalized,
        })
    }

    /// Random `G(n, p)` instance with `U[0,1)` vertex weights — the
    /// appendix-B experimental setting (`n = 65`, `p = 0.5`).
    pub fn random_gnp(name: &str, n: usize, p: f64, seed: u64) -> Self {
        let mut rng = derive_rng(seed, 0x347C);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.gen::<f64>() < p {
                    edges.push((i, j));
                }
            }
        }
        MvcInstance {
            name: name.to_string(),
            weights,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.weights.len()
    }

    /// Vertex weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Edge list (endpoints normalised to `(min, max)`).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of uncovered edges under assignment `x`.
    pub fn uncovered_edges(&self, x: &[u8]) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| x[a as usize] == 0 && x[b as usize] == 0)
            .count()
    }

    /// Total weight of the selected vertices (regardless of feasibility).
    pub fn cover_weight(&self, x: &[u8]) -> f64 {
        x.iter()
            .zip(self.weights.iter())
            .filter(|&(&xi, _)| xi != 0)
            .map(|(_, &w)| w)
            .sum()
    }

    /// A greedy 2-approximation: repeatedly covers the edge whose cheaper
    /// endpoint (by weight/degree ratio) is best. Used as the reference
    /// for normalising Fig. 6 energies when exhaustive search is too
    /// large.
    pub fn greedy_cover(&self) -> Vec<u8> {
        let n = self.num_vertices();
        let mut x = vec![0u8; n];
        let mut uncovered: Vec<(u32, u32)> = self.edges.clone();
        while !uncovered.is_empty() {
            // Pick the vertex covering the most uncovered edges per weight.
            let mut degree = vec![0usize; n];
            for &(a, b) in &uncovered {
                degree[a as usize] += 1;
                degree[b as usize] += 1;
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for v in 0..n {
                if x[v] == 0 && degree[v] > 0 {
                    let score = degree[v] as f64 / self.weights[v].max(1e-9);
                    if score > best_score {
                        best_score = score;
                        best = v;
                    }
                }
            }
            x[best] = 1;
            uncovered.retain(|&(a, b)| a as usize != best && b as usize != best);
        }
        x
    }
}

impl RelaxableProblem for MvcInstance {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_vars(&self) -> usize {
        self.weights.len()
    }

    fn to_qubo(&self, relaxation: f64) -> QuboModel {
        let mut b = QuboBuilder::new(self.num_vertices());
        for (i, &w) in self.weights.iter().enumerate() {
            b.add_linear(i, w);
        }
        for &(i, j) in &self.edges {
            // σ (1 − u_i − u_j + u_i u_j)
            b.add_offset(relaxation);
            b.add_linear(i as usize, -relaxation);
            b.add_linear(j as usize, -relaxation);
            b.add_quadratic(i as usize, j as usize, relaxation);
        }
        b.build()
    }

    fn is_feasible(&self, x: &[u8]) -> bool {
        self.uncovered_edges(x) == 0
    }

    fn fitness(&self, x: &[u8]) -> Option<f64> {
        if self.is_feasible(x) {
            Some(self.cover_weight(x))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> MvcInstance {
        // 0 - 1 - 2 path: optimal cover is {1} with weight 1.
        MvcInstance::new("path", vec![1.0, 1.0, 1.0], vec![(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn feasibility_and_fitness() {
        let p = path3();
        assert!(p.is_feasible(&[0, 1, 0]));
        assert_eq!(p.fitness(&[0, 1, 0]), Some(1.0));
        assert!(!p.is_feasible(&[1, 0, 0]));
        assert_eq!(p.fitness(&[1, 0, 0]), None);
        assert!(p.is_feasible(&[1, 1, 1]));
        assert_eq!(p.fitness(&[1, 1, 1]), Some(3.0));
    }

    #[test]
    fn qubo_energy_identity() {
        let p = path3();
        let sigma = 3.5;
        let q = p.to_qubo(sigma);
        for bits in 0..8u8 {
            let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            let want = p.cover_weight(&x) + sigma * p.uncovered_edges(&x) as f64;
            assert!((q.energy(&x) - want).abs() < 1e-12, "x={x:?}");
        }
    }

    #[test]
    fn qubo_minimum_is_optimal_cover_when_sigma_large() {
        let p = path3();
        // σ > max weight guarantees the QUBO optimum is feasible
        // (appendix B: "any σ > max(w_i) would ensure...").
        let q = p.to_qubo(2.0);
        let mut best = (f64::INFINITY, 0u8);
        for bits in 0..8u8 {
            let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            let e = q.energy(&x);
            if e < best.0 {
                best = (e, bits);
            }
        }
        assert_eq!(best.1, 0b010, "optimal cover must be the middle vertex");
        assert_eq!(best.0, 1.0);
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(MvcInstance::new("l", vec![1.0; 2], vec![(0, 0)]).is_err());
        assert!(MvcInstance::new("r", vec![1.0; 2], vec![(0, 5)]).is_err());
        assert!(MvcInstance::new("d", vec![1.0; 3], vec![(0, 1), (1, 0)]).is_err());
        assert!(MvcInstance::new("w", vec![f64::NAN], vec![]).is_err());
    }

    #[test]
    fn gnp_statistics() {
        let g = MvcInstance::random_gnp("g", 40, 0.5, 7);
        assert_eq!(g.num_vertices(), 40);
        let max_edges = 40 * 39 / 2;
        // With p = 0.5 expect ~390 of 780 edges; allow wide slack.
        assert!(g.edges().len() > max_edges / 4);
        assert!(g.edges().len() < 3 * max_edges / 4);
        assert!(g.weights().iter().all(|&w| (0.0..1.0).contains(&w)));
        // Deterministic.
        assert_eq!(g, MvcInstance::random_gnp("g", 40, 0.5, 7));
    }

    #[test]
    fn greedy_cover_is_feasible() {
        for seed in 0..5 {
            let g = MvcInstance::random_gnp("g", 30, 0.3, seed);
            let cover = g.greedy_cover();
            assert!(g.is_feasible(&cover), "seed {seed}");
        }
    }

    #[test]
    fn empty_graph_trivially_covered() {
        let g = MvcInstance::new("empty", vec![1.0; 4], vec![]).unwrap();
        assert!(g.is_feasible(&[0, 0, 0, 0]));
        assert_eq!(g.fitness(&[0, 0, 0, 0]), Some(0.0));
        assert!(g.greedy_cover().iter().all(|&b| b == 0));
    }
}
