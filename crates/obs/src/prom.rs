//! Prometheus text exposition (format 0.0.4) over one or more
//! [`Registry`] instances.
//!
//! Histograms render cumulatively with log₂ upper bounds: bucket `b`
//! holds values in `[2^b, 2^(b+1))`, so its inclusive `le` is
//! `2^(b+1) - 1` (raw units — this crate's histograms are nanoseconds by
//! convention, and metric names carry a `_ns` suffix to say so). Buckets
//! past the highest non-empty one collapse into the mandatory `+Inf`.

use std::fmt::Write as _;

use crate::registry::{HistSnapshot, MetricView, Registry, HIST_BUCKETS};

/// Splits `base{labels}` into `(base, labels)`; labels is empty for a
/// plain name.
fn split_name(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

/// Joins an entry's inline labels with one extra `le` label.
fn labels_with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{{{labels},le=\"{le}\"}}")
    }
}

fn wrap_labels(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn render_histogram(out: &mut String, base: &str, labels: &str, snap: &HistSnapshot) {
    let last = (0..HIST_BUCKETS)
        .rev()
        .find(|&b| snap.buckets[b] != 0)
        .map(|b| b.min(HIST_BUCKETS - 2)); // bucket 63's bound is +Inf itself
    let mut cumulative = 0u64;
    if let Some(last) = last {
        for (b, &c) in snap.buckets.iter().enumerate().take(last + 1) {
            cumulative = cumulative.wrapping_add(c);
            let le = ((1u128 << (b + 1)) - 1).to_string();
            let _ = writeln!(
                out,
                "{base}_bucket{} {cumulative}",
                labels_with_le(labels, &le)
            );
        }
    }
    let _ = writeln!(
        out,
        "{base}_bucket{} {}",
        labels_with_le(labels, "+Inf"),
        snap.count
    );
    let _ = writeln!(out, "{base}_sum{} {}", wrap_labels(labels), snap.sum);
    let _ = writeln!(out, "{base}_count{} {}", wrap_labels(labels), snap.count);
}

/// Renders every metric of every registry as Prometheus text exposition.
/// Entries sharing a base name (labeled variants) are grouped under one
/// `# HELP`/`# TYPE` header; duplicate full names across registries keep
/// the first occurrence.
pub fn render(registries: &[&Registry]) -> String {
    let mut entries: Vec<(String, &'static str, MetricView)> = Vec::new();
    for reg in registries {
        entries.extend(reg.collect());
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries.dedup_by(|a, b| a.0 == b.0);

    let mut out = String::new();
    let mut current_base = String::new();
    for (name, help, view) in &entries {
        let (base, labels) = split_name(name);
        if base != current_base {
            let kind = match view {
                MetricView::Counter(_) => "counter",
                MetricView::Gauge(_) => "gauge",
                MetricView::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {base} {help}");
            let _ = writeln!(out, "# TYPE {base} {kind}");
            current_base = base.to_string();
        }
        match view {
            MetricView::Counter(v) => {
                let _ = writeln!(out, "{base}{} {v}", wrap_labels(labels));
            }
            MetricView::Gauge(v) => {
                let _ = writeln!(out, "{base}{} {v}", wrap_labels(labels));
            }
            MetricView::Histogram(snap) => render_histogram(&mut out, base, labels, snap),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ENABLED;

    #[test]
    fn renders_counters_gauges_histograms() {
        let reg = Registry::new();
        reg.counter("x_total", "things").add(7);
        reg.gauge("x_depth", "queue depth").set(-2);
        reg.histogram("x_ns", "latency").record(1000);
        let text = render(&[&reg]);
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("# TYPE x_depth gauge"));
        assert!(text.contains("# TYPE x_ns histogram"));
        if ENABLED {
            assert!(text.contains("x_total 7"));
            assert!(text.contains("x_depth -2"));
            // 1000 lands in bucket 9 → le = 2^10 - 1 = 1023.
            assert!(text.contains("x_ns_bucket{le=\"1023\"} 1"));
            assert!(text.contains("x_ns_sum 1000"));
            assert!(text.contains("x_ns_count 1"));
        }
        assert!(text.contains("x_ns_bucket{le=\"+Inf\"}"));
    }

    #[test]
    fn labeled_variants_share_one_header() {
        let reg = Registry::new();
        reg.counter(crate::labeled("s_total", "solver", "sa"), "per-solver")
            .add(1);
        reg.counter(crate::labeled("s_total", "solver", "da"), "per-solver")
            .add(2);
        let text = render(&[&reg]);
        assert_eq!(text.matches("# TYPE s_total counter").count(), 1);
        if ENABLED {
            assert!(text.contains("s_total{solver=\"da\"} 2"));
            assert!(text.contains("s_total{solver=\"sa\"} 1"));
        }
    }

    #[test]
    fn histogram_labels_merge_with_le() {
        let reg = Registry::new();
        let h = reg.histogram(crate::labeled("st_ns", "stage", "decode"), "per-stage");
        h.record(2);
        let text = render(&[&reg]);
        if ENABLED {
            assert!(text.contains("st_ns_bucket{stage=\"decode\",le=\"3\"} 1"));
        }
        assert!(text.contains("st_ns_bucket{stage=\"decode\",le=\"+Inf\"}"));
        assert!(text.contains("st_ns_sum{stage=\"decode\"}"));
    }

    #[test]
    fn buckets_are_cumulative() {
        if !ENABLED {
            return;
        }
        let reg = Registry::new();
        let h = reg.histogram("c_ns", "h");
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(2); // bucket 1
        let text = render(&[&reg]);
        assert!(text.contains("c_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("c_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("c_ns_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn duplicate_names_across_registries_dedupe() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("dup_total", "h").add(1);
        b.counter("dup_total", "h").add(9);
        let text = render(&[&a, &b]);
        assert_eq!(text.matches("\ndup_total ").count(), 1);
    }
}
