//! Annealing temperature schedules.
//!
//! Both annealers sweep an inverse temperature β from hot to cold. The
//! default range is auto-scaled from the model's coefficient magnitudes
//! (the heuristic used by D-Wave's `neal` reference sampler): the hot end
//! accepts a worst-case uphill move with probability ~50%, the cold end
//! accepts a typical smallest move with probability ~1%.
//!
//! This auto-scaling is also what makes the penalty-weight experiment
//! (paper appendix B, Fig. 6) behave like real hardware: as the penalty
//! weight grows, the temperature range grows with it and the solver loses
//! resolution on the (now relatively tiny) objective terms.

use qubo::QuboModel;
use serde::{Deserialize, Serialize};

/// Geometric β (inverse temperature) schedule.
///
/// # Examples
///
/// ```
/// use solvers::schedule::BetaSchedule;
/// let s = BetaSchedule::geometric(0.1, 10.0, 5);
/// let betas: Vec<f64> = s.iter().collect();
/// assert_eq!(betas.len(), 5);
/// assert!((betas[0] - 0.1).abs() < 1e-12);
/// assert!((betas[4] - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaSchedule {
    beta_hot: f64,
    beta_cold: f64,
    steps: usize,
}

impl BetaSchedule {
    /// Creates a geometric schedule from `beta_hot` to `beta_cold` over
    /// `steps` steps.
    ///
    /// # Panics
    ///
    /// Panics if the betas are not positive or `steps == 0`.
    pub fn geometric(beta_hot: f64, beta_cold: f64, steps: usize) -> Self {
        assert!(
            beta_hot > 0.0 && beta_cold > 0.0,
            "betas must be positive, got hot={beta_hot}, cold={beta_cold}"
        );
        assert!(steps > 0, "schedule needs at least one step");
        BetaSchedule {
            beta_hot,
            beta_cold,
            steps,
        }
    }

    /// Derives a schedule from the model's coefficient scale.
    ///
    /// `Δmax = max_i (|l_i| + Σ_j |w_ij|)` bounds any single-flip energy
    /// change; the hot β accepts such a move with probability 0.5 and the
    /// cold β accepts a move of size `Δmax/1000` with probability 0.01.
    /// A zero model falls back to the range `[0.1, 10]`.
    pub fn auto(model: &QuboModel, steps: usize) -> Self {
        let mut delta_max: f64 = 0.0;
        for i in 0..model.num_vars() {
            let mut reach = model.linear(i).abs();
            for &w in model.neighbor_weights(i) {
                reach += w.abs();
            }
            delta_max = delta_max.max(reach);
        }
        if delta_max <= 0.0 {
            return BetaSchedule::geometric(0.1, 10.0, steps);
        }
        let beta_hot = (2.0_f64).ln() / delta_max;
        let delta_min = delta_max / 1000.0;
        let beta_cold = (100.0_f64).ln() / delta_min;
        BetaSchedule::geometric(beta_hot, beta_cold, steps)
    }

    /// Hot (initial) β.
    pub fn beta_hot(&self) -> f64 {
        self.beta_hot
    }

    /// Cold (final) β.
    pub fn beta_cold(&self) -> f64 {
        self.beta_cold
    }

    /// Number of steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// β at step `k ∈ [0, steps)`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= steps`.
    pub fn beta_at(&self, k: usize) -> f64 {
        assert!(k < self.steps, "step {k} out of range");
        if self.steps == 1 {
            return self.beta_cold;
        }
        let t = k as f64 / (self.steps - 1) as f64;
        self.beta_hot * (self.beta_cold / self.beta_hot).powf(t)
    }

    /// Iterates over all β values hot → cold.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.steps).map(move |k| self.beta_at(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::QuboBuilder;

    #[test]
    fn geometric_endpoints() {
        let s = BetaSchedule::geometric(0.5, 50.0, 10);
        assert!((s.beta_at(0) - 0.5).abs() < 1e-12);
        assert!((s.beta_at(9) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_increasing() {
        let s = BetaSchedule::geometric(0.01, 100.0, 64);
        let mut prev = 0.0;
        for b in s.iter() {
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn single_step_is_cold() {
        let s = BetaSchedule::geometric(1.0, 9.0, 1);
        assert_eq!(s.beta_at(0), 9.0);
    }

    #[test]
    fn auto_scales_inversely_with_coefficients() {
        let mut b1 = QuboBuilder::new(2);
        b1.add_quadratic(0, 1, 1.0);
        let small = BetaSchedule::auto(&b1.build(), 4);

        let mut b2 = QuboBuilder::new(2);
        b2.add_quadratic(0, 1, 100.0);
        let large = BetaSchedule::auto(&b2.build(), 4);

        // Hotter (smaller β) start for larger coefficients.
        assert!(large.beta_hot() < small.beta_hot());
        assert!((small.beta_hot() / large.beta_hot() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn auto_zero_model_fallback() {
        let empty = QuboBuilder::new(3).build();
        let s = BetaSchedule::auto(&empty, 5);
        assert_eq!(s.beta_hot(), 0.1);
        assert_eq!(s.beta_cold(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_beta() {
        let _ = BetaSchedule::geometric(0.0, 1.0, 2);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn rejects_zero_steps() {
        let _ = BetaSchedule::geometric(0.1, 1.0, 0);
    }
}
