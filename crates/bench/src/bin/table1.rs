//! Regenerates paper Table 1: normalised optimality gap at trials #3 and
//! #20 for {DA, Qbsolv} × {synthetic, realworld} × {QROSS, TPE, BO,
//! Random}.

use bench::experiments::table1;
use bench::{row, run_experiment};

fn main() {
    run_experiment("table1", table1, |result| {
        println!("Table 1 — optimality gap, normalised");
        let widths = [8, 8, 10, 10, 10, 10];
        println!(
            "{}",
            row(
                &[
                    "solver".into(),
                    "method".into(),
                    "syn #3".into(),
                    "syn #20".into(),
                    "real #3".into(),
                    "real #20".into(),
                ],
                &widths
            )
        );
        for r in &result.rows {
            println!(
                "{}",
                row(
                    &[
                        r.solver.clone(),
                        r.method.clone(),
                        format!("{:.1}%", r.synthetic_3 * 100.0),
                        format!("{:.1}%", r.synthetic_20 * 100.0),
                        format!("{:.1}%", r.realworld_3 * 100.0),
                        format!("{:.1}%", r.realworld_20 * 100.0),
                    ],
                    &widths
                )
            );
        }
        // Shape check mirrored from the paper: QROSS leads each block.
        for solver in ["da", "qbsolv"] {
            let block: Vec<_> = result.rows.iter().filter(|r| r.solver == solver).collect();
            let qross = block
                .iter()
                .find(|r| r.method == "qross")
                .expect("qross row");
            let best_baseline = block
                .iter()
                .filter(|r| r.method != "qross")
                .map(|r| r.synthetic_3)
                .fold(f64::INFINITY, f64::min);
            println!(
                "{solver}: qross syn#3 = {:.3} vs best baseline {:.3} ({})",
                qross.synthetic_3,
                best_baseline,
                if qross.synthetic_3 <= best_baseline {
                    "qross leads"
                } else {
                    "baseline leads at this scale"
                }
            );
        }
    });
}
