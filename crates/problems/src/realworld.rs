//! Out-of-distribution "real-world" benchmark set.
//!
//! The paper's Fig. 4 evaluates on eleven TSPLIB instances with
//! `14 ≤ N < 90`. The genuine TSPLIB data files cannot be bundled in this
//! offline reproduction (see DESIGN.md §2), so this module provides a
//! deterministic stand-in set with the properties the experiment actually
//! relies on:
//!
//! * the same *sizes* (14–76 cities, straddling the 20–30 range the
//!   surrogate is trained on → genuinely out-of-distribution);
//! * diverse *spatial structure* (clusters, rings, grids, road-like
//!   corridors, heavy-tailed spreads) unlike the synthetic training
//!   distribution of appendix D;
//! * fixed content across runs (seeded generators, no configuration).
//!
//! To run the experiment against the original data instead, place the
//! `.tsp` files in a directory and load them with
//! [`crate::tsplib::load_tsplib_file`]; the harness accepts either source.

use rand::Rng;

use mathkit::rng::derive_rng;

use crate::tsp::TspInstance;

/// Sizes of the eleven stand-in instances (mirroring the paper's range
/// `14 ≤ N < 90`).
pub const SIZES: [usize; 11] = [14, 16, 22, 26, 29, 35, 42, 48, 52, 70, 76];

/// Root seed fixing the content of the benchmark set.
const ROOT_SEED: u64 = 0x7720_251b;

/// Returns the eleven-instance out-of-distribution benchmark set.
///
/// Deterministic: every call returns identical instances.
///
/// # Examples
///
/// ```
/// use problems::realworld::benchmark_set;
/// let set = benchmark_set();
/// assert_eq!(set.len(), 11);
/// assert_eq!(set[0].num_cities(), 14);
/// assert_eq!(set[10].num_cities(), 76);
/// ```
pub fn benchmark_set() -> Vec<TspInstance> {
    SIZES
        .iter()
        .enumerate()
        .map(|(k, &n)| make_instance(k, n))
        .collect()
}

/// Returns the subset with at most `max_cities` cities (the `quick`
/// experiment scale keeps QUBO sizes tractable on a laptop).
pub fn benchmark_subset(max_cities: usize) -> Vec<TspInstance> {
    benchmark_set()
        .into_iter()
        .filter(|i| i.num_cities() <= max_cities)
        .collect()
}

fn make_instance(index: usize, n: usize) -> TspInstance {
    let mut rng = derive_rng(ROOT_SEED, index as u64);
    let style = index % 5;
    let coords: Vec<(f64, f64)> = match style {
        // City clusters: k dense blobs, like regional road networks.
        0 => {
            let k = 2 + n / 12;
            let centers: Vec<(f64, f64)> = (0..k)
                .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            (0..n)
                .map(|_| {
                    let (cx, cy) = centers[rng.gen_range(0..k)];
                    (cx + rng.gen_range(-6.0..6.0), cy + rng.gen_range(-6.0..6.0))
                })
                .collect()
        }
        // Ring with jitter: circular drilling patterns.
        1 => (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                let r = 40.0 + rng.gen_range(-5.0..5.0);
                (50.0 + r * t.cos(), 50.0 + r * t.sin())
            })
            .collect(),
        // Perturbed grid: circuit-board style drilling instances.
        2 => {
            let side = (n as f64).sqrt().ceil() as usize;
            (0..n)
                .map(|i| {
                    let gx = (i % side) as f64 * 10.0;
                    let gy = (i / side) as f64 * 10.0;
                    (gx + rng.gen_range(-2.0..2.0), gy + rng.gen_range(-2.0..2.0))
                })
                .collect()
        }
        // Corridor: towns along a winding road.
        3 => (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * 100.0;
                (
                    t + rng.gen_range(-3.0..3.0),
                    20.0 * (t * 0.08).sin() + rng.gen_range(-4.0..4.0),
                )
            })
            .collect(),
        // Heavy-tailed spread: a dense core plus remote outliers.
        _ => (0..n)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let r = 5.0 * (-u1.ln()); // exponential radius
                let t = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
                (50.0 + r * t.cos(), 50.0 + r * t.sin())
            })
            .collect(),
    };
    let style_tag = ["clust", "ring", "grid", "road", "tail"][style];
    TspInstance::from_coords(&format!("rw{n}_{style_tag}"), &coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = benchmark_set();
        let b = benchmark_set();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn sizes_match_spec() {
        let set = benchmark_set();
        let sizes: Vec<usize> = set.iter().map(|i| i.num_cities()).collect();
        assert_eq!(sizes, SIZES.to_vec());
        // paper range: 14 <= N < 90
        assert!(sizes.iter().all(|&n| (14..90).contains(&n)));
    }

    #[test]
    fn subset_filters() {
        let small = benchmark_subset(30);
        assert!(!small.is_empty());
        assert!(small.iter().all(|i| i.num_cities() <= 30));
        assert_eq!(benchmark_subset(5).len(), 0);
    }

    #[test]
    fn instances_are_valid_metrics() {
        for inst in benchmark_set() {
            let n = inst.num_cities();
            for i in 0..n {
                assert_eq!(inst.distance(i, i), 0.0);
                for j in 0..n {
                    assert!(inst.distance(i, j).is_finite());
                    assert_eq!(inst.distance(i, j), inst.distance(j, i));
                    if i != j {
                        assert!(inst.distance(i, j) > 0.0, "{}: dup city", inst.name());
                    }
                }
            }
        }
    }

    #[test]
    fn styles_are_structurally_distinct() {
        let set = benchmark_set();
        // The ring instance's distances concentrate near the chord
        // distribution; compare its coefficient of variation against the
        // cluster instance to check the generators really differ.
        let cv = |inst: &TspInstance| {
            let mut v = Vec::new();
            for i in 0..inst.num_cities() {
                for j in (i + 1)..inst.num_cities() {
                    v.push(inst.distance(i, j));
                }
            }
            mathkit::stats::std_population(&v) / mathkit::stats::mean(&v)
        };
        let cv0 = cv(&set[0]);
        let cv1 = cv(&set[1]);
        assert!((cv0 - cv1).abs() > 0.01, "generators look identical");
    }

    #[test]
    fn names_encode_style() {
        let set = benchmark_set();
        assert!(set[0].name().starts_with("rw14_"));
        assert!(set
            .iter()
            .all(|i| i.name().starts_with("rw") && i.name().contains('_')));
    }
}
