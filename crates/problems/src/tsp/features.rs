//! Statistical graph-level features of a TSP instance.
//!
//! This is the `tsp` family's featurization recipe: 24 deterministic
//! statistics of the distance matrix — size features, distance moments
//! and quantiles, nearest-neighbour statistics, minimum-spanning-tree
//! weight and a greedy-tour estimate. The function lives here (rather
//! than in `core`) so the problem-family layer owns it; the core
//! `StatisticalFeaturizer` delegates to [`statistical_features`] and is
//! bit-for-bit identical to the pre-refactor extractor.

use mathkit::stats;

use super::TspInstance;

/// Width of the vectors produced by [`statistical_features`].
pub const STAT_DIM: usize = 24;

/// Extracts the 24 statistical features of `instance`.
///
/// Total on any input: degenerate (0/1-city) instances produce an
/// all-zero vector with the size features filled in, and NaN distances
/// degrade to NaN features rather than panicking — a serving process
/// must survive hostile uploads.
pub fn statistical_features(instance: &TspInstance) -> Vec<f64> {
    let n = instance.num_cities();
    if n < 2 {
        // Degenerate instance: no pairwise distances exist. Produce a
        // well-defined all-zero vector (size features filled in) so a
        // serving process never panics on a hostile upload.
        let mut v = vec![0.0; STAT_DIM];
        v[0] = n as f64;
        v[1] = (n.max(1) as f64).ln();
        return v;
    }
    let mut off_diag: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            off_diag.push(instance.distance(i, j));
        }
    }
    // total_cmp, not partial_cmp: a NaN distance (e.g. `NaN`
    // coordinates in an uploaded file) must degrade to NaN features,
    // never take the featurizer — and the serving process — down.
    off_diag.sort_by(f64::total_cmp);
    let q = |p: f64| stats::quantile_sorted(&off_diag, p);
    let mean = stats::mean(&off_diag);
    let std = stats::std_population(&off_diag);

    // Nearest-neighbour distances per city.
    let mut nn: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| instance.distance(i, j))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    nn.sort_by(f64::total_cmp);
    // Farthest-neighbour (eccentricity) per city.
    let ecc: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| instance.distance(i, j))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();

    let mst = mst_weight(instance);
    let (_, greedy_len) = super::heuristics::reference_tour_shallow(instance);

    vec![
        n as f64,
        (n as f64).ln(),
        mean,
        std,
        if mean.abs() > 1e-12 { std / mean } else { 0.0 }, // coefficient of variation
        q(0.0),
        q(0.1),
        q(0.25),
        q(0.5),
        q(0.75),
        q(0.9),
        q(1.0),
        stats::mean(&nn),
        stats::std_population(&nn),
        nn.first().copied().unwrap_or(0.0),
        nn.last().copied().unwrap_or(0.0),
        stats::mean(&ecc),
        stats::std_population(&ecc),
        mst,
        mst / n as f64,
        greedy_len,
        greedy_len / n as f64,
        // skewness and excess-kurtosis of the distance distribution
        central_moment(&off_diag, mean, 3) / std.max(1e-12).powi(3),
        central_moment(&off_diag, mean, 4) / std.max(1e-12).powi(4) - 3.0,
    ]
}

fn central_moment(xs: &[f64], mean: f64, k: i32) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|x| (x - mean).powi(k)).sum::<f64>() / xs.len() as f64
}

/// Prim's MST total weight over the complete distance graph, O(n²).
#[allow(clippy::needless_range_loop)] // j indexes best/in_tree and distances
pub fn mst_weight(instance: &TspInstance) -> f64 {
    let n = instance.num_cities();
    if n < 2 {
        return 0.0;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    in_tree[0] = true;
    for j in 1..n {
        best[j] = instance.distance(0, j);
    }
    let mut total = 0.0;
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best[j] < pick_d {
                pick_d = best[j];
                pick = j;
            }
        }
        if pick == usize::MAX {
            // Every remaining frontier distance is NaN (or +inf): no
            // comparison succeeded. Absorb the first remaining vertex at
            // its (non-finite) cost instead of indexing with the
            // sentinel — the weight degrades to NaN, extraction stays
            // total.
            pick = (0..n).find(|&j| !in_tree[j]).expect("vertices remain");
            pick_d = best[pick];
        }
        total += pick_d;
        in_tree[pick] = true;
        for j in 0..n {
            if !in_tree[j] {
                best[j] = best[j].min(instance.distance(pick, j));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_matches_constant() {
        let inst = TspInstance::from_coords("t", &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (2.0, 2.0)]);
        assert_eq!(statistical_features(&inst).len(), STAT_DIM);
    }

    #[test]
    fn mst_weight_known() {
        // Line of 4 cities at distance 1: MST = 3.
        let line = TspInstance::from_coords("l", &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert!((mst_weight(&line) - 3.0).abs() < 1e-12);
    }
}
