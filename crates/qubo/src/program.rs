//! Linear-equality-constrained binary programs and their penalty relaxation.
//!
//! The paper's canonical form (§1) is
//!
//! `min x'Qx  subject to  Cx = d,  x ∈ {0,1}^n`
//!
//! relaxed to the QUBO `min x'Qx + A·‖Cx − d‖²`. Expanding one constraint
//! `(Σ_k c_k x_k − d)²` over binaries gives
//!
//! `Σ_k (c_k² − 2·d·c_k) x_k + 2·Σ_{k<l} c_k c_l x_k x_l + d²`,
//!
//! which [`ConstrainedBinaryProgram::to_qubo`] adds to the objective with
//! weight `A`.

use serde::{Deserialize, Serialize};

use crate::model::{QuboBuilder, QuboModel};
use crate::QuboError;

/// One linear equality constraint `Σ_k coeffs[k].1 · x_{coeffs[k].0} = rhs`.
///
/// # Examples
///
/// ```
/// use qubo::LinearConstraint;
/// // x0 + x1 + x2 = 1 (one-hot)
/// let c = LinearConstraint::new(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 1.0);
/// assert_eq!(c.violation(&[0, 1, 0]), 0.0);
/// assert_eq!(c.violation(&[1, 1, 0]), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearConstraint {
    coeffs: Vec<(usize, f64)>,
    rhs: f64,
}

impl LinearConstraint {
    /// Creates a constraint from sparse coefficients and a right-hand side.
    pub fn new(coeffs: Vec<(usize, f64)>, rhs: f64) -> Self {
        LinearConstraint { coeffs, rhs }
    }

    /// Convenience constructor for the ubiquitous one-hot constraint
    /// `Σ_{i ∈ vars} x_i = 1`.
    pub fn one_hot<I: IntoIterator<Item = usize>>(vars: I) -> Self {
        LinearConstraint {
            coeffs: vars.into_iter().map(|v| (v, 1.0)).collect(),
            rhs: 1.0,
        }
    }

    /// Sparse coefficient view.
    pub fn coeffs(&self) -> &[(usize, f64)] {
        &self.coeffs
    }

    /// Right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Signed residual `Σ c_k x_k − rhs` of an assignment.
    ///
    /// # Panics
    ///
    /// Panics if a variable index exceeds the assignment length.
    pub fn residual(&self, x: &[u8]) -> f64 {
        let mut acc = -self.rhs;
        for &(k, c) in &self.coeffs {
            acc += c * x[k] as f64;
        }
        acc
    }

    /// Absolute residual (0 iff satisfied).
    pub fn violation(&self, x: &[u8]) -> f64 {
        self.residual(x).abs()
    }

    /// Whether the assignment satisfies the constraint exactly (with a
    /// small tolerance for float accumulation).
    pub fn is_satisfied(&self, x: &[u8]) -> bool {
        self.violation(x) < 1e-9
    }
}

/// A binary program `min x'Qx` over `{0,1}^n` with linear equality
/// constraints, relaxable to QUBO with a penalty parameter `A`.
///
/// # Examples
///
/// ```
/// use qubo::{ConstrainedBinaryProgram, LinearConstraint, QuboBuilder};
/// // minimise -x0 - x1 subject to x0 + x1 = 1
/// let mut obj = QuboBuilder::new(2);
/// obj.add_linear(0, -1.0);
/// obj.add_linear(1, -1.0);
/// let mut prog = ConstrainedBinaryProgram::new(obj.build());
/// prog.add_constraint(LinearConstraint::one_hot([0, 1]));
/// let q = prog.to_qubo(10.0);
/// // feasible states have penalty 0
/// assert!((q.energy(&[1, 0]) - (-1.0)).abs() < 1e-12);
/// // infeasible states pay the penalty: x = [1,1] → obj -2, penalty 10
/// assert!((q.energy(&[1, 1]) - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstrainedBinaryProgram {
    objective: QuboModel,
    constraints: Vec<LinearConstraint>,
}

impl ConstrainedBinaryProgram {
    /// Wraps an unconstrained objective.
    pub fn new(objective: QuboModel) -> Self {
        ConstrainedBinaryProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds one equality constraint.
    pub fn add_constraint(&mut self, c: LinearConstraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// The unpenalised objective.
    pub fn objective(&self) -> &QuboModel {
        &self.objective
    }

    /// All constraints.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Number of binary variables.
    pub fn num_vars(&self) -> usize {
        self.objective.num_vars()
    }

    /// Objective value of an assignment (ignoring constraints).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn objective_value(&self, x: &[u8]) -> f64 {
        self.objective.energy(x)
    }

    /// Total squared constraint violation `‖Cx − d‖²`.
    pub fn penalty_value(&self, x: &[u8]) -> f64 {
        self.constraints
            .iter()
            .map(|c| {
                let r = c.residual(x);
                r * r
            })
            .sum()
    }

    /// Whether every constraint is satisfied.
    pub fn is_feasible(&self, x: &[u8]) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(x))
    }

    /// Builds the penalty relaxation `x'Qx + relaxation·‖Cx − d‖²`.
    ///
    /// # Panics
    ///
    /// Panics if any constraint references a variable out of range (checked
    /// variant: [`ConstrainedBinaryProgram::try_to_qubo`]).
    pub fn to_qubo(&self, relaxation: f64) -> QuboModel {
        self.try_to_qubo(relaxation)
            .expect("constraint variable out of range")
    }

    /// Checked penalty relaxation.
    ///
    /// # Errors
    ///
    /// * [`QuboError::VariableOutOfRange`] if a constraint references an
    ///   unknown variable.
    /// * [`QuboError::NonFiniteCoefficient`] if `relaxation` is NaN or
    ///   infinite.
    pub fn try_to_qubo(&self, relaxation: f64) -> Result<QuboModel, QuboError> {
        if !relaxation.is_finite() {
            return Err(QuboError::NonFiniteCoefficient);
        }
        let n = self.num_vars();
        let mut b = QuboBuilder::new(n);
        b.add_offset(self.objective.offset());
        for i in 0..n {
            let l = self.objective.linear(i);
            if l != 0.0 {
                b.add_linear(i, l);
            }
        }
        for (i, j, w) in self.objective.couplings() {
            b.add_quadratic(i, j, w);
        }
        for c in &self.constraints {
            for &(k, _) in c.coeffs() {
                if k >= n {
                    return Err(QuboError::VariableOutOfRange {
                        index: k,
                        num_vars: n,
                    });
                }
            }
            // (Σ c_k x_k − d)² = Σ (c_k² − 2 d c_k) x_k + 2 Σ_{k<l} c_k c_l x_k x_l + d²
            let d = c.rhs();
            b.add_offset(relaxation * d * d);
            let coeffs = c.coeffs();
            for (a_idx, &(k, ck)) in coeffs.iter().enumerate() {
                b.add_linear(k, relaxation * (ck * ck - 2.0 * d * ck));
                for &(l, cl) in coeffs.iter().skip(a_idx + 1) {
                    b.add_quadratic(k, l, relaxation * 2.0 * ck * cl);
                }
            }
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuboBuilder;

    fn one_hot_program() -> ConstrainedBinaryProgram {
        // minimise x0 + 2 x1 + 3 x2 subject to exactly one variable on.
        let mut obj = QuboBuilder::new(3);
        obj.add_linear(0, 1.0);
        obj.add_linear(1, 2.0);
        obj.add_linear(2, 3.0);
        let mut p = ConstrainedBinaryProgram::new(obj.build());
        p.add_constraint(LinearConstraint::one_hot([0, 1, 2]));
        p
    }

    #[test]
    fn penalty_identity_exhaustive() {
        // QUBO energy == objective + A * penalty for every assignment.
        let p = one_hot_program();
        for a in [0.5, 1.0, 7.25] {
            let q = p.to_qubo(a);
            for bits in 0..8u8 {
                let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
                let want = p.objective_value(&x) + a * p.penalty_value(&x);
                assert!((q.energy(&x) - want).abs() < 1e-12, "A={a}, x={x:?}");
            }
        }
    }

    #[test]
    fn feasible_states_have_zero_penalty() {
        let p = one_hot_program();
        for x in [[1, 0, 0], [0, 1, 0], [0, 0, 1]] {
            assert!(p.is_feasible(&x));
            assert_eq!(p.penalty_value(&x), 0.0);
        }
        assert!(!p.is_feasible(&[0, 0, 0]));
        assert!(!p.is_feasible(&[1, 1, 0]));
    }

    #[test]
    fn penalty_counts_square_of_residual() {
        let p = one_hot_program();
        // all three on: residual 2, squared 4
        assert_eq!(p.penalty_value(&[1, 1, 1]), 4.0);
        // none on: residual -1, squared 1
        assert_eq!(p.penalty_value(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn larger_relaxation_never_reduces_infeasible_energy() {
        let p = one_hot_program();
        let q1 = p.to_qubo(1.0);
        let q2 = p.to_qubo(5.0);
        for bits in 0..8u8 {
            let x = [bits & 1, (bits >> 1) & 1, (bits >> 2) & 1];
            if !p.is_feasible(&x) {
                assert!(q2.energy(&x) > q1.energy(&x), "x={x:?}");
            } else {
                assert!((q2.energy(&x) - q1.energy(&x)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_constraint_expansion() {
        // 2 x0 + 3 x1 = 3 → only x = [0,1] feasible.
        let obj = QuboBuilder::new(2).build();
        let mut p = ConstrainedBinaryProgram::new(obj);
        p.add_constraint(LinearConstraint::new(vec![(0, 2.0), (1, 3.0)], 3.0));
        let q = p.to_qubo(1.0);
        assert!((q.energy(&[0, 1]) - 0.0).abs() < 1e-12);
        assert!((q.energy(&[0, 0]) - 9.0).abs() < 1e-12); // residual -3
        assert!((q.energy(&[1, 0]) - 1.0).abs() < 1e-12); // residual -1
        assert!((q.energy(&[1, 1]) - 4.0).abs() < 1e-12); // residual 2
    }

    #[test]
    fn out_of_range_constraint_rejected() {
        let obj = QuboBuilder::new(2).build();
        let mut p = ConstrainedBinaryProgram::new(obj);
        p.add_constraint(LinearConstraint::one_hot([0, 5]));
        assert!(matches!(
            p.try_to_qubo(1.0),
            Err(QuboError::VariableOutOfRange { .. })
        ));
    }

    #[test]
    fn non_finite_relaxation_rejected() {
        let p = one_hot_program();
        assert!(matches!(
            p.try_to_qubo(f64::INFINITY),
            Err(QuboError::NonFiniteCoefficient)
        ));
        assert!(matches!(
            p.try_to_qubo(f64::NAN),
            Err(QuboError::NonFiniteCoefficient)
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let p = one_hot_program();
        let json = serde_json::to_string(&p).unwrap();
        let back: ConstrainedBinaryProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
