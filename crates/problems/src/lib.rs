//! # problems — constrained combinatorial problems and QUBO encodings
//!
//! The paper's case study is the Travelling Salesman Problem (§4), its
//! appendix uses Minimum Vertex Cover (appendix B), and it confirms the
//! core hypothesis on QAPLIB (§3.1 fn. 2). This crate implements all
//! three problem families end to end:
//!
//! * [`tsp`] — instances, the synthetic generators of appendix D, the n²
//!   QUBO encoding of Lucas (2014) used in §4.1, the MVODM pre-processing
//!   of appendix E, and classical reference heuristics (nearest-neighbour,
//!   2-opt, Or-opt) that provide the "near-optimal fitness" the paper
//!   normalises against;
//! * [`tsplib`] — a TSPLIB95 parser (EUC_2D, CEIL_2D, MAN_2D, MAX_2D, ATT,
//!   GEO and EXPLICIT matrices);
//! * [`realworld`] — the out-of-distribution benchmark set standing in for
//!   the paper's 11 TSPLIB instances (see DESIGN.md: the original data
//!   files are not redistributable here, so deterministic generators with
//!   matching sizes and diverse spatial structure are used instead — load
//!   genuine `.tsp` files through [`tsplib`] when available);
//! * [`mvc`] — weighted Minimum Vertex Cover with the appendix-B QUBO
//!   penalty form;
//! * [`qap`] — Quadratic Assignment Problem with the permutation QUBO
//!   encoding.
//!
//! All encodings implement [`RelaxableProblem`], the interface the QROSS
//! pipeline consumes: build a QUBO for a relaxation parameter `A`, test
//! feasibility of solver outputs, and score feasible solutions in original
//! objective units.

pub mod mvc;
pub mod qap;
pub mod realworld;
pub mod tsp;
pub mod tsplib;

pub use mvc::MvcInstance;
pub use qap::QapInstance;
pub use tsp::{TspEncoding, TspInstance};

use qubo::QuboModel;

/// A constrained problem relaxed into QUBO form with a penalty parameter.
///
/// This is the contract between problem encodings and the QROSS pipeline:
/// the surrogate learns `Pf(g, A)` and energy statistics of the QUBO built
/// by [`RelaxableProblem::to_qubo`], while [`RelaxableProblem::fitness`]
/// scores feasible assignments in the *original* objective units (for TSP,
/// tour length under the unmodified distance matrix — appendix E).
pub trait RelaxableProblem: Send + Sync {
    /// Human-readable instance identifier.
    fn name(&self) -> &str;

    /// Number of binary variables of the QUBO encoding.
    fn num_vars(&self) -> usize;

    /// Builds the penalty relaxation for parameter `relaxation`.
    fn to_qubo(&self, relaxation: f64) -> QuboModel;

    /// Whether `x` satisfies every constraint of the original problem.
    fn is_feasible(&self, x: &[u8]) -> bool;

    /// Original-units objective of `x`, or `None` when `x` is infeasible.
    fn fitness(&self, x: &[u8]) -> Option<f64>;
}

/// Errors from problem construction and data parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// A TSPLIB file could not be parsed.
    Parse {
        /// line number (1-based) where parsing failed, when known
        line: usize,
        /// explanation
        message: String,
    },
    /// The instance data is structurally invalid (wrong matrix shape,
    /// negative dimension, unknown edge-weight type, ...).
    InvalidInstance {
        /// explanation
        message: String,
    },
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ProblemError::InvalidInstance { message } => {
                write!(f, "invalid instance: {message}")
            }
        }
    }
}

impl std::error::Error for ProblemError {}
