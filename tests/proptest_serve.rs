//! Property-based tests for the serving path's core contract:
//! `Surrogate::predict_many` (the micro-batcher's primitive) is
//! **bit-identical** — exact `f64` equality, not epsilon-close — to
//! per-row `Surrogate::predict`, for arbitrary surrogates, arbitrary
//! query mixes and arbitrary batch shapes. This is what makes batching
//! invisible to clients: whatever requests happen to share a forward
//! pass, every response is exactly what a sequential server would send.

use proptest::prelude::*;

use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::surrogate::{Surrogate, SurrogateState};

/// A surrogate with seed-derived weights and property-drawn scalers —
/// covers wildly different network weights and normalisations without
/// shipping megabytes of drawn parameters per case.
fn surrogate_strategy() -> impl Strategy<Value = Surrogate> {
    (
        1usize..6,      // feature width
        4usize..24,     // hidden width
        0u64..u64::MAX, // weight seed
        -3.0..3.0f64,   // scaler mean magnitude
        0.05..4.0f64,   // scaler std
    )
        .prop_map(|(feat_dim, hidden, seed, mean, std)| {
            let input = feat_dim + 1;
            let state = SurrogateState {
                pf_net: MlpBuilder::new(input)
                    .dense(hidden)
                    .relu()
                    .dense(1)
                    .sigmoid()
                    .build(seed)
                    .to_state(),
                e_net: MlpBuilder::new(input)
                    .dense(hidden)
                    .tanh()
                    .dense(2)
                    .build(seed ^ 0xABCD)
                    .to_state(),
                scalers: Scalers {
                    features: (0..feat_dim)
                        .map(|c| ZScore {
                            mean: mean * (c as f64 + 1.0),
                            std,
                        })
                        .collect(),
                    log_a: ZScore { mean: 0.0, std },
                    e_avg: ZScore { mean, std },
                    e_std: ZScore {
                        mean: mean.abs(),
                        std,
                    },
                },
            };
            Surrogate::from_state(state).expect("consistent state")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// predict_many == map(predict), bit for bit, for any surrogate and
    /// any query batch.
    #[test]
    fn predict_many_is_bit_identical_to_predict(
        sur in surrogate_strategy(),
        raw_queries in proptest::collection::vec(
            (proptest::collection::vec(-50.0..50.0f64, 6), 1e-3..1e3f64),
            1..40,
        ),
    ) {
        let feat_dim = sur.scalers().input_dim() - 1;
        let queries: Vec<(Vec<f64>, f64)> = raw_queries
            .into_iter()
            .map(|(mut f, a)| {
                f.truncate(feat_dim);
                (f, a)
            })
            .collect();
        let refs: Vec<(&[f64], f64)> =
            queries.iter().map(|(f, a)| (f.as_slice(), *a)).collect();
        let batched = sur.predict_many(&refs);
        prop_assert_eq!(batched.len(), refs.len());
        for (k, &(f, a)) in refs.iter().enumerate() {
            let single = sur.predict(f, a);
            prop_assert_eq!(
                batched[k].pf.to_bits(), single.pf.to_bits(),
                "Pf changed bits at row {} of {}", k, refs.len()
            );
            prop_assert_eq!(batched[k].e_avg.to_bits(), single.e_avg.to_bits());
            prop_assert_eq!(batched[k].e_std.to_bits(), single.e_std.to_bits());
        }
    }

    /// Splitting one batch at any point and concatenating the halves
    /// yields the same bits — the engine may cut batches anywhere.
    #[test]
    fn batch_boundaries_are_invisible(
        sur in surrogate_strategy(),
        a_grid in proptest::collection::vec(1e-2..1e2f64, 2..24),
        split in 0usize..24,
        feature_scale in -10.0..10.0f64,
    ) {
        let feat_dim = sur.scalers().input_dim() - 1;
        let features: Vec<f64> =
            (0..feat_dim).map(|c| feature_scale * (c as f64 - 1.0)).collect();
        let refs: Vec<(&[f64], f64)> =
            a_grid.iter().map(|&a| (features.as_slice(), a)).collect();
        let whole = sur.predict_many(&refs);
        let cut = split.min(refs.len());
        let mut parts = sur.predict_many(&refs[..cut]);
        parts.extend(sur.predict_many(&refs[cut..]));
        prop_assert_eq!(&whole, &parts);
        // And predict_grid (one instance, many A) agrees with both.
        let grid = sur.predict_grid(&features, &a_grid);
        prop_assert_eq!(&whole, &grid);
    }
}
