//! Batch results returned by QUBO solvers.
//!
//! Heuristic QUBO solvers are stochastic and "usually return a batch of
//! solutions and corresponding objective energy" (paper §3.3). The solver
//! surrogate is trained on exactly three statistics of such batches — the
//! probability of feasibility `Pf` (eq. 1), the mean energy `Eavg` and the
//! standard deviation `Estd` — all of which [`SampleSet`] computes.

use serde::{Deserialize, Serialize};

use mathkit::stats;

/// One solver solution: an assignment and its energy on the *true* model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// binary assignment (entries are 0 or 1)
    pub assignment: Vec<u8>,
    /// energy of [`Sample::assignment`] on the unperturbed input model
    pub energy: f64,
}

/// A batch of solver solutions, kept sorted by ascending energy.
///
/// # Examples
///
/// ```
/// use solvers::{Sample, SampleSet};
/// let set = SampleSet::from_samples(vec![
///     Sample { assignment: vec![1, 0], energy: 3.0 },
///     Sample { assignment: vec![0, 1], energy: 1.0 },
/// ]);
/// assert_eq!(set.best().unwrap().energy, 1.0);
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<Sample>,
}

impl SampleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
        }
    }

    /// Builds a set from samples, sorting by ascending energy.
    pub fn from_samples(mut samples: Vec<Sample>) -> Self {
        samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        SampleSet { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Lowest-energy sample, if any.
    pub fn best(&self) -> Option<&Sample> {
        self.samples.first()
    }

    /// All samples in ascending-energy order.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Energies in ascending order.
    pub fn energies(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.energy).collect()
    }

    /// Batch mean energy (`Eavg` in the paper); `0.0` for an empty batch.
    pub fn mean_energy(&self) -> f64 {
        stats::mean(&self.energies())
    }

    /// Batch energy standard deviation (`Estd`, population convention);
    /// `0.0` for an empty batch.
    pub fn std_energy(&self) -> f64 {
        stats::std_population(&self.energies())
    }

    /// Fraction of samples satisfying `is_feasible` — the paper's `Pf`
    /// estimator (eq. 1). Returns `0.0` for an empty batch.
    pub fn feasibility_fraction<F: Fn(&[u8]) -> bool>(&self, is_feasible: F) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let feasible = self
            .samples
            .iter()
            .filter(|s| is_feasible(&s.assignment))
            .count();
        feasible as f64 / self.samples.len() as f64
    }

    /// Lowest energy among samples satisfying `is_feasible` (the paper's
    /// *fitness* of a trial), or `None` when no sample is feasible.
    pub fn best_feasible<F: Fn(&[u8]) -> bool>(&self, is_feasible: F) -> Option<&Sample> {
        self.samples.iter().find(|s| is_feasible(&s.assignment))
    }

    /// Merges another batch into this one, preserving the energy order.
    pub fn merge(&mut self, other: SampleSet) {
        self.samples.extend(other.samples);
        self.samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    /// Consumes the set and returns the sorted samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

impl IntoIterator for SampleSet {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a SampleSet {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

impl FromIterator<Sample> for SampleSet {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        SampleSet::from_samples(iter.into_iter().collect())
    }
}

impl Extend<Sample> for SampleSet {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
        self.samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set3() -> SampleSet {
        SampleSet::from_samples(vec![
            Sample {
                assignment: vec![1, 1],
                energy: 5.0,
            },
            Sample {
                assignment: vec![0, 1],
                energy: -1.0,
            },
            Sample {
                assignment: vec![1, 0],
                energy: 2.0,
            },
        ])
    }

    #[test]
    fn sorted_by_energy() {
        let s = set3();
        let e = s.energies();
        assert_eq!(e, vec![-1.0, 2.0, 5.0]);
        assert_eq!(s.best().unwrap().assignment, vec![0, 1]);
    }

    #[test]
    fn statistics() {
        let s = set3();
        assert!((s.mean_energy() - 2.0).abs() < 1e-12);
        let expect_std = ((9.0 + 0.0 + 9.0) / 3.0_f64).sqrt();
        assert!((s.std_energy() - expect_std).abs() < 1e-12);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = SampleSet::new();
        assert!(s.is_empty());
        assert!(s.best().is_none());
        assert_eq!(s.mean_energy(), 0.0);
        assert_eq!(s.feasibility_fraction(|_| true), 0.0);
        assert!(s.best_feasible(|_| true).is_none());
    }

    #[test]
    fn feasibility_fraction_counts() {
        let s = set3();
        // "feasible" = first bit is 0
        let pf = s.feasibility_fraction(|x| x[0] == 0);
        assert!((pf - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.feasibility_fraction(|_| true), 1.0);
        assert_eq!(s.feasibility_fraction(|_| false), 0.0);
    }

    #[test]
    fn best_feasible_respects_order() {
        let s = set3();
        // Feasible = energy >= 0 here (first bit 1): best is energy 2.0.
        let best = s.best_feasible(|x| x[0] == 1).unwrap();
        assert_eq!(best.energy, 2.0);
    }

    #[test]
    fn merge_keeps_sorted() {
        let mut a = set3();
        let b = SampleSet::from_samples(vec![Sample {
            assignment: vec![0, 0],
            energy: -10.0,
        }]);
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.best().unwrap().energy, -10.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: SampleSet = (0..3)
            .map(|i| Sample {
                assignment: vec![i as u8 % 2],
                energy: -(i as f64),
            })
            .collect();
        assert_eq!(s.best().unwrap().energy, -2.0);
        s.extend([Sample {
            assignment: vec![1],
            energy: -5.0,
        }]);
        assert_eq!(s.best().unwrap().energy, -5.0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = set3();
        let j = serde_json::to_string(&s).unwrap();
        let back: SampleSet = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
