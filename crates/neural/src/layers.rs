//! Layers with exact backpropagation.
//!
//! A [`Layer`] transforms a batch (rows = samples) in `forward` and, given
//! the loss gradient w.r.t. its output, produces the gradient w.r.t. its
//! input in `backward` while accumulating parameter gradients. Optimisers
//! traverse parameters through [`Layer::visit_params`] in a stable order.

use mathkit::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Serialisable layer description used for model persistence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// affine layer with the given weight and bias values
    Dense {
        /// input width
        input: usize,
        /// output width
        output: usize,
        /// row-major `input x output` weights
        weights: Vec<f64>,
        /// `output` biases
        bias: Vec<f64>,
    },
    /// rectified linear activation
    Relu,
    /// logistic sigmoid activation
    Sigmoid,
    /// hyperbolic tangent activation
    Tanh,
}

/// A differentiable network layer.
///
/// `Send + Sync` so trained networks can be shared immutably across
/// threads; the only interior state is the activation cache written by
/// `forward`, which [`Layer::infer`] bypasses.
pub trait Layer: Send + Sync {
    /// Computes the layer output for a batch.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Computes the layer output without caching activations — the
    /// inference path. Numerically identical to [`Layer::forward`] (same
    /// operations in the same order), but takes `&self` so a trained
    /// network can serve predictions from many threads with no locking.
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Backpropagates: consumes `dL/d(output)`, accumulates parameter
    /// gradients, returns `dL/d(input)`.
    ///
    /// Must be called after `forward` on the same batch.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visits `(value, gradient)` pairs of every trainable parameter in a
    /// stable order; a no-op for activation layers.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Resets accumulated parameter gradients to zero.
    fn zero_grad(&mut self);

    /// Serialisable description (including weights).
    fn spec(&self) -> LayerSpec;

    /// Switches the layer's *training* path ([`Layer::forward`]) between
    /// the bit-exact serve tier and the reassociated fast-math tier (see
    /// `mathkit::kernel`). A no-op for layers with no matmul. The
    /// inference path ([`Layer::infer`]) is never affected: serving
    /// stays bit-exact regardless of this setting.
    fn set_fast_math(&mut self, _on: bool) {}
}

/// Fully-connected affine layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix, // input x output
    bias: Matrix,    // 1 x output
    grad_w: Matrix,
    grad_b: Matrix,
    cache_input: Option<Matrix>,
    // Training-only numeric tier (see `mathkit::kernel`): when set,
    // `forward` uses the reassociated fast-math matmul. `infer` ignores
    // it — the serve path is bit-exact unconditionally. Deliberately not
    // part of `LayerSpec`: a persisted model must not carry a numeric
    // tier with it.
    fast_math: bool,
}

impl Dense {
    /// He-initialised dense layer (good default for ReLU stacks; harmless
    /// for the shallow tanh/sigmoid nets used here).
    pub fn new<R: Rng + ?Sized>(input: usize, output: usize, rng: &mut R) -> Self {
        assert!(input > 0 && output > 0, "layer widths must be positive");
        let std = (2.0 / input as f64).sqrt();
        let mut weights = Matrix::zeros(input, output);
        for v in weights.as_mut_slice() {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            *v = std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        Dense {
            weights,
            bias: Matrix::zeros(1, output),
            grad_w: Matrix::zeros(input, output),
            grad_b: Matrix::zeros(1, output),
            cache_input: None,
            fast_math: false,
        }
    }

    /// Restores a dense layer from persisted values.
    pub fn from_values(input: usize, output: usize, weights: Vec<f64>, bias: Vec<f64>) -> Self {
        Dense {
            weights: Matrix::from_vec(input, output, weights),
            bias: Matrix::from_vec(1, output, bias),
            grad_w: Matrix::zeros(input, output),
            grad_b: Matrix::zeros(1, output),
            cache_input: None,
            fast_math: false,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.weights.rows(),
            "dense layer fed {} features, expected {}",
            input.cols(),
            self.weights.rows()
        );
        self.cache_input = Some(input.clone());
        let product = if self.fast_math {
            input.matmul_fastmath(&self.weights)
        } else {
            input.matmul(&self.weights)
        };
        product.add_row_broadcast(&self.bias)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.weights.rows(),
            "dense layer fed {} features, expected {}",
            input.cols(),
            self.weights.rows()
        );
        // Same operations in the same order as `forward` (matmul, then
        // bias adds), but the bias lands in place: one fewer full-batch
        // allocation per layer, which is what keeps large serving batches
        // cheaper than per-row calls.
        let mut out = input.matmul(&self.weights);
        out.add_row_broadcast_inplace(&self.bias);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .cache_input
            .as_ref()
            .expect("backward called before forward");
        // dW += xᵀ · dY; db += column sums of dY; dX = dY · Wᵀ.
        self.grad_w.axpy(1.0, &input.tmatmul(grad_out));
        self.grad_b.axpy(1.0, &grad_out.sum_rows());
        grad_out.matmul_t(&self.weights)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.weights, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    fn zero_grad(&mut self) {
        self.grad_w.map_inplace(|_| 0.0);
        self.grad_b.map_inplace(|_| 0.0);
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense {
            input: self.weights.rows(),
            output: self.weights.cols(),
            weights: self.weights.as_slice().to_vec(),
            bias: self.bias.as_slice().to_vec(),
        }
    }

    fn set_fast_math(&mut self, on: bool) {
        self.fast_math = on;
    }
}

/// ReLU activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache_input: Option<Matrix>,
}

impl Relu {
    /// Creates the activation.
    pub fn new() -> Self {
        Relu { cache_input: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cache_input = Some(input.clone());
        input.map(|x| x.max(0.0))
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .cache_input
            .as_ref()
            .expect("backward called before forward");
        grad_out.zip_with(input, |g, x| if x > 0.0 { g } else { 0.0 })
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn zero_grad(&mut self) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Relu
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cache_output: Option<Matrix>,
}

impl Sigmoid {
    /// Creates the activation.
    pub fn new() -> Self {
        Sigmoid { cache_output: None }
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = input.map(mathkit::special::sigmoid);
        self.cache_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.map(mathkit::special::sigmoid)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let out = self
            .cache_output
            .as_ref()
            .expect("backward called before forward");
        grad_out.zip_with(out, |g, s| g * s * (1.0 - s))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn zero_grad(&mut self) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Sigmoid
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cache_output: Option<Matrix>,
}

impl Tanh {
    /// Creates the activation.
    pub fn new() -> Self {
        Tanh { cache_output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = input.map(f64::tanh);
        self.cache_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.map(f64::tanh)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let out = self
            .cache_output
            .as_ref()
            .expect("backward called before forward");
        grad_out.zip_with(out, |g, t| g * (1.0 - t * t))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn zero_grad(&mut self) {}

    fn spec(&self) -> LayerSpec {
        LayerSpec::Tanh
    }
}

/// Rebuilds a layer from its spec.
pub fn layer_from_spec(spec: &LayerSpec) -> Box<dyn Layer> {
    match spec {
        LayerSpec::Dense {
            input,
            output,
            weights,
            bias,
        } => Box::new(Dense::from_values(
            *input,
            *output,
            weights.clone(),
            bias.clone(),
        )),
        LayerSpec::Relu => Box::new(Relu::new()),
        LayerSpec::Sigmoid => Box::new(Sigmoid::new()),
        LayerSpec::Tanh => Box::new(Tanh::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::rng::seeded_rng;

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::from_values(2, 1, vec![2.0, -1.0], vec![0.5]);
        let x = Matrix::from_rows(&[&[1.0, 3.0], &[0.0, 2.0]]);
        let y = d.forward(&x);
        // [1*2 + 3*(-1) + 0.5, 0*2 + 2*(-1) + 0.5]
        assert_eq!(y, Matrix::from_rows(&[&[-0.5], &[-1.5]]));
    }

    #[test]
    fn dense_backward_gradient_shapes() {
        let mut rng = seeded_rng(1);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 0.0, 1.0]]);
        let _ = d.forward(&x);
        let g = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let gi = d.backward(&g);
        assert_eq!(gi.shape(), (2, 3));
    }

    #[test]
    fn relu_gates_gradient() {
        let mut r = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let y = r.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[0.0, 2.0]]));
        let g = r.backward(&Matrix::from_rows(&[&[5.0, 5.0]]));
        assert_eq!(g, Matrix::from_rows(&[&[0.0, 5.0]]));
    }

    #[test]
    fn sigmoid_saturates_and_backprops() {
        let mut s = Sigmoid::new();
        let x = Matrix::from_rows(&[&[0.0, 100.0, -100.0]]);
        let y = s.forward(&x);
        assert!((y[(0, 0)] - 0.5).abs() < 1e-12);
        assert!(y[(0, 1)] > 0.999_999);
        assert!(y[(0, 2)] < 1e-6);
        let g = s.backward(&Matrix::from_rows(&[&[1.0, 1.0, 1.0]]));
        assert!((g[(0, 0)] - 0.25).abs() < 1e-12);
        assert!(g[(0, 1)].abs() < 1e-6); // saturated: tiny gradient
    }

    #[test]
    fn tanh_backward_matches_derivative() {
        let mut t = Tanh::new();
        let x = Matrix::from_rows(&[&[0.3]]);
        let _ = t.forward(&x);
        let g = t.backward(&Matrix::from_rows(&[&[1.0]]));
        let want = 1.0 - (0.3_f64).tanh().powi(2);
        assert!((g[(0, 0)] - want).abs() < 1e-12);
    }

    /// Finite-difference check of the dense layer's parameter and input
    /// gradients — the canonical backprop correctness test.
    #[test]
    fn dense_finite_difference_check() {
        let mut rng = seeded_rng(3);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[1.1, 0.3, -0.5]]);
        // Scalar objective: sum of outputs.
        let eps = 1e-6;

        // Analytic gradients.
        d.zero_grad();
        let _ = d.forward(&x);
        let ones = Matrix::filled(2, 2, 1.0);
        let gi = d.backward(&ones);

        // Numeric weight gradients.
        let mut analytic_gw = None;
        let mut analytic_gb = None;
        d.visit_params(&mut |_v, g| {
            if analytic_gw.is_none() {
                analytic_gw = Some(g.clone());
            } else {
                analytic_gb = Some(g.clone());
            }
        });
        let analytic_gw = analytic_gw.unwrap();
        let analytic_gb = analytic_gb.unwrap();

        for idx in 0..6 {
            let probe = |delta: f64, d: &mut Dense| -> f64 {
                let mut first = true;
                d.visit_params(&mut |v, _| {
                    if first {
                        v.as_mut_slice()[idx] += delta;
                        first = false;
                    }
                });
                let out = d.forward(&x).sum();
                let mut first = true;
                d.visit_params(&mut |v, _| {
                    if first {
                        v.as_mut_slice()[idx] -= delta;
                        first = false;
                    }
                });
                out
            };
            let plus = probe(eps, &mut d);
            let minus = probe(-eps, &mut d);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_gw.as_slice()[idx]).abs() < 1e-5,
                "weight {idx}: numeric {numeric} vs analytic {}",
                analytic_gw.as_slice()[idx]
            );
        }
        // Bias gradient: each bias sees both samples → gradient 2.
        for idx in 0..2 {
            assert!((analytic_gb.as_slice()[idx] - 2.0).abs() < 1e-9);
        }
        // Input gradient: dX = dY Wᵀ with dY = 1 → row sums of W.
        for r in 0..2 {
            for c in 0..3 {
                let mut want = 0.0;
                d.visit_params(&mut |v, _| {
                    if v.shape() == (3, 2) {
                        want = v[(c, 0)] + v[(c, 1)];
                    }
                });
                assert!((gi[(r, c)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn infer_matches_forward_per_layer() {
        let mut rng = seeded_rng(17);
        let x = Matrix::from_rows(&[&[0.4, -1.2, 0.0], &[2.5, 0.1, -0.7]]);
        let mut layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::new(3, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Sigmoid::new()),
            Box::new(Tanh::new()),
        ];
        for layer in &mut layers {
            let inferred = layer.infer(&x);
            let forwarded = layer.forward(&x);
            assert_eq!(inferred, forwarded);
        }
    }

    #[test]
    fn fast_math_affects_forward_only() {
        let mut rng = seeded_rng(23);
        let mut d = Dense::new(25, 16, &mut rng);
        let x = Matrix::from_rows(&[&[0.017; 25], &[-0.93; 25], &[41.5; 25]]);
        let serve = d.infer(&x);
        let exact = d.forward(&x);
        assert_eq!(serve, exact);
        d.set_fast_math(true);
        // infer stays bit-identical to the serve tier…
        assert_eq!(d.infer(&x), serve);
        // …while forward switches to the reassociated tier: close, not
        // necessarily bit-equal.
        let fast = d.forward(&x);
        for (a, b) in exact.as_slice().iter().zip(fast.as_slice()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
        d.set_fast_math(false);
        assert_eq!(d.forward(&x), exact);
    }

    #[test]
    fn spec_roundtrip() {
        let mut rng = seeded_rng(9);
        let d = Dense::new(4, 3, &mut rng);
        let spec = d.spec();
        let mut rebuilt = layer_from_spec(&spec);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3, 0.4]]);
        let mut orig = d;
        assert_eq!(orig.forward(&x), rebuilt.forward(&x));
    }

    #[test]
    #[should_panic(expected = "features")]
    fn dense_rejects_wrong_width() {
        let mut rng = seeded_rng(1);
        let mut d = Dense::new(3, 2, &mut rng);
        let _ = d.forward(&Matrix::zeros(1, 4));
    }
}
