//! Regenerates paper Fig. 4: the Fig.-3 comparison on the
//! out-of-distribution ("real-world") dataset — the surrogate is trained
//! only on the synthetic distribution.

use bench::experiments::fig4;
use bench::{render_comparison, run_experiment};

fn main() {
    run_experiment("fig4", fig4, |result| {
        println!(
            "Fig. 4 — optimality gap vs trials, out-of-distribution ({} instances, solver {})",
            result.instances, result.solver
        );
        render_comparison(result);
    });
}
